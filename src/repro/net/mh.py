"""Mobile hosts (MHs).

An MH communicates only through the wireless channel pair to the MSS of
the cell it currently occupies. It may move between cells (handoff,
handled by :mod:`repro.net.mobility` through the network object) and may
voluntarily disconnect (handled by :mod:`repro.net.disconnect`).

Doze mode is modelled as a flag plus wake-on-message semantics; it does
not change timing but lets experiments count how often checkpointing
traffic wakes a sleeping host (the energy argument of §1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NotConnectedError
from repro.net.channel import FifoChannel
from repro.net.message import Message
from repro.net.node import Host

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.mss import MobileSupportStation
    from repro.net.network import MobileNetwork


class MobileHost(Host):
    """A mobile host attached to at most one MSS at a time."""

    def __init__(self, network: "MobileNetwork", name: str) -> None:
        super().__init__(network, name)
        self.mss: Optional["MobileSupportStation"] = None
        self.uplink: Optional[FifoChannel] = None
        self.dozing = False
        self.wakeups = 0
        # Sequence number of the last message received on the downlink;
        # reported in disconnect(sn) per §2.2.
        self.last_downlink_sn = 0
        self._downlink_counter = 0
        # Sends attempted while between cells (handoff gap) queue here and
        # flush on reattachment; voluntary disconnection never queues
        # because the paper's model forbids send events while disconnected
        # (the workload is paused by the disconnect manager).
        self._outbox: list = []
        self.disconnected = False
        # bytes moved by background (precopy) checkpoint transfers
        self.background_bytes = 0
        # last send/receive instant, used by doze management
        self.last_activity = 0.0
        # accumulated time spent dozing
        self.doze_time = 0.0
        self._doze_started = 0.0

    @property
    def connected(self) -> bool:
        """Whether the MH currently has a live wireless link."""
        return self.mss is not None and self.uplink is not None and not self.uplink.paused

    # -- attachment ---------------------------------------------------------
    def attach_to(self, mss: "MobileSupportStation") -> None:
        """Join ``mss``'s cell, creating fresh wireless channels."""
        params = self.network.params
        self.mss = mss
        self.uplink = FifoChannel(
            self.sim,
            params.wireless_bandwidth_bps,
            params.wireless_latency,
            mss.on_wireless_arrival,
            name=f"{self.name}->{mss.name}",
            contention=params.model_contention,
            link_class="wireless",
        )
        downlink = FifoChannel(
            self.sim,
            params.wireless_bandwidth_bps,
            params.wireless_latency,
            self.on_downlink_arrival,
            name=f"{mss.name}->{self.name}",
            contention=params.model_contention,
            link_class="wireless",
        )
        mss.register_mh(self, downlink)
        self.network.note_mh_location(self, mss)
        while self._outbox:
            self.uplink.send(self._outbox.pop(0))

    def detach(self) -> FifoChannel:
        """Leave the current cell; returns the old downlink for draining."""
        if self.mss is None:
            raise NotConnectedError(f"{self.name} is not attached to any MSS")
        downlink = self.mss.unregister_mh(self)
        self.mss = None
        self.uplink = None
        return downlink

    # -- traffic -------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Transmit over the uplink toward the current MSS.

        During a handoff gap the message queues in the outbox and is
        flushed on reattachment. During voluntary disconnection sending
        is an error (no send events occur while disconnected, §2.2).
        """
        if self.disconnected:
            raise NotConnectedError(
                f"{self.name} is disconnected and cannot send message {message.msg_id}"
            )
        if self.uplink is None or self.mss is None:
            self._outbox.append(message)
            return
        self.last_activity = self.sim._now
        self.uplink.send(message)

    def on_downlink_arrival(self, message: Message) -> None:
        """Wireless delivery from the MSS: wake if dozing, then deliver."""
        now = self.sim._now
        if self.dozing:
            self.dozing = False
            self.wakeups += 1
            self.sim.metrics.counter("net.wakeups").inc()
            self.doze_time += now - self._doze_started
        self.last_activity = now
        self._downlink_counter += 1
        self.last_downlink_sn = self._downlink_counter
        self.deliver_to_process(message)

    def transfer_checkpoint_data(self, data: Message) -> None:
        """Ship checkpoint data to the current MSS.

        Default (paper) model: a background "precopy" transfer that takes
        its full transmission time but does not delay foreground
        messages. Under ``model_contention`` the data competes on the
        uplink like any other traffic.
        """
        if self.disconnected:
            raise NotConnectedError(f"{self.name} is disconnected")
        if self.mss is None or self.uplink is None:
            self._outbox.append(data)
            return
        params = self.network.params
        if params.model_contention:
            self.uplink.send(data)
            return
        self.background_bytes += data.size_bytes
        mss = self.mss
        tx_time = data.size_bytes * 8.0 / params.wireless_bandwidth_bps
        if params.shared_cell_medium:
            # Concurrent bulk transfers in one cell serialize on the
            # shared 802.11 airtime (the paper's 32 s worst case).
            start = max(self.sim.now, mss.bulk_busy_until)
            finish = start + tx_time
            mss.bulk_busy_until = finish
            self.sim.metrics.counter("net.bulk_bytes").inc(data.size_bytes)
            self.sim.schedule_at(
                finish + params.wireless_latency,
                mss.on_wireless_arrival,
                data,
                stream=(self, "bulk"),
            )
        else:
            self.sim.schedule(
                tx_time + params.wireless_latency,
                mss.on_wireless_arrival,
                data,
                stream=(self, "bulk"),
            )

    def doze(self) -> None:
        """Enter doze mode (next arrival wakes the host)."""
        if not self.dozing:
            self.dozing = True
            self._doze_started = self.sim.now
