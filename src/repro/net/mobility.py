"""Handoff and mobility models (paper §2.2, correctness proof Case 2).

A handoff moves an MH from its current cell to another. During the gap
the MH has no wireless link: its own sends queue in an outbox, and
traffic addressed to it is buffered by the *old* MSS, which flushes the
buffer over the wired backbone once the MH reattaches — this is the
MSS-to-MSS forwarding the correctness proof relies on, so a checkpoint
request issued mid-handoff still reaches the process.

:class:`RandomWalkMobility` is a workload-style driver that performs
handoffs at exponentially distributed intervals, for stress tests and
the mobility example.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NetworkError
from repro.net.disconnect import BufferRecord
from repro.sim.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.mh import MobileHost
    from repro.net.mss import MobileSupportStation
    from repro.net.network import MobileNetwork


def handoff(
    network: "MobileNetwork",
    mh: "MobileHost",
    new_mss: "MobileSupportStation",
    delay: Optional[float] = None,
) -> None:
    """Move ``mh`` from its current cell into ``new_mss``'s cell.

    The link is down for ``delay`` seconds (default
    ``network.params.handoff_delay``). All traffic that would have used
    the old downlink during the gap — including messages already queued
    on it — is buffered at the old MSS and forwarded to the new MSS when
    the MH reattaches.
    """
    if mh.disconnected:
        raise NetworkError(f"{mh.name} is disconnected; reconnect instead of handoff")
    old_mss = mh.mss
    if old_mss is None:
        raise NetworkError(f"{mh.name} has no current MSS")
    if old_mss is new_mss:
        return
    gap = network.params.handoff_delay if delay is None else delay

    old_downlink = mh.detach()
    network.forget_mh_location(mh)
    # Anything not yet on the air stays with the old MSS for forwarding.
    old_downlink.pause()
    stranded = old_downlink.drain_pending()
    buffer = BufferRecord(mh.name)
    buffer.buffered.extend(stranded)
    old_mss.disconnect_records[mh.name] = buffer
    network.note_disconnect_holder(mh.name, old_mss)
    network.sim.metrics.counter("net.handoffs").inc()
    network.sim.trace.record(
        network.sim.now, "handoff_start", mh=mh.name, src=old_mss.name, dst=new_mss.name
    )

    def complete() -> None:
        del old_mss.disconnect_records[mh.name]
        network.forget_disconnect_holder(mh.name)
        mh.attach_to(new_mss)
        if buffer.buffered:
            network.sim.metrics.counter("net.handoff_forwarded").inc(
                len(buffer.buffered)
            )
        for message in buffer.buffered:
            network.route_from_mss(old_mss, message)
        network.sim.trace.record(
            network.sim.now,
            "handoff_complete",
            mh=mh.name,
            src=old_mss.name,
            dst=new_mss.name,
            forwarded=len(buffer.buffered),
        )

    # The reattach conceptually happens in the destination cell: tag the
    # closure so the sharded kernel attributes it (and the outbox flush
    # it triggers) to new_mss's shard instead of coordinator shard 0.
    shard = getattr(new_mss, "shard_id", None)
    if shard is not None:
        complete.shard_id = shard
    network.sim.schedule(gap, complete)


class RandomWalkMobility:
    """Drives random handoffs for a set of mobile hosts.

    Each move picks a uniformly random MH and a uniformly random target
    cell different from its current one; inter-move times are exponential
    with the configured mean.
    """

    def __init__(
        self,
        network: "MobileNetwork",
        streams: RandomStreams,
        mean_residence_time: float,
    ) -> None:
        if mean_residence_time <= 0:
            raise ValueError("mean_residence_time must be positive")
        if len(network.mss_list) < 2:
            raise NetworkError("random-walk mobility needs at least two cells")
        self.network = network
        self.streams = streams
        self.mean_residence_time = mean_residence_time
        self.moves = 0
        self._stopped = False

    def start(self) -> None:
        """Begin scheduling moves."""
        self._schedule_next()

    def stop(self) -> None:
        """Stop after any already-scheduled move."""
        self._stopped = True

    def _schedule_next(self) -> None:
        delay = self.streams.exponential("mobility", self.mean_residence_time)
        self.network.sim.schedule(delay, self._move)

    def _move(self) -> None:
        if self._stopped:
            return
        candidates = [
            mh
            for mh in self.network.mh_list
            if not mh.disconnected and mh.mss is not None
        ]
        if candidates:
            mh = self.streams.choice("mobility", candidates)
            targets = [mss for mss in self.network.mss_list if mss is not mh.mss]
            if targets:
                new_mss = self.streams.choice("mobility", targets)
                handoff(self.network, mh, new_mss)
                self.moves += 1
        self._schedule_next()
