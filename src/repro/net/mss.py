"""Mobile support stations (MSSs).

An MSS is a static host on the wired backbone. It owns a cell: the set
of mobile hosts currently attached to it by wireless channels. The MSS
provides the stable storage where tentative/permanent checkpoints live,
buffers traffic for disconnected MHs, and acts on their behalf during
disconnection (paper §2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.errors import UnknownHostError
from repro.net.message import Message
from repro.net.node import Host

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.channel import FifoChannel
    from repro.net.disconnect import DisconnectRecord
    from repro.net.mh import MobileHost
    from repro.net.network import MobileNetwork


class MobileSupportStation(Host):
    """A static host with stable storage and a cell of mobile hosts."""

    def __init__(self, network: "MobileNetwork", name: str) -> None:
        super().__init__(network, name)
        self.attached_mhs: Dict[str, "MobileHost"] = {}
        self._downlinks: Dict[str, "FifoChannel"] = {}
        # Shared-medium accounting for bulk checkpoint transfers within
        # this cell (see NetworkParams.shared_cell_medium). Bulk volume
        # itself is counted in the registry (``net.bulk_bytes``).
        self.bulk_busy_until = 0.0
        # Assigned by the system builder; kept loosely typed so the net
        # layer does not depend on the checkpointing layer.
        self.stable_storage: Any = None
        self.disconnect_records: Dict[str, "DisconnectRecord"] = {}

    # -- cell management ---------------------------------------------------
    def register_mh(self, mh: "MobileHost", downlink: "FifoChannel") -> None:
        """Add ``mh`` to this cell with its MSS-to-MH channel."""
        self.attached_mhs[mh.name] = mh
        self._downlinks[mh.name] = downlink

    def unregister_mh(self, mh: "MobileHost") -> "FifoChannel":
        """Remove ``mh`` from the cell (handoff); returns the old downlink."""
        self.attached_mhs.pop(mh.name, None)
        try:
            return self._downlinks.pop(mh.name)
        except KeyError:
            raise UnknownHostError(f"{mh.name} not attached to {self.name}") from None

    def downlink_to(self, mh_name: str) -> "FifoChannel":
        """The MSS-to-MH channel for an attached mobile host."""
        try:
            return self._downlinks[mh_name]
        except KeyError:
            raise UnknownHostError(f"{mh_name} not attached to {self.name}") from None

    # -- traffic -----------------------------------------------------------
    def send(self, message: Message) -> None:
        """Route a message originated by a process running on this MSS."""
        self.network.route_from_mss(self, message)

    def on_wireless_arrival(self, message: Message) -> None:
        """Uplink delivery from an attached MH: continue routing.

        Checkpoint data transfers terminate here: they are written to
        this MSS's stable storage rather than routed onward.
        """
        if message.kind == "checkpoint_data":
            self._store_checkpoint_data(message)
            return
        self.network.route_from_mss(self, message)

    def _store_checkpoint_data(self, message: Message) -> None:
        record = message.checkpoint_ref
        # A record demoted while in flight (aborted initiation) is dropped.
        if record is not None and getattr(record, "is_stable", False):
            if self.stable_storage is not None:
                self.stable_storage.store(record)
            callback = getattr(message, "on_stored", None)
            if callback is not None:
                write_time = self.network.params.stable_write_time
                if write_time > 0:
                    self.sim.schedule(write_time, callback)
                else:
                    callback()

    def on_wired_arrival(self, message: Message) -> None:
        """Delivery from another MSS over the backbone: continue routing."""
        self.network.route_from_mss(self, message)

    def deliver_local(self, message: Message) -> None:
        """Deliver to a process on this MSS or to an MH in this cell."""
        if self.hosts_process(message.dst_pid):
            self.deliver_to_process(message)
            return
        mh = self.network.mh_of_process(message.dst_pid)
        if mh is None or mh.name not in self.attached_mhs and mh.name not in self.disconnect_records:
            raise UnknownHostError(
                f"{self.name} asked to deliver msg {message.msg_id} for pid "
                f"{message.dst_pid} but does not host it"
            )
        record = self.disconnect_records.get(mh.name)
        if record is not None:
            record.absorb(self, message)
            return
        self.downlink_to(mh.name).send(message)

    def disconnect_record_for(self, mh_name: str) -> Optional["DisconnectRecord"]:
        """The disconnect record for ``mh_name`` if it is disconnected."""
        return self.disconnect_records.get(mh_name)
