"""Voluntary disconnection and reconnection of mobile hosts (paper §2.2).

Protocol recap:

* Before disconnecting, the MH takes a local checkpoint and transfers it
  to its MSS as ``disconnect_checkpoint``, together with its message
  dependency information, then sends ``disconnect(sn)``.
* While disconnected, the MSS buffers all computation messages for the
  MH. If a checkpoint request arrives, the MSS converts
  ``disconnect_checkpoint`` into the MH's new checkpoint and propagates
  the request using the saved dependency information — this is delegated
  to a protocol-supplied :class:`DisconnectProxy` so the network layer
  stays protocol-agnostic.
* On reconnection (possibly at a different MSS) the support information
  is transferred, the MH processes the buffered messages, and — if the
  proxy took a checkpoint on its behalf — clears its dependency state
  first.

Timing simplification: the MSS's disconnect record is created at the
instant the MH initiates disconnection rather than when ``disconnect(sn)``
physically arrives; the in-flight window is not interesting to the
checkpointing algorithms and closing it keeps routing total. The
checkpoint data transfer itself is still charged to the wireless link.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, List, Optional

from repro.errors import NetworkError, NotConnectedError
from repro.net.message import CheckpointDataMessage, Message, SystemMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.mh import MobileHost
    from repro.net.mss import MobileSupportStation
    from repro.net.network import MobileNetwork


class DisconnectProxy(ABC):
    """Protocol-side agent that acts for a disconnected process.

    Implementations capture whatever per-process protocol state is needed
    (dependency vector, csn, ...) at disconnect time.
    """

    @abstractmethod
    def handle_system_message(
        self,
        mss: "MobileSupportStation",
        record: "DisconnectRecord",
        message: SystemMessage,
    ) -> bool:
        """Handle a protocol message on behalf of the disconnected process.

        Returns True if consumed; False to have the MSS buffer it for
        delivery after reconnection.
        """


class BufferRecord:
    """Buffers every message addressed to an absent MH (handoff gap)."""

    def __init__(self, mh_name: str) -> None:
        self.mh_name = mh_name
        self.buffered: List[Message] = []

    def absorb(self, mss: "MobileSupportStation", message: Message) -> None:
        """Store ``message`` for later flushing."""
        self.buffered.append(message)


class DisconnectRecord(BufferRecord):
    """Support information an MSS keeps for a disconnected MH (§2.2)."""

    def __init__(
        self,
        mh_name: str,
        disconnect_checkpoint: Any,
        proxy: Optional[DisconnectProxy],
        last_recv_sn: int,
    ) -> None:
        super().__init__(mh_name)
        self.disconnect_checkpoint = disconnect_checkpoint
        self.proxy = proxy
        self.last_recv_sn = last_recv_sn
        #: set True by the proxy if it converted disconnect_checkpoint
        #: into a real checkpoint while the MH was away
        self.checkpoint_taken_on_behalf = False

    def absorb(self, mss: "MobileSupportStation", message: Message) -> None:
        """Buffer computation traffic; offer system traffic to the proxy."""
        if isinstance(message, SystemMessage) and self.proxy is not None:
            if self.proxy.handle_system_message(mss, self, message):
                return
        self.buffered.append(message)


def disconnect(
    network: "MobileNetwork",
    mh: "MobileHost",
    disconnect_checkpoint: Any,
    proxy: Optional[DisconnectProxy] = None,
    checkpoint_bytes: Optional[int] = None,
) -> DisconnectRecord:
    """Voluntarily disconnect ``mh`` from its current MSS.

    The checkpoint transfer is charged to the uplink (it is the last
    transmission before the link drops). Returns the record now held by
    the old MSS.
    """
    if mh.disconnected:
        raise NetworkError(f"{mh.name} is already disconnected")
    mss = mh.mss
    if mss is None or mh.uplink is None:
        raise NotConnectedError(f"{mh.name} has no MSS to disconnect from")
    pid = mh.process_ids[0] if mh.process_ids else -1
    data = CheckpointDataMessage(
        src_pid=pid,
        dst_pid=None,
        checkpoint_ref=disconnect_checkpoint,
        msg_id=next(network.message_ids),
    )
    if checkpoint_bytes is not None:
        data.size_bytes = checkpoint_bytes
    # Charge the transfer to the link without routing it as a normal
    # message (its destination is the MSS itself, not a process).
    mh.uplink.occupy(data)
    record = DisconnectRecord(
        mh.name,
        disconnect_checkpoint,
        proxy,
        last_recv_sn=mh.last_downlink_sn,
    )
    mss.disconnect_records[mh.name] = record
    network.note_disconnect_holder(mh.name, mss)
    mh.detach()
    network.forget_mh_location(mh)
    mh.disconnected = True
    network.sim.metrics.counter("net.disconnects").inc()
    network.sim.trace.record(
        network.sim.now, "disconnect", mh=mh.name, mss=mss.name, sn=record.last_recv_sn
    )
    return record


def reconnect(
    network: "MobileNetwork",
    mh: "MobileHost",
    new_mss: "MobileSupportStation",
) -> DisconnectRecord:
    """Reconnect ``mh`` at ``new_mss`` and replay buffered traffic.

    The old MSS is located through the network (the broadcast fallback of
    §2.2 when the MH lost its last MSS's identity); support information is
    transferred and buffered messages are routed to the MH in order.
    """
    if not mh.disconnected:
        raise NetworkError(f"{mh.name} is not disconnected")
    old_mss = network._find_disconnect_holder(mh)
    if old_mss is None:
        raise NetworkError(f"no disconnect record found for {mh.name}")
    record = old_mss.disconnect_records[mh.name]
    del old_mss.disconnect_records[mh.name]
    network.forget_disconnect_holder(mh.name)
    mh.disconnected = False
    mh.attach_to(new_mss)
    # Transfer support information and replay buffered messages in order.
    # Buffered traffic is re-routed from the old MSS so it pays the wired
    # transfer cost to the new cell.
    network.sim.metrics.counter("net.reconnects").inc()
    if record.buffered:
        network.sim.metrics.counter("net.buffered_replayed").inc(
            len(record.buffered)
        )
    for message in record.buffered:
        network.route_from_mss(old_mss, message)
    network.sim.trace.record(
        network.sim.now,
        "reconnect",
        mh=mh.name,
        old_mss=old_mss.name,
        new_mss=new_mss.name,
        replayed=len(record.buffered),
        checkpoint_taken_on_behalf=record.checkpoint_taken_on_behalf,
    )
    return record
