"""Network parameter sets.

Defaults reproduce the paper's simulation model (§5.1): an IEEE 802.11
wireless LAN at 2 Mbps where a 1 KB computation message takes 4 ms, a
50 B system message takes 0.2 ms, and a 512 KB incremental checkpoint
takes 2 s to reach stable storage. The wired backbone between MSSs is
much faster and is not the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkParams:
    """Physical-layer constants for the simulated mobile system.

    Attributes
    ----------
    wireless_bandwidth_bps:
        Bandwidth of each MH <-> MSS wireless channel (2 Mbps default).
    wireless_latency:
        Propagation delay on the wireless hop, seconds.
    wired_bandwidth_bps:
        Bandwidth of each MSS <-> MSS wired link.
    wired_latency:
        Propagation delay on a wired hop, seconds.
    handoff_delay:
        Time an MH's wireless link is down while moving between cells.
    mutable_save_time:
        Time to save a mutable checkpoint in MH main memory (2.5 ms in
        the paper: 1 MB over a 64-bit, 100 MHz memory bus, halved by
        incremental copying).
    stable_write_time:
        Disk time at the MSS; the paper excludes it ("disk access time is
        not counted"), hence 0 by default.
    model_contention:
        False (default) reproduces the paper's constant-delay model for
        small messages: every message takes its pure transmission time
        regardless of other traffic. True serializes all transmissions
        per link — a harsher, more physical model offered as an ablation.
    shared_cell_medium:
        True (default) models the 802.11 LAN as a shared medium for
        *bulk checkpoint transfers*: concurrent 512 KB transfers within
        one cell serialize on the cell's airtime — this is where the
        paper's "checkpointing time at most 2·16 = 32 s" comes from.
        Small messages still see constant delay (packet-level
        interleaving lets 50 B/1 KB frames preempt a bulk transfer).
        False lets every MH stream its checkpoint concurrently.
    """

    wireless_bandwidth_bps: float = 2_000_000.0
    wireless_latency: float = 0.0
    wired_bandwidth_bps: float = 100_000_000.0
    wired_latency: float = 0.0005
    handoff_delay: float = 0.05
    mutable_save_time: float = 0.0025
    stable_write_time: float = 0.0
    model_contention: bool = False
    shared_cell_medium: bool = True

    def min_cross_shard_delay(self) -> float:
        """Lower bound on any cross-cell message delay (shard lookahead).

        Every path between processes homed in different cells traverses
        a wired MSS↔MSS hop, so its arrival is at least ``wired_latency``
        after the send: transmission time adds ``size/bandwidth > 0``
        and contention (``model_contention=True``) only pushes arrivals
        *later* — neither can undercut the propagation floor. This makes
        ``wired_latency`` a safe static lookahead for the conservative
        windowed kernel (:mod:`repro.sim.shard`); see docs/DESIGN.md.
        """
        return self.wired_latency

    def __post_init__(self) -> None:
        if self.wireless_bandwidth_bps <= 0 or self.wired_bandwidth_bps <= 0:
            raise ConfigurationError("bandwidths must be positive")
        if min(self.wireless_latency, self.wired_latency, self.handoff_delay) < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.mutable_save_time < 0 or self.stable_write_time < 0:
            raise ConfigurationError("checkpoint save times must be non-negative")
