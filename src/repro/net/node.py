"""Host base class shared by mobile hosts and mobile support stations.

A host is a named node that processes run on. The host forwards messages
arriving for a local process to the handler that the process registered,
and hands outbound messages to the network for routing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.errors import UnknownHostError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import MobileNetwork

ProcessHandler = Callable[[Message], None]


class Host:
    """A network node hosting zero or more processes."""

    #: hosts are reachable unless a MobileHost flips its instance flag;
    #: a class-level default lets hot paths read it as a plain attribute
    disconnected = False

    def __init__(self, network: "MobileNetwork", name: str) -> None:
        self.network = network
        self.name = name
        self.sim = network.sim
        self._process_handlers: Dict[int, ProcessHandler] = {}

    @property
    def process_ids(self) -> tuple:
        """Ids of processes currently attached to this host."""
        return tuple(self._process_handlers)

    def attach_process(self, pid: int, handler: ProcessHandler) -> None:
        """Register ``handler`` to receive messages addressed to ``pid``."""
        if pid in self._process_handlers:
            raise ValueError(f"pid {pid} already attached to {self.name}")
        self._process_handlers[pid] = handler
        self.network.register_process(pid, self)

    def detach_process(self, pid: int) -> ProcessHandler:
        """Remove and return the handler for ``pid`` (used by migration)."""
        try:
            return self._process_handlers.pop(pid)
        except KeyError:
            raise UnknownHostError(f"pid {pid} not attached to {self.name}") from None

    def deliver_to_process(self, message: Message) -> None:
        """Hand an arrived message to the destination process's handler."""
        handler = self._process_handlers.get(message.dst_pid)
        if handler is None:
            raise UnknownHostError(
                f"{self.name} has no process {message.dst_pid} for message {message.msg_id}"
            )
        handler(message)

    def hosts_process(self, pid: int) -> bool:
        """Whether ``pid`` currently runs on this host."""
        return pid in self._process_handlers

    def send(self, message: Message) -> None:
        """Route an outbound message from a local process. Overridden."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} pids={list(self._process_handlers)}>"
