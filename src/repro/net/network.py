"""The mobile network: topology, location management, and routing.

:class:`MobileNetwork` owns every host and the wired backbone. Routing a
process-to-process message follows the paper's model:

* process on MH  -> wireless uplink to its MSS
* MSS -> (if destination elsewhere) wired FIFO link to the destination MSS
* destination MSS -> wireless downlink to the destination MH

Location management is a directory at the network layer (`pid -> host`,
`MH -> MSS`), updated synchronously at handoff; the directory abstracts
the Mobile-IP-style protocols the paper cites ([2], [26], [33]) whose
details are orthogonal to checkpointing.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, UnknownHostError
from repro.net.channel import FifoChannel
from repro.net.message import Message, SystemMessage
from repro.net.mh import MobileHost
from repro.net.mss import MobileSupportStation
from repro.net.node import Host
from repro.net.params import NetworkParams
from repro.sim.kernel import Simulator


class MobileNetwork:
    """Topology container, location directory, and router."""

    def __init__(self, sim: Simulator, params: Optional[NetworkParams] = None) -> None:
        self.sim = sim
        self.params = params if params is not None else NetworkParams()
        self.mss_list: List[MobileSupportStation] = []
        self.mh_list: List[MobileHost] = []
        self._host_of_pid: Dict[int, Host] = {}
        self._mss_of_mh: Dict[str, MobileSupportStation] = {}
        self._wired: Dict[Tuple[str, str], FifoChannel] = {}
        #: sorted pid tuple, rebuilt lazily after registration changes —
        #: broadcast fan-out must not pay an O(N log N) sort per call
        self._sorted_pids: Optional[Tuple[int, ...]] = None
        #: which MSS holds the disconnect record of a detached MH; kept
        #: by disconnect/handoff so routing to a detached MH is O(1)
        #: instead of a scan over every MSS
        self._holder_of_mh: Dict[str, MobileSupportStation] = {}
        #: msg_id allocator for messages the net layer itself constructs;
        #: a MobileSystem replaces this with its own counter at build time
        self.message_ids = count()
        # System-wide routing counters, published to the run's registry
        # (the old `wired_messages`/`wireless_messages` int fields).
        self._c_wired_routed = sim.metrics.counter("net.wired.routed")
        self._c_wireless_sends = sim.metrics.counter("net.wireless.sends")

    @property
    def wired_messages(self) -> int:
        """Messages routed over the backbone (registry-backed)."""
        return int(self._c_wired_routed.value)

    @property
    def wireless_messages(self) -> int:
        """Process sends that crossed a wireless uplink (registry-backed)."""
        return int(self._c_wireless_sends.value)

    # -- topology construction ------------------------------------------------
    def add_mss(self, name: Optional[str] = None) -> MobileSupportStation:
        """Create a new support station on the backbone."""
        mss = MobileSupportStation(self, name or f"mss{len(self.mss_list)}")
        self.mss_list.append(mss)
        return mss

    def add_mh(self, mss: MobileSupportStation, name: Optional[str] = None) -> MobileHost:
        """Create a new mobile host attached to ``mss``."""
        mh = MobileHost(self, name or f"mh{len(self.mh_list)}")
        self.mh_list.append(mh)
        mh.attach_to(mss)
        return mh

    # -- directory --------------------------------------------------------------
    def register_process(self, pid: int, host: Host) -> None:
        """Record (or update, after migration) where ``pid`` runs."""
        self._host_of_pid[pid] = host
        self._sorted_pids = None

    def host_of_process(self, pid: int) -> Host:
        """The host ``pid`` currently runs on."""
        try:
            return self._host_of_pid[pid]
        except KeyError:
            raise UnknownHostError(f"no host registered for pid {pid}") from None

    def mh_of_process(self, pid: int) -> Optional[MobileHost]:
        """The MH hosting ``pid``, or None if it runs on an MSS."""
        host = self._host_of_pid.get(pid)
        return host if isinstance(host, MobileHost) else None

    def mss_serving(self, host: Host) -> MobileSupportStation:
        """The MSS responsible for ``host`` (itself if it is an MSS)."""
        if isinstance(host, MobileSupportStation):
            return host
        assert isinstance(host, MobileHost)
        mss = self._mss_of_mh.get(host.name)
        if mss is None:
            raise UnknownHostError(f"{host.name} has no serving MSS (disconnected?)")
        return mss

    def note_mh_location(self, mh: MobileHost, mss: MobileSupportStation) -> None:
        """Directory update on attach/handoff."""
        self._mss_of_mh[mh.name] = mss

    def forget_mh_location(self, mh: MobileHost) -> None:
        """Directory removal on disconnect without reattachment."""
        self._mss_of_mh.pop(mh.name, None)

    # -- wired backbone -----------------------------------------------------------
    def wired_channel(
        self, src: MobileSupportStation, dst: MobileSupportStation
    ) -> FifoChannel:
        """The FIFO backbone link ``src -> dst`` (created lazily)."""
        if src is dst:
            raise ConfigurationError("no wired channel from an MSS to itself")
        key = (src.name, dst.name)
        channel = self._wired.get(key)
        if channel is None:
            channel = FifoChannel(
                self.sim,
                self.params.wired_bandwidth_bps,
                self.params.wired_latency,
                dst.on_wired_arrival,
                name=f"{src.name}=>{dst.name}",
                contention=self.params.model_contention,
                link_class="wired",
            )
            self._wired[key] = channel
        return channel

    # -- routing ---------------------------------------------------------------------
    def route_from_mss(self, mss: MobileSupportStation, message: Message) -> None:
        """Route ``message`` onward from ``mss``.

        Called when an MSS originates a message, receives one on the
        uplink, or receives one from the backbone.
        """
        dst_host = self.host_of_process(message.dst_pid)
        # Where must the message go next? The MSS serving the
        # destination. A disconnected MH has no serving MSS; its traffic
        # is absorbed by the MSS holding its disconnect record.
        if isinstance(dst_host, MobileHost) and dst_host.name not in self._mss_of_mh:
            holder = self._find_disconnect_holder(dst_host)
            if holder is None:
                raise UnknownHostError(
                    f"pid {message.dst_pid} on {dst_host.name} is unreachable"
                )
            if holder is mss:
                mss.deliver_local(message)
            else:
                self._c_wired_routed.inc()
                self.wired_channel(mss, holder).send(message)
            return
        serving = self.mss_serving(dst_host)
        if serving is mss:
            mss.deliver_local(message)
        else:
            self._c_wired_routed.inc()
            self.wired_channel(mss, serving).send(message)

    def send_from_process(self, src_pid: int, message: Message) -> None:
        """Entry point used by process runtimes to send ``message``."""
        host = self.host_of_process(src_pid)
        if isinstance(host, MobileHost):
            self._c_wireless_sends.inc()
        host.send(message)

    def note_disconnect_holder(self, mh_name: str, mss: MobileSupportStation) -> None:
        """Index update when ``mss`` takes custody of a detached MH."""
        self._holder_of_mh[mh_name] = mss

    def forget_disconnect_holder(self, mh_name: str) -> None:
        """Index removal when the MH reattaches (record handed over)."""
        self._holder_of_mh.pop(mh_name, None)

    def _find_disconnect_holder(
        self, mh: MobileHost
    ) -> Optional[MobileSupportStation]:
        holder = self._holder_of_mh.get(mh.name)
        if holder is not None and holder.disconnect_record_for(mh.name) is not None:
            return holder
        # Fallback scan (§2.2 broadcast search) covers records written
        # without going through the index; repair the index on a hit.
        for mss in self.mss_list:
            if mss.disconnect_record_for(mh.name) is not None:
                self._holder_of_mh[mh.name] = mss
                return mss
        return None

    # -- broadcast ----------------------------------------------------------------------
    def broadcast_system(
        self,
        src_pid: int,
        make_message: Callable[[int], SystemMessage],
        include_self: bool = False,
    ) -> int:
        """Broadcast a system message to every process in the system.

        ``make_message(pid)`` builds the per-destination copy (broadcast
        flag set by this method). Returns the number of copies sent.
        Physically this is modelled as unicast fan-out, which upper
        layers may account as a single ``C_broad`` (see
        :mod:`repro.analysis.comparison`).
        """
        sent = 0
        for pid in self.process_ids:
            if pid == src_pid and not include_self:
                continue
            message = make_message(pid)
            message.broadcast = True
            self.send_from_process(src_pid, message)
            sent += 1
        return sent

    @property
    def process_ids(self) -> Tuple[int, ...]:
        """All registered process ids, sorted (cached between changes)."""
        pids = self._sorted_pids
        if pids is None:
            pids = self._sorted_pids = tuple(sorted(self._host_of_pid))
        return pids
