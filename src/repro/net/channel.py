"""FIFO communication channels with bandwidth and propagation delay.

A :class:`FifoChannel` models one direction of a point-to-point link.
Two timing models are supported:

* **Constant delay** (default, ``contention=False``) — the paper's §5.1
  model: every message takes exactly ``size_bytes * 8 / bandwidth_bps +
  latency`` seconds (1 KB ⇒ 4 ms, 50 B ⇒ 0.2 ms at 2 Mbps), clamped so
  arrivals never reorder (the reliable FIFO property of §2.1).
* **Contention** (``contention=True``) — transmissions serialize on the
  link: a message begins transmitting only after the previous one
  finished. Strictly FIFO as well, but bulk transfers back up the queue.

Channels can be paused (used to model an MH's wireless link going down
during handoff or disconnection); paused channels queue traffic and flush
it in order on resume.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.net.message import (
    CHECKPOINT_DATA_BYTES,
    COMPUTATION_MESSAGE_BYTES,
    SYSTEM_MESSAGE_BYTES,
    Message,
)
from repro.obs.registry import Counter
from repro.sim.kernel import Simulator

#: the fixed wire sizes of the paper's §5.1 model; per-channel delays
#: for these are precomputed so the hot path never divides by bandwidth
_PAPER_SIZES = (COMPUTATION_MESSAGE_BYTES, SYSTEM_MESSAGE_BYTES, CHECKPOINT_DATA_BYTES)

DeliverFn = Callable[[Message], None]


class FifoChannel:
    """One direction of a reliable FIFO link.

    Parameters
    ----------
    sim:
        The simulation kernel.
    bandwidth_bps:
        Link bandwidth in bits per second.
    latency:
        Propagation delay in seconds, added after transmission.
    deliver:
        Callback invoked at the destination when a message arrives.
    name:
        Label used in traces and repr.
    link_class:
        Aggregation key for the metrics registry: traffic is added to
        the ``net.<link_class>.bytes`` / ``net.<link_class>.msgs``
        counters of ``sim.metrics`` ("wired", "wireless", ...). ``None``
        leaves the channel out of the registry (per-channel
        ``bytes_sent``/``messages_sent`` still accumulate).
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        latency: float,
        deliver: DeliverFn,
        name: str = "channel",
        contention: bool = False,
        link_class: Optional[str] = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency!r}")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency = latency
        self.deliver = deliver
        self.name = name
        self.contention = contention
        self._busy_until = 0.0
        self._last_arrival = 0.0
        self._paused = False
        self._pending_while_paused: Deque[Message] = deque()
        # Per-channel (bytes, messages) counters for energy/overhead
        # accounting (per-host granularity that the registry's link-class
        # aggregates deliberately do not carry).
        self.bytes_sent = 0
        self.messages_sent = 0
        if link_class is not None:
            self._c_bytes = sim.metrics.counter(f"net.{link_class}.bytes")
            self._c_msgs = sim.metrics.counter(f"net.{link_class}.msgs")
        else:
            # Unregistered sinks: same code path, not in any snapshot.
            self._c_bytes = Counter(f"{name}.bytes")
            self._c_msgs = Counter(f"{name}.msgs")
        # Memoized size -> serialization time, seeded with the paper's
        # three fixed message sizes (same float expression as the miss
        # path, so cached and computed delays are bit-identical).
        self._tx_delay = {
            size: size * 8.0 / bandwidth_bps for size in _PAPER_SIZES
        }

    @property
    def paused(self) -> bool:
        """Whether the channel is currently paused (link down)."""
        return self._paused

    @property
    def min_delay(self) -> float:
        """Per-link lookahead: a static lower bound on send→arrival time.

        Propagation latency alone — transmission time (``size > 0``)
        and contention queueing only delay arrivals further, under both
        the constant-delay and serialized link models. The conservative
        windowed kernel (:mod:`repro.sim.shard`) uses the wired links'
        minimum as its horizon slack.
        """
        return self.latency

    def transmission_delay(self, message: Message) -> float:
        """Pure serialization time for ``message`` on this link."""
        size = message.size_bytes
        delay = self._tx_delay.get(size)
        if delay is None:
            delay = self._tx_delay[size] = size * 8.0 / self.bandwidth_bps
        return delay

    def send(self, message: Message) -> None:
        """Enqueue ``message`` for FIFO delivery."""
        if self._paused:
            self._pending_while_paused.append(message)
            return
        self._transmit(message)

    def pause(self) -> None:
        """Take the link down; subsequent sends queue until :meth:`resume`.

        Messages already transmitting are considered in flight and still
        arrive (the paper's handoff model reroutes at the MSS layer, not
        by dropping).
        """
        self._paused = True

    def resume(self) -> None:
        """Bring the link back up and flush queued traffic in order."""
        if not self._paused:
            return
        self._paused = False
        while self._pending_while_paused:
            self._transmit(self._pending_while_paused.popleft())

    def drain_pending(self) -> Tuple[Message, ...]:
        """Remove and return messages queued while paused (for rerouting)."""
        pending = tuple(self._pending_while_paused)
        self._pending_while_paused.clear()
        return pending

    def occupy(self, message: Message) -> float:
        """Charge ``message``'s transmission time to the link without
        delivering it to the far end.

        Used for transfers consumed by the infrastructure itself (e.g. a
        disconnect checkpoint absorbed by the MSS). Returns the time at
        which the transmission completes.
        """
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + self.transmission_delay(message)
        self.bytes_sent += message.size_bytes
        self.messages_sent += 1
        self._c_bytes.inc(message.size_bytes)
        self._c_msgs.inc()
        return self._busy_until

    def _transmit(self, message: Message) -> None:
        now = self.sim._now
        size = message.size_bytes
        self.bytes_sent += size
        self.messages_sent += 1
        self._c_bytes.inc(size)
        self._c_msgs.inc()
        delay = self._tx_delay.get(size)
        if delay is None:
            delay = self._tx_delay[size] = size * 8.0 / self.bandwidth_bps
        if self.contention:
            start = max(now, self._busy_until)
            finish = start + delay
            self._busy_until = finish
            arrival = finish + self.latency
        else:
            # Constant per-message delay, clamped to preserve FIFO order.
            arrival = now + delay + self.latency
            if arrival < self._last_arrival:
                arrival = self._last_arrival
        self._last_arrival = arrival
        # stream=self: a SchedulePolicy may jitter arrivals but the
        # kernel keeps this channel's deliveries in order (§2.1 FIFO).
        self.sim.schedule_at(arrival, self.deliver, message, stream=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "paused" if self._paused else "up"
        return f"<FifoChannel {self.name} {state} busy_until={self._busy_until:.6f}>"


class InstantChannel:
    """A zero-delay channel used by scripted scenarios and unit tests.

    Delivery still goes through the event queue (delay 0) so that the
    relative order of sends is preserved and handlers never reenter.
    """

    def __init__(
        self,
        sim: Simulator,
        deliver: DeliverFn,
        name: str = "instant",
        link_class: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.deliver = deliver
        self.name = name
        self.bytes_sent = 0
        self.messages_sent = 0
        if link_class is not None:
            self._c_bytes = sim.metrics.counter(f"net.{link_class}.bytes")
            self._c_msgs = sim.metrics.counter(f"net.{link_class}.msgs")
        else:
            self._c_bytes = Counter(f"{name}.bytes")
            self._c_msgs = Counter(f"{name}.msgs")

    @property
    def min_delay(self) -> float:
        """Per-link lookahead: an instant link offers none."""
        return 0.0

    def send(self, message: Message) -> None:
        self.bytes_sent += message.size_bytes
        self.messages_sent += 1
        self._c_bytes.inc(message.size_bytes)
        self._c_msgs.inc()
        self.sim.schedule(0.0, self.deliver, message, stream=self)
