"""Mobile network substrate: hosts, channels, routing, mobility.

Public surface:

* :class:`~repro.net.network.MobileNetwork` — topology + routing.
* :class:`~repro.net.mss.MobileSupportStation`, :class:`~repro.net.mh.MobileHost`.
* :class:`~repro.net.channel.FifoChannel` — bandwidth/latency FIFO links.
* Message types in :mod:`repro.net.message`.
* :func:`~repro.net.mobility.handoff`, :class:`~repro.net.mobility.RandomWalkMobility`.
* :func:`~repro.net.disconnect.disconnect`, :func:`~repro.net.disconnect.reconnect`.
"""

from repro.net.channel import FifoChannel, InstantChannel
from repro.net.disconnect import (
    BufferRecord,
    DisconnectProxy,
    DisconnectRecord,
    disconnect,
    reconnect,
)
from repro.net.message import (
    CheckpointDataMessage,
    ComputationMessage,
    Message,
    SystemMessage,
)
from repro.net.mh import MobileHost
from repro.net.mobility import RandomWalkMobility, handoff
from repro.net.mss import MobileSupportStation
from repro.net.network import MobileNetwork
from repro.net.params import NetworkParams

__all__ = [
    "BufferRecord",
    "CheckpointDataMessage",
    "ComputationMessage",
    "DisconnectProxy",
    "DisconnectRecord",
    "FifoChannel",
    "InstantChannel",
    "Message",
    "MobileHost",
    "MobileNetwork",
    "MobileSupportStation",
    "NetworkParams",
    "RandomWalkMobility",
    "SystemMessage",
    "disconnect",
    "handoff",
    "reconnect",
]
