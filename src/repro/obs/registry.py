"""Metrics registry: named counters, gauges, and histograms.

Design constraints, in order:

* **Cheap on the hot path.** Instruments are plain objects with
  ``__slots__``; emitters look them up once (at construction) and then
  pay one attribute access plus a float add per update.
* **Deterministic.** Snapshots are sorted dicts of JSON-safe values, so
  two runs that performed the same updates produce byte-identical
  serialized snapshots.
* **Mergeable.** :meth:`MetricsRegistry.merge` folds one registry (or
  snapshot) into another. Counter merge is addition and histogram merge
  is bucket-count addition, so the merge is associative and commutative
  on integer-valued observations — the property that makes campaign
  aggregation independent of worker count (workers merge in grid order
  regardless of completion order; see
  :meth:`repro.campaign.engine.CampaignReport.merged_metrics`).

The registry also speaks the legacy :class:`repro.sim.monitor.Monitor`
vocabulary (``increment``/``observe``/``counters``) so protocol code and
results collection migrate without a flag day.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "default_bounds"]


def default_bounds() -> Tuple[float, ...]:
    """The default histogram bucket upper bounds: powers of two.

    Spans 2**-14 (~61 us) through 2**16 (~18 h) — wide enough for both
    message latencies and checkpoint durations in simulated seconds.
    """
    return tuple(2.0 ** k for k in range(-14, 17))


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative by convention)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A named value that can move both ways (queue depth, clock, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (merge-friendly gauge use)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max moments.

    Bucket ``i`` counts observations ``v <= bounds[i]`` (first matching
    bound); values above the last bound land in the overflow bucket.
    Percentiles are estimated as the upper bound of the bucket where the
    cumulative count crosses the rank, clamped to the observed
    ``[minimum, maximum]`` — so ``percentile(0) == minimum`` and
    ``percentile(100) == maximum`` exactly.

    ``sum_sq`` is tracked so :attr:`variance`/:attr:`stdev` are exact
    (not bucket-estimated) and merge exactly.
    """

    __slots__ = (
        "name", "bounds", "bucket_counts", "count", "total", "sum_sq",
        "minimum", "maximum",
    )

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_bounds()
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds!r}")
        # one bucket per bound plus the overflow bucket
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        m2 = self.sum_sq - self.total * self.total / self.count
        return max(m2, 0.0) / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, p: float) -> float:
        """Bucket-estimated p-th percentile, p in [0, 100]."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        if self.count == 0:
            return 0.0
        if p == 0.0:
            return self.minimum
        rank = math.ceil(p / 100.0 * self.count)
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            cumulative += n
            if cumulative >= rank:
                estimate = self.bounds[i] if i < len(self.bounds) else self.maximum
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - rank <= count always hits

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bounds must match)."""
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.name!r} vs {other.name!r}"
            )
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (infinities encoded as None)."""
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "sum_sq": self.sum_sq,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
        }

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Any]) -> "Histogram":
        hist = cls(name, bounds=data["bounds"])
        hist.bucket_counts = list(data["bucket_counts"])
        hist.count = data["count"]
        hist.total = data["total"]
        hist.sum_sq = data["sum_sq"]
        hist.minimum = math.inf if data["min"] is None else data["min"]
        hist.maximum = -math.inf if data["max"] is None else data["max"]
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.4f}>"


class MetricsRegistry:
    """Named instruments for one simulation run (or one aggregate)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) -----------------------
    def counter(self, name: str) -> Counter:
        """The counter instrument ``name`` (created at zero)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge instrument ``name`` (created at zero)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram instrument ``name`` (created empty).

        ``bounds`` only applies at creation; a later lookup with
        different bounds raises to catch silent bucket mismatches.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds=bounds)
        elif bounds is not None and tuple(bounds) != instrument.bounds:
            raise ValueError(f"histogram {name!r} exists with different bounds")
        return instrument

    # -- reads -------------------------------------------------------------
    def value(self, name: str) -> float:
        """Current value of counter or gauge ``name`` (0.0 if absent)."""
        if name in self._counters:
            return self._counters[name].value
        if name in self._gauges:
            return self._gauges[name].value
        return 0.0

    def counters(self) -> Dict[str, float]:
        """A flat snapshot of all counter values, sorted by name."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def names(self) -> Tuple[str, ...]:
        """All instrument names, sorted."""
        return tuple(
            sorted({*self._counters, *self._gauges, *self._histograms})
        )

    # -- legacy Monitor vocabulary ----------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Legacy shim: add to counter ``name``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Legacy shim: record one sample into histogram ``name``."""
        self.histogram(name).observe(value)

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe, deterministically ordered dump of every instrument."""
        return {
            "counters": self.counters(),
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = value
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).value = value
        for name, hist in data.get("histograms", {}).items():
            registry._histograms[name] = Histogram.from_dict(name, hist)
        return registry

    def merge(self, other: Union["MetricsRegistry", Dict[str, Any]]) -> None:
        """Fold another registry (or a snapshot dict) into this one.

        Counters and histograms add; gauges combine by maximum (the only
        merge that is order-independent — gauges that need last-writer
        semantics should not be aggregated across runs).
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_snapshot(other)
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).max(gauge.value)
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = Histogram.from_dict(name, hist.to_dict())
            else:
                mine.merge(hist)

    @classmethod
    def merged(
        cls, snapshots: Iterable[Union["MetricsRegistry", Dict[str, Any]]]
    ) -> "MetricsRegistry":
        """A fresh registry holding the merge of ``snapshots`` in order."""
        registry = cls()
        for snap in snapshots:
            registry.merge(snap)
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )
