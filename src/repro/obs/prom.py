"""Prometheus text exposition (format 0.0.4): renderer and validating parser.

Stdlib-only on purpose — the service exposes ``GET /metrics.prom`` and CI
must validate the scrape without installing a client library. The
renderer maps a :meth:`~repro.obs.registry.MetricsRegistry.snapshot`
onto exposition families in canonical order:

* counters  -> ``<prefix><name>_total`` (``TYPE counter``)
* gauges    -> ``<prefix><name>``       (``TYPE gauge``)
* histograms-> ``<prefix><name>`` with cumulative ``_bucket{le=...}``
  lines, ``_sum`` and ``_count`` (``TYPE histogram``)

Dotted registry names are sanitized (``net.wired.bytes`` ->
``net_wired_bytes``); a collision between two source names raises rather
than silently merging families. Families are sorted by exposition name
and labels by key, so two renders of equal inputs are byte-identical.

:func:`parse_prometheus_text` is the matching validator: it checks
``# HELP``/``# TYPE`` discipline, sample/family agreement, counter
non-negativity, and histogram bucket monotonicity, raising
``ValueError`` with a line number on the first violation.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CONTENT_TYPE",
    "parse_prometheus_text",
    "render_prometheus",
    "sample_map",
]

#: HTTP Content-Type of the exposition format this module speaks
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"(?:,|$)'
)

_UNESCAPES = {"n": "\n", "\\": "\\", '"': '"'}


def _unescape_label(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            out.append(_UNESCAPES.get(value[i + 1], "\\" + value[i + 1]))
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _sanitize(name: str, prefix: str) -> str:
    out = prefix + _SANITIZE.sub("_", name)
    if not _NAME_OK.match(out):
        raise ValueError(f"cannot express metric name {name!r} in exposition format")
    return out


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    pairs = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + pairs + "}"


def render_prometheus(
    snapshot: Dict[str, Any],
    prefix: str = "repro_",
    extra_gauges: Iterable[Tuple[str, Dict[str, str], float]] = (),
) -> str:
    """Render a registry snapshot (plus ad-hoc labelled gauges) to text.

    ``extra_gauges`` is an iterable of ``(name, labels, value)`` triples
    — the service uses it for per-job gauges. Samples sharing a name
    form one family; output is sorted by family name, then by labels.
    """
    families: Dict[str, Dict[str, Any]] = {}

    def family(name: str, source: str, ftype: str, help_text: str) -> Dict[str, Any]:
        fam = families.get(name)
        if fam is None:
            fam = families[name] = {
                "source": source,
                "type": ftype,
                "help": help_text,
                "lines": [],
            }
        elif fam["source"] != source or fam["type"] != ftype:
            raise ValueError(
                f"metric name collision: {source!r} and {fam['source']!r} "
                f"both render as {name!r}"
            )
        return fam

    for name, value in snapshot.get("counters", {}).items():
        out = _sanitize(name, prefix) + "_total"
        fam = family(out, name, "counter", f"registry counter {name}")
        fam["lines"].append((out, "", float(value)))

    for name, value in snapshot.get("gauges", {}).items():
        out = _sanitize(name, prefix)
        fam = family(out, name, "gauge", f"registry gauge {name}")
        fam["lines"].append((out, "", float(value)))

    for name, hist in snapshot.get("histograms", {}).items():
        out = _sanitize(name, prefix)
        fam = family(out, name, "histogram", f"registry histogram {name}")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["bucket_counts"]):
            cumulative += count
            fam["lines"].append(
                (out + "_bucket", _format_labels({"le": _format_value(bound)}),
                 float(cumulative))
            )
        fam["lines"].append(
            (out + "_bucket", '{le="+Inf"}', float(hist["count"]))
        )
        fam["lines"].append((out + "_sum", "", float(hist["total"])))
        fam["lines"].append((out + "_count", "", float(hist["count"])))

    for name, labels, value in extra_gauges:
        out = _sanitize(name, prefix)
        fam = family(out, name, "gauge", f"service gauge {name}")
        fam["lines"].append((out, _format_labels(labels), float(value)))

    chunks: List[str] = []
    for name in sorted(families):
        fam = families[name]
        chunks.append(f"# HELP {name} {fam['help']}")
        chunks.append(f"# TYPE {name} {fam['type']}")
        lines = fam["lines"]
        if fam["type"] != "histogram":
            # histogram sample order is structural (buckets ascending);
            # scalar families sort by labels for canonical output
            lines = sorted(lines)
        for sample_name, labels, value in lines:
            chunks.append(f"{sample_name}{labels} {_format_value(value)}")
    return "\n".join(chunks) + "\n" if chunks else ""


def _parse_value(text: str, lineno: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"line {lineno}: bad sample value {text!r}") from None


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse and validate exposition text.

    Returns ``{family: {"type", "help", "samples": [(name, labels, value)]}}``
    with ``labels`` as a sorted tuple of ``(key, value)`` pairs. Raises
    ``ValueError`` (with the offending line number) on malformed lines,
    samples without a ``# TYPE``, missing ``# HELP``, negative counter
    or bucket values, non-cumulative histogram buckets, or a histogram
    whose ``_count`` disagrees with its ``+Inf`` bucket.
    """
    families: Dict[str, Dict[str, Any]] = {}
    current: Optional[str] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            fam = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            fam["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ", 1)
            if len(parts) != 2 or parts[1] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line {raw!r}")
            name = parts[0]
            fam = families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )
            if fam["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
            fam["type"] = parts[1]
            current = name
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample line {raw!r}")
        sample_name = match.group("name")
        fam_name = sample_name
        if current is not None and sample_name.startswith(current):
            suffix = sample_name[len(current):]
            if suffix in ("", "_bucket", "_sum", "_count", "_total"):
                fam_name = current
        fam = families.get(fam_name)
        if fam is None or fam["type"] is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no # TYPE family"
            )
        labels: List[Tuple[str, str]] = []
        label_text = match.group("labels")
        if label_text:
            pos = 0
            while pos < len(label_text):
                pair_match = _LABEL_PAIR.match(label_text, pos)
                if pair_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {label_text[pos:]!r}"
                    )
                labels.append((
                    pair_match.group("key"),
                    _unescape_label(pair_match.group("value")),
                ))
                pos = pair_match.end()
        value = _parse_value(match.group("value"), lineno)
        if fam["type"] == "counter" and value < 0:
            raise ValueError(f"line {lineno}: negative counter {sample_name!r}")
        fam["samples"].append((sample_name, tuple(sorted(labels)), value))

    for name, fam in families.items():
        if fam["type"] is None:
            raise ValueError(f"family {name!r} has HELP but no TYPE")
        if fam["help"] is None:
            raise ValueError(f"family {name!r} has no HELP line")
        if fam["type"] == "histogram":
            _validate_histogram(name, fam["samples"])
    return families


def _validate_histogram(
    name: str, samples: List[Tuple[str, Tuple[Tuple[str, str], ...], float]]
) -> None:
    buckets: List[Tuple[float, float]] = []
    count: Optional[float] = None
    for sample_name, labels, value in samples:
        if sample_name == name + "_bucket":
            le = dict(labels).get("le")
            if le is None:
                raise ValueError(f"histogram {name!r}: bucket without le label")
            buckets.append((math.inf if le == "+Inf" else float(le), value))
            if value < 0:
                raise ValueError(f"histogram {name!r}: negative bucket count")
        elif sample_name == name + "_count":
            count = value
    buckets.sort()
    previous = 0.0
    for bound, value in buckets:
        if value < previous:
            raise ValueError(
                f"histogram {name!r}: bucket le={bound} not cumulative"
            )
        previous = value
    if buckets and buckets[-1][0] != math.inf:
        raise ValueError(f"histogram {name!r}: missing +Inf bucket")
    if buckets and count is not None and buckets[-1][1] != count:
        raise ValueError(
            f"histogram {name!r}: _count {count} != +Inf bucket {buckets[-1][1]}"
        )


def sample_map(
    families: Dict[str, Dict[str, Any]]
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Flatten parsed families to ``{(sample_name, labels): value}``.

    Convenient for monotonicity assertions between two scrapes (the CI
    metrics-smoke job compares counter samples this way).
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for fam in families.values():
        for sample_name, labels, value in fam["samples"]:
            out[(sample_name, labels)] = value
    return out
