"""Kernel benchmark: measured event-dispatch rates with a committed baseline.

``benchmarks/bench_kernel.py`` and ``repro-sim profile --bench`` both run
:func:`run_bench_suite`, which times a fixed set of simulation scenarios
and reports **events per second**. Because raw rates are
hardware-dependent, every result also carries a *normalized* rate:
``rate / calibration_rate``, where the calibration rate comes from a
fixed pure-Python spin loop timed on the same machine in the same
process. Normalized rates are comparable across machines to first
order, which is what lets ``BENCH_kernel.json`` live in the repository
and CI fail on genuine regressions rather than on slower runners.

Regression rule (:func:`compare`): a case regresses when its normalized
rate drops more than ``threshold`` (default 25%) below the baseline's.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import (
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.net.message import ComputationMessage
from repro.workload.point_to_point import PointToPointWorkload

__all__ = [
    "BenchCase",
    "BenchResult",
    "MicroBenchCase",
    "append_history",
    "calibrate",
    "compare",
    "default_cases",
    "format_trends",
    "ladder_cases",
    "load_history",
    "run_bench_suite",
]

#: regression threshold used by CI (fraction of normalized baseline rate)
DEFAULT_THRESHOLD = 0.25

#: iterations of the calibration spin loop (~tens of ms on 2020s CPUs)
_CALIBRATION_ITERS = 2_000_000


def calibrate() -> float:
    """Machine-speed yardstick: iterations/second of a fixed spin loop.

    Pure Python, allocation-free, interpreter-bound — the same work the
    kernel's hot path is made of, so dividing a bench rate by this rate
    cancels most of the hardware/interpreter speed difference between
    the committing machine and the checking machine.
    """
    best = 0.0
    for _ in range(5):
        acc = 0
        start = time.perf_counter()
        for i in range(_CALIBRATION_ITERS):
            acc += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, _CALIBRATION_ITERS / elapsed)
    return best


@dataclass
class BenchCase:
    """One benchmark scenario: a builder plus how long to run it."""

    name: str
    build: Callable[[], Tuple[MobileSystem, ExperimentRunner]]
    description: str = ""

    def run(self, burn: Optional[Callable[[], None]] = None) -> Tuple[int, float]:
        """Execute once; returns (events_processed, wall_seconds).

        ``burn`` (testing hook) is invoked once per kernel event to
        plant an artificial slowdown for regression-detection tests; it
        rides the kernel's :meth:`~repro.sim.kernel.Simulator.set_burn`
        hook, so it slows the fast loop the runner actually uses.
        """
        system, runner = self.build()
        sim = system.sim
        if burn is not None:
            sim.set_burn(burn)
        start = time.perf_counter()
        runner.run()
        elapsed = time.perf_counter() - start
        return sim.events_processed, elapsed


@dataclass
class MicroBenchCase:
    """A kernel-free micro-benchmark: times ``op(i)`` over a fixed loop.

    Duck-compatible with :class:`BenchCase` (same ``name``/``run``
    surface), so it slots into :func:`run_bench_suite` and
    :func:`compare` unchanged. The reported "events" are iterations.
    """

    name: str
    op: Callable[[int], Any]
    iterations: int = 200_000
    description: str = ""

    def run(self, burn: Optional[Callable[[], None]] = None) -> Tuple[int, float]:
        op = self.op
        start = time.perf_counter()
        if burn is None:
            for i in range(self.iterations):
                op(i)
        else:
            for i in range(self.iterations):
                burn()
                op(i)
        elapsed = time.perf_counter() - start
        return self.iterations, elapsed


@dataclass
class BenchResult:
    """Measured outcome of one case on one machine."""

    name: str
    events: int
    seconds: float
    rate: float
    normalized_rate: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "events": self.events,
            "seconds": self.seconds,
            "rate": self.rate,
            "normalized_rate": self.normalized_rate,
        }


def _experiment_case(
    name: str,
    description: str,
    trace_messages: bool,
    n_processes: int = 16,
    max_initiations: int = 12,
) -> BenchCase:
    def build() -> Tuple[MobileSystem, ExperimentRunner]:
        config = SystemConfig(
            n_processes=n_processes, seed=7, trace_messages=trace_messages
        )
        system = MobileSystem(config, MutableCheckpointProtocol())
        workload = PointToPointWorkload(
            system, PointToPointWorkloadConfig(mean_send_interval=1.0)
        )
        runner = ExperimentRunner(
            system, workload, RunConfig(max_initiations=max_initiations)
        )
        return system, runner

    return BenchCase(name=name, build=build, description=description)


def _message_alloc_case() -> MicroBenchCase:
    """Message construction + tagging micro-bench (tracks the slotted
    message classes and the zero-alloc piggyback fast lane)."""

    def op(i: int) -> Any:
        message = ComputationMessage(src_pid=0, dst_pid=1, payload=i, msg_id=i)
        message.pb = (i, None)
        return message

    return MicroBenchCase(
        name="message_alloc",
        op=op,
        description="construct one slotted ComputationMessage and tag its csn pair",
    )


def _snapshot_overhead_case() -> BenchCase:
    """The 16p trace-off run with in-memory snapshots every 1000 events.

    Pairs with ``mutable_16p_trace_off`` (identical run, snapshotting
    disabled): their rate ratio is the whole-state capture cost, and the
    25% :func:`compare` gate keeps both the hooked loop and the pickle
    path honest.
    """

    def build() -> Tuple[MobileSystem, ExperimentRunner]:
        from repro.snapshot import SnapshotPolicy, Snapshotter

        config = SystemConfig(n_processes=16, seed=7, trace_messages=False)
        system = MobileSystem(config, MutableCheckpointProtocol())
        workload = PointToPointWorkload(
            system, PointToPointWorkloadConfig(mean_send_interval=1.0)
        )
        runner = ExperimentRunner(
            system, workload, RunConfig(max_initiations=12)
        )
        snapshotter = Snapshotter(runner, SnapshotPolicy(every_events=1000))
        snapshotter.install()
        return system, runner

    return BenchCase(
        name="snapshot_overhead",
        build=build,
        description=(
            "16-process trace-off run snapshotting whole state in memory "
            "every 1000 events"
        ),
    )


@dataclass
class _StoreBenchCase:
    """Result-store backend throughput: N appends then N hash lookups.

    Duck-compatible with :class:`BenchCase`. Each run writes into a
    fresh temporary directory (deleted afterwards), so the measurement
    is the backend's steady-state append+lookup path, not filesystem
    reuse artifacts. Reported "events" are operations (2 × points).

    The JSONL backend fsyncs every append (its durability contract), so
    its rate is partly disk-bound; the SQLite backend commits in WAL
    mode with ``synchronous=NORMAL`` and batches fsyncs. The pair
    documents what the service gains by moving campaign results into
    SQLite — and the 25% gate keeps both append paths honest.
    """

    name: str
    backend: str  # "jsonl" | "sqlite"
    points: int = 10_000
    description: str = ""

    def _make_record(self, i: int):
        from repro.campaign.store import PointRecord

        return PointRecord(
            point_hash=f"{i:032x}",
            status="ok",
            point={"protocol": "mutable", "seed": i},
            result={"protocol": "mutable", "n_processes": 2, "seed": i,
                    "initiations": [], "counters": {},
                    "total_blocked_time": 0.0, "sim_time": 1.0,
                    "wall_events": 10},
        )

    def run(self, burn: Optional[Callable[[], None]] = None) -> Tuple[int, float]:
        import shutil
        import tempfile

        from repro.campaign.store import ResultStore

        records = [self._make_record(i) for i in range(self.points)]
        workdir = tempfile.mkdtemp(prefix="bench-store-")
        try:
            if self.backend == "jsonl":
                store: Any = ResultStore(workdir + "/results.jsonl")
            else:
                from repro.service.db import ResultDB

                store = ResultDB(workdir + "/results.sqlite")
            start = time.perf_counter()
            for record in records:
                if burn is not None:
                    burn()
                store.append(record)
            for record in records:
                if burn is not None:
                    burn()
                if store.get(record.point_hash) is None:
                    raise AssertionError("lookup missed a written record")
            elapsed = time.perf_counter() - start
            store.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        return 2 * self.points, elapsed


def _store_backend_cases() -> List[_StoreBenchCase]:
    return [
        _StoreBenchCase(
            name="store_jsonl_10k",
            backend="jsonl",
            description=(
                "10k PointRecord appends (fsync each) + 10k hash lookups "
                "on the JSONL ResultStore"
            ),
        ),
        _StoreBenchCase(
            name="store_sqlite_10k",
            backend="sqlite",
            description=(
                "10k PointRecord appends + 10k hash lookups on the "
                "SQLite ResultDB (WAL, synchronous=NORMAL)"
            ),
        ),
    ]


@dataclass
class _LadderBenchCase:
    """A population rung: a fixed event budget at ``n`` processes.

    Completion-driven cases (the default suite) are intractable at 1k+
    processes, so ladder rungs drive the kernel for a fixed number of
    events through the same fused loop the runner uses and report the
    same events/second. Duck-compatible with :class:`BenchCase`.
    """

    name: str
    n_processes: int
    max_events: int = 150_000
    timeseries_window: Optional[float] = None
    n_mss: int = 1
    shards: int = 1
    description: str = ""

    def run(self, burn: Optional[Callable[[], None]] = None) -> Tuple[int, float]:
        from repro.errors import SimulationError

        config = SystemConfig(
            n_processes=self.n_processes, seed=7, trace_messages=False,
            timeseries_window=self.timeseries_window,
            n_mss=self.n_mss, shards=self.shards,
        )
        system = MobileSystem(config, MutableCheckpointProtocol())
        workload = PointToPointWorkload(
            system, PointToPointWorkloadConfig(mean_send_interval=1.0)
        )
        runner = ExperimentRunner(
            system, workload, RunConfig(max_initiations=2)
        )
        sim = system.sim
        if burn is not None:
            sim.set_burn(burn)
        workload.start()
        runner._schedule_first_initiations()
        start = time.perf_counter()
        try:
            sim.run(max_events=self.max_events)
        except SimulationError:
            # budget reached — the measurement, not an error
            pass
        elapsed = time.perf_counter() - start
        return sim.events_processed, elapsed


def ladder_cases(populations: Tuple[int, ...] = (256, 1024, 4096)) -> List[Any]:
    """The population ladder: per-event rates at growing system sizes.

    Together with the default suite's ``mutable_32p_trace_off`` rung
    this commits a 32p -> 256p -> 1024p -> 4096p series to
    ``BENCH_kernel.json``; the 1024p normalized rate staying within 4x
    of the 32p rate is the scaling acceptance criterion (per-message
    work must not grow linearly with the population).
    """
    cases: List[Any] = [
        _LadderBenchCase(
            name=f"mutable_{n}p_trace_off",
            n_processes=n,
            description=(
                f"{n}-process mutable-checkpoint run, tracing off, "
                "fixed 150k-event budget"
            ),
        )
        for n in populations
    ]
    if 1024 in populations:
        # Sampler-on twin of the 1024p rung: its rate ratio against
        # mutable_1024p_trace_off is the telemetry sampling overhead
        # (acceptance: <= 3% events/s regression).
        cases.append(
            _LadderBenchCase(
                name="mutable_1024p_timeseries_1s",
                n_processes=1024,
                timeseries_window=1.0,
                description=(
                    "the 1024p rung with the timeseries sampler on "
                    "(1 sim-second windows)"
                ),
            )
        )
        # Sharded-kernel rungs: an 8-cell sequential control plus the
        # same topology on the windowed kernel at 2 and 4 shards. Their
        # rate ratios are the barrier/window overhead of the inline
        # canonical-merge backend (single-core: expect <= 1x, see
        # docs/DESIGN.md); the 25% gate keeps that overhead honest.
        cases.append(
            _LadderBenchCase(
                name="mutable_1024p_mss8",
                n_processes=1024,
                n_mss=8,
                description=(
                    "the 1024p rung over 8 cells on the sequential "
                    "kernel (control for the shards rungs)"
                ),
            )
        )
        for n_shards in (2, 4):
            cases.append(
                _LadderBenchCase(
                    name=f"mutable_1024p_shards{n_shards}",
                    n_processes=1024,
                    n_mss=8,
                    shards=n_shards,
                    description=(
                        f"the 1024p 8-cell rung on the windowed sharded "
                        f"kernel with {n_shards} shards"
                    ),
                )
            )
    return cases


def default_cases() -> List[Any]:
    """The standing kernel benchmark suite.

    The trace-on/trace-off pair measures the leveled-tracing fast path:
    identical runs except for the trace level, so their rate ratio is
    the hot-path cost of message tracing. ``snapshot_overhead`` re-runs
    the trace-off case with every-1000-events in-memory snapshots.
    """
    return [
        _experiment_case(
            "mutable_16p_trace_off",
            "16-process mutable-checkpoint run, message tracing off (INFO)",
            trace_messages=False,
        ),
        _experiment_case(
            "mutable_16p_trace_on",
            "same run with full message tracing (DEBUG)",
            trace_messages=True,
        ),
        _experiment_case(
            "mutable_32p_trace_off",
            "32-process run, message tracing off",
            trace_messages=False,
            n_processes=32,
            max_initiations=8,
        ),
        _experiment_case(
            "mutable_32p_trace_on",
            "32-process run with full message tracing (DEBUG)",
            trace_messages=True,
            n_processes=32,
            max_initiations=8,
        ),
        _message_alloc_case(),
        _snapshot_overhead_case(),
        *_store_backend_cases(),
    ]


def run_bench_suite(
    cases: Optional[List[BenchCase]] = None,
    repeats: int = 3,
    burn: Optional[Callable[[], None]] = None,
    calibration_rate: Optional[float] = None,
) -> Dict[str, Any]:
    """Run the suite and return a JSON-safe report (best-of-``repeats``)."""
    if cases is None:
        cases = default_cases()
    measured: List[Tuple[str, int, float, float]] = []
    for case in cases:
        best_rate = 0.0
        best: Tuple[int, float] = (0, 0.0)
        for _ in range(repeats):
            events, seconds = case.run(burn=burn)
            rate = events / seconds if seconds > 0 else 0.0
            if rate > best_rate:
                best_rate = rate
                best = (events, seconds)
        measured.append((case.name, best[0], best[1], best_rate))
    if calibration_rate is None:
        # Calibrate twice, bracketing the suite, and keep the faster
        # sample: a transiently loaded machine then under-reports the
        # yardstick (inflating normalized rates) at most briefly, and a
        # slow yardstick is the failure mode that fakes regressions.
        calibration_rate = max(calibrate(), calibrate())
    results = [
        BenchResult(
            name=name,
            events=events,
            seconds=seconds,
            rate=rate,
            normalized_rate=rate / calibration_rate,
        )
        for name, events, seconds, rate in measured
    ]
    return {
        "schema": 1,
        "calibration_rate": calibration_rate,
        "python": sys.version.split()[0],
        "results": [r.to_dict() for r in results],
    }


def _duplicate_rate_warnings(report: Dict[str, Any], label: str) -> List[str]:
    """Cases sharing a normalized rate to 15 significant digits.

    Independent timed measurements never collide at that precision; a
    collision means one entry was copy-pasted or written from a stale
    variable (this actually happened: the committed
    ``mutable_1024p_timeseries_1s`` baseline once carried
    ``mutable_1024p_trace_off``'s exact rate). Zero rates are skipped —
    placeholder entries may legitimately share 0.
    """
    groups: Dict[str, List[str]] = {}
    for result in report.get("results", []):
        rate = result.get("normalized_rate", 0.0)
        if not rate:
            continue
        groups.setdefault(f"{rate:.15e}", []).append(result["name"])
    return [
        f"{label}: {' and '.join(names)} share normalized_rate "
        f"{key} — copy artifact? re-measure with --write"
        for key, names in sorted(groups.items())
        if len(names) > 1
    ]


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    warnings: Optional[List[str]] = None,
) -> List[str]:
    """Regressions of ``current`` against ``baseline``.

    Returns one human-readable line per case whose normalized rate fell
    more than ``threshold`` below the baseline's; empty means clean.
    Cases present on only one side never fail (suites may grow), but a
    measured case with no committed baseline is noted in ``warnings``
    (a caller-provided list, appended in place) so new cases don't ride
    ungated forever — as are identical-to-15-digits normalized rates on
    either side, which can only be copy artifacts, never measurements.
    """
    base_by_name = {r["name"]: r for r in baseline.get("results", [])}
    failures: List[str] = []
    if warnings is not None:
        warnings.extend(_duplicate_rate_warnings(baseline, "baseline"))
        warnings.extend(_duplicate_rate_warnings(current, "measured"))
    for result in current.get("results", []):
        base = base_by_name.get(result["name"])
        if base is None:
            if warnings is not None:
                warnings.append(
                    f"{result['name']}: no baseline entry — not gated; "
                    "rerun with --write to commit one"
                )
            continue
        if base["normalized_rate"] <= 0:
            continue
        ratio = result["normalized_rate"] / base["normalized_rate"]
        if ratio < 1.0 - threshold:
            failures.append(
                f"{result['name']}: normalized rate {result['normalized_rate']:.4f} "
                f"is {(1.0 - ratio) * 100:.1f}% below baseline "
                f"{base['normalized_rate']:.4f} (threshold {threshold * 100:.0f}%)"
            )
    return failures


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """Read a committed baseline; None if the file is missing/empty."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if data.get("results") else None


# -- bench history ---------------------------------------------------------
def append_history(
    path: str,
    report: Dict[str, Any],
    git_sha: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Append one run to the bench history (JSONL); returns the record.

    Records carry only *normalized* rates, so a history accumulated
    across different machines still traces one comparable trajectory
    per case — the raw calibration rate rides along for context.
    """
    record = {
        "schema": 1,
        "timestamp": time.time() if timestamp is None else timestamp,
        "git_sha": git_sha or "unknown",
        "python": report.get("python"),
        "calibration_rate": report.get("calibration_rate"),
        "normalized_rates": {
            r["name"]: r["normalized_rate"]
            for r in report.get("results", [])
        },
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: str) -> List[Dict[str, Any]]:
    """All history records in append order; [] if missing. Skips any
    line that does not parse (a crashed append leaves a partial line)."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    records.append(record)
    except OSError:
        return []
    return records


def format_trends(history: List[Dict[str, Any]], width: int = 32) -> str:
    """Per-case normalized-rate trajectories, one sparkline per case."""
    from repro.analysis.ascii_chart import sparkline

    names = sorted(
        {name for rec in history for name in rec.get("normalized_rates", {})}
    )
    if not names:
        return "(no history)"
    lines = []
    for name in names:
        series = [
            rec["normalized_rates"][name]
            for rec in history
            if name in rec.get("normalized_rates", {})
        ]
        delta = (
            (series[-1] / series[0] - 1.0) * 100.0 if series[0] > 0 else 0.0
        )
        lines.append(
            f"{name:28s} {sparkline(series, width=width):{min(width, 32)}s} "
            f"{series[-1]:.5f} ({delta:+.1f}% over {len(series)} runs)"
        )
    return "\n".join(lines)
