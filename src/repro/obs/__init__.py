"""Observability: metrics registry, kernel profiler, benchmark harness.

The simulator is judged by counted quantities — checkpoints forced,
system messages, blocking time (the paper's Figs. 5/6 and Table 1) —
and by how fast the kernel dispatches events. This package gives both
first-class infrastructure:

* :mod:`repro.obs.registry` — named instruments (counters, gauges,
  histograms) with deterministic, losslessly serializable snapshots and
  an associative merge, so per-worker metrics fold into campaign-level
  aggregates bit-identically for any worker count;
* :mod:`repro.obs.profiler` — span-based profiling of the DES kernel
  (per-event-kind timing, dispatch counts, heap statistics), exposed via
  ``repro-sim profile``;
* :mod:`repro.obs.bench` — the kernel benchmark behind
  ``benchmarks/bench_kernel.py`` and the committed ``BENCH_kernel.json``
  baseline (hardware-normalized regression checking);
* :mod:`repro.obs.forensics` — causal wave forensics: reconstructs each
  checkpoint wave from the trace, explains every forced checkpoint as a
  happened-before chain back to the initiator, and compares the forced
  set against the minimality checker's justified closure. Exposed via
  ``repro-sim inspect``;
* :mod:`repro.obs.timeseries` — deterministic sim-time-windowed sampling
  of selected registry series into per-window delta rows (bounded ring,
  JSONL/TSV export, worker-count-independent merge), riding the kernel's
  between-events hook so it is observably invisible to the simulation;
* :mod:`repro.obs.prom` — stdlib-only Prometheus text exposition
  renderer + validating parser behind the service's ``GET /metrics.prom``.

Instrument naming scheme (see docs/API.md): dotted ``layer.component``
paths for infrastructure metrics (``net.wireless.bytes``,
``kernel.events``); the paper's protocol-level counters keep their
historical flat names (``system_messages``, ``mutable_checkpoints``)
because they are part of the result wire format.
"""

from repro.obs.forensics import (
    EventGraph,
    ForensicReport,
    WaveReport,
    build_forensics,
)
from repro.obs.profiler import KernelProfiler, SpanStat
from repro.obs.prom import parse_prometheus_text, render_prometheus
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timeseries import (
    TimeseriesSampler,
    merge_timeseries,
    save_timeseries,
)

__all__ = [
    "Counter",
    "EventGraph",
    "ForensicReport",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "SpanStat",
    "TimeseriesSampler",
    "WaveReport",
    "build_forensics",
    "merge_timeseries",
    "parse_prometheus_text",
    "render_prometheus",
    "save_timeseries",
]
