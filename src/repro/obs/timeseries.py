"""Deterministic sim-time-windowed telemetry for live runs.

End-of-run metric snapshots say *what* a run cost; they cannot say
*when*. :class:`TimeseriesSampler` closes that gap: once per sim-time
window it snapshots a selected set of :class:`~repro.obs.registry.
MetricsRegistry` series (kernel event throughput, wired/wireless bytes,
checkpoint counts, ...) into a bounded ring of per-window **delta** rows
that travel on the :class:`~repro.core.results.RunResult` and stream out
of the campaign service while a job is still running.

Determinism contract
--------------------
The sampler rides the kernel's between-events hook (the same mechanism
as :class:`repro.snapshot.Snapshotter`) and only ever *reads* simulation
state — it never schedules events, consumes sequence numbers, or touches
the trace. Consequences, both pinned by
``tests/integration/test_timeseries_determinism.py``:

* disabled (``SystemConfig.timeseries_window is None``) it does not even
  exist, and the kernel runs the plain fused loop — bit-identical golden
  hashes, zero overhead;
* enabled, the simulation's trace and event sequence are unchanged, and
  because the event sequence is deterministic the emitted rows are
  byte-identical for a given (config, seed).

Rows hold per-window deltas, so merging runs is per-window addition —
associative and commutative, which makes campaign-level aggregation
independent of worker count exactly like
:meth:`~repro.campaign.engine.CampaignReport.merged_metrics`.

Wave-lifecycle instrumentation
------------------------------
While a sampler is installed it also derives per-wave series from the
trace records every protocol already emits (``initiation``/``commit``/
``abort``/``tentative``): wave latency and per-wave blocked time
histograms, plus ``wave.commits``/``wave.aborts``/
``wave.forced_checkpoints`` counters. These instruments exist *only*
when sampling is enabled, so a sampler-off run's metrics snapshot — and
therefore its ``metrics_sha256`` golden — is unchanged.
"""

from __future__ import annotations

import io
import json
from collections import deque
from typing import IO, Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_CHECK_EVERY",
    "DEFAULT_SERIES",
    "TimeseriesSampler",
    "dump_timeseries_jsonl",
    "dump_timeseries_tsv",
    "dumps_timeseries",
    "merge_timeseries",
    "save_timeseries",
]

#: counters sampled per window (deltas); gauges would need last-writer
#: merge semantics and are deliberately excluded
DEFAULT_SERIES: Tuple[str, ...] = (
    "computation_messages",
    "mutable_checkpoints",
    "net.wired.bytes",
    "net.wireless.bytes",
    "stable_transfers",
    "system_messages",
    "wave.commits",
    "wave.forced_checkpoints",
)

#: events between window-boundary checks; one float compare per check,
#: so the cadence only bounds how far past a boundary a row can land
DEFAULT_CHECK_EVERY = 32

#: ring capacity in rows; older rows are dropped (and counted)
DEFAULT_CAPACITY = 4096


class TimeseriesSampler:
    """Samples selected registry series once per sim-time window.

    Parameters
    ----------
    system:
        The :class:`~repro.core.system.MobileSystem` to observe (any
        object with ``sim``, ``metrics``, and ``processes`` works).
    window:
        Sim seconds per row. Each row holds the *delta* of every sampled
        series over one window, keyed by the integer window index ``w``.
        Windows with no activity produce no row.
    series:
        Counter names to sample; unknown names read as 0 until the
        counter first exists.
    capacity:
        Ring bound; the oldest rows are evicted (``dropped`` counts them).
    check_every:
        Kernel-hook cadence in events.

    The sampler pickles with the system (snapshot/resume); live hook and
    trace subscriptions do not travel and are restored by
    :meth:`reattach`, mirroring ``Snapshotter``.
    """

    def __init__(
        self,
        system: Any,
        window: float,
        series: Sequence[str] = DEFAULT_SERIES,
        capacity: int = DEFAULT_CAPACITY,
        check_every: int = DEFAULT_CHECK_EVERY,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every!r}")
        self.system = system
        self.window = float(window)
        self.series: Tuple[str, ...] = tuple(series)
        self.capacity = int(capacity)
        self.check_every = int(check_every)
        self.rows: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.dropped = 0
        registry = system.metrics
        # Wave-lifecycle instruments, derived from INFO trace records.
        # Created here — not in the protocols — so they only exist while
        # a sampler does and sampler-off metrics snapshots are unchanged.
        self._m_commits = registry.counter("wave.commits")
        self._m_aborts = registry.counter("wave.aborts")
        self._m_forced = registry.counter("wave.forced_checkpoints")
        self._m_latency = registry.histogram("wave.latency_seconds")
        self._m_blocked = registry.histogram("wave.blocked_seconds")
        self._initiated_at: Dict[Any, float] = {}
        self._blocked_total = 0.0
        self._epoch = int(system.sim.now // self.window)
        self._last_events = system.sim.events_processed
        self._last_values = self._cumulative()

    # -- installation ------------------------------------------------------
    def install(self) -> None:
        """Arm the kernel hook and subscribe to the trace."""
        self.system.sim.set_between_events_hook(
            "timeseries", self._on_hook, self.check_every
        )
        self.system.sim.trace.subscribe(self._on_trace)

    def uninstall(self) -> None:
        """Disarm the kernel hook (trace subscriptions cannot be removed)."""
        self.system.sim.set_between_events_hook("timeseries", None)

    def reattach(self) -> None:
        """Re-arm after a snapshot restore (hook + subscription dropped)."""
        self.install()

    # -- sampling ----------------------------------------------------------
    def _cumulative(self) -> Tuple[float, ...]:
        value = self.system.metrics.value
        return tuple(value(name) for name in self.series)

    def _on_hook(self) -> None:
        epoch = int(self.system.sim.now // self.window)
        if epoch > self._epoch:
            self._emit(epoch)

    def _emit(self, new_epoch: int) -> None:
        sim = self.system.sim
        values = self._cumulative()
        events = sim.events_processed
        last = self._last_values
        row = {
            "w": self._epoch,
            "t": self._epoch * self.window,
            "dt": self.window,
            "events": events - self._last_events,
            "series": {
                name: values[i] - last[i] for i, name in enumerate(self.series)
            },
        }
        if len(self.rows) == self.capacity:
            self.dropped += 1
        self.rows.append(row)
        self._epoch = new_epoch
        self._last_events = events
        self._last_values = values

    def flush(self) -> None:
        """Emit the final partial window, if anything happened in it.

        Idempotent: a second flush with no intervening activity emits
        nothing. Results collection calls this before reading
        :meth:`export`.
        """
        sim = self.system.sim
        if (
            sim.events_processed != self._last_events
            or self._cumulative() != self._last_values
        ):
            self._emit(int(sim.now // self.window) + 1)

    # -- wave lifecycle (trace-derived) ------------------------------------
    def _on_trace(self, record: Any) -> None:
        kind = record.kind
        if kind == "tentative":
            trigger = record.get("trigger")
            if trigger is not None and trigger.pid != record["pid"]:
                self._m_forced.inc()
        elif kind == "initiation":
            self._initiated_at[record["trigger"]] = record.time
        elif kind == "commit":
            self._m_commits.inc()
            started = self._initiated_at.pop(record.get("trigger"), None)
            if started is not None:
                self._m_latency.observe(record.time - started)
            blocked = sum(
                p.total_blocked_time for p in self.system.processes.values()
            )
            self._m_blocked.observe(blocked - self._blocked_total)
            self._blocked_total = blocked
        elif kind == "abort":
            self._m_aborts.inc()
            self._initiated_at.pop(record.get("trigger"), None)

    # -- export ------------------------------------------------------------
    def export(self) -> Dict[str, Any]:
        """The sampled series as a JSON-safe timeseries document.

        ``{"window": float, "dropped": int, "rows": [row, ...]}`` with
        rows in emission order. This is the shape carried on
        ``RunResult.timeseries`` and accepted by :func:`merge_timeseries`.
        """
        return {
            "window": self.window,
            "dropped": self.dropped,
            "rows": [
                {
                    "w": row["w"],
                    "t": row["t"],
                    "dt": row["dt"],
                    "events": row["events"],
                    "series": dict(row["series"]),
                }
                for row in self.rows
            ],
        }


def merge_timeseries(snapshots: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Fold per-run timeseries documents into one.

    Rows align on ``(dt, w)`` and their deltas add, so the merge is
    associative and commutative — campaign aggregation is independent of
    worker count, exactly like ``MetricsRegistry.merge``. Empty or
    ``None`` inputs are skipped; all-empty input merges to ``{}``.
    """
    merged: Dict[Tuple[float, int], Dict[str, Any]] = {}
    window: Optional[float] = None
    dropped = 0
    for snap in snapshots:
        if not snap:
            continue
        if window is None:
            window = snap.get("window")
        dropped += snap.get("dropped", 0)
        for row in snap.get("rows", ()):
            key = (row["dt"], row["w"])
            acc = merged.get(key)
            if acc is None:
                merged[key] = {
                    "w": row["w"],
                    "t": row["t"],
                    "dt": row["dt"],
                    "events": row["events"],
                    "series": dict(row["series"]),
                }
            else:
                acc["events"] += row["events"]
                series = acc["series"]
                for name, value in row["series"].items():
                    series[name] = series.get(name, 0.0) + value
    if window is None:
        return {}
    return {
        "window": window,
        "dropped": dropped,
        "rows": [merged[key] for key in sorted(merged)],
    }


# -- serialization ---------------------------------------------------------
def _canonical_row(row: Dict[str, Any]) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def dump_timeseries_jsonl(timeseries: Dict[str, Any], stream: IO[str]) -> int:
    """Write one canonical-JSON row per line; returns the row count."""
    count = 0
    for row in timeseries.get("rows", ()):
        stream.write(_canonical_row(row) + "\n")
        count += 1
    return count


def dump_timeseries_tsv(timeseries: Dict[str, Any], stream: IO[str]) -> int:
    """Write a TSV table (header + one line per row); returns the row count."""
    rows = list(timeseries.get("rows", ()))
    names: List[str] = sorted({name for row in rows for name in row["series"]})
    stream.write("\t".join(["w", "t", "dt", "events"] + names) + "\n")
    for row in rows:
        series = row["series"]
        cells = [
            str(row["w"]),
            repr(float(row["t"])),
            repr(float(row["dt"])),
            str(row["events"]),
        ]
        cells.extend(repr(float(series.get(name, 0.0))) for name in names)
        stream.write("\t".join(cells) + "\n")
    return len(rows)


def dumps_timeseries(timeseries: Dict[str, Any], fmt: str = "jsonl") -> str:
    """The timeseries as one string, ``fmt`` in ``{"jsonl", "tsv"}``."""
    buffer = io.StringIO()
    if fmt == "jsonl":
        dump_timeseries_jsonl(timeseries, buffer)
    elif fmt == "tsv":
        dump_timeseries_tsv(timeseries, buffer)
    else:
        raise ValueError(f"unknown timeseries format {fmt!r}")
    return buffer.getvalue()


def save_timeseries(timeseries: Dict[str, Any], path: str) -> int:
    """Write to ``path``; ``.tsv`` selects TSV, anything else JSONL."""
    fmt = "tsv" if str(path).endswith(".tsv") else "jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        if fmt == "tsv":
            return dump_timeseries_tsv(timeseries, handle)
        return dump_timeseries_jsonl(timeseries, handle)
