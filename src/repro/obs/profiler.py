"""Span-based profiling of the discrete-event kernel.

A :class:`KernelProfiler` attaches to a
:class:`~repro.sim.kernel.Simulator` (``sim.set_profiler``) and times
every dispatched event, keyed by the callback's qualified name — which
in this codebase is a stable, meaningful label (``AppProcess.on_message``,
``FifoChannel.deliver``, ``ExperimentRunner._initiation_due``, ...).
It also tracks heap statistics (queue depth high-water mark, pushes,
cancelled pops) and supports coarse wall-clock spans around whole
phases (``with profiler.span("run"): ...``).

The profiler is strictly opt-in: an unprofiled kernel pays one ``is not
None`` check per event and nothing else.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Tuple

__all__ = ["KernelProfiler", "SpanStat", "event_label"]


def event_label(callback: Callable[..., Any]) -> str:
    """A stable human-readable label for an event callback."""
    label = getattr(callback, "__qualname__", None)
    if label is None:  # pragma: no cover - exotic callables
        label = repr(callback)
    if "<lambda>" in label:
        # Collapse distinct lambdas defined on the same line of the same
        # function into one bucket.
        module = getattr(callback, "__module__", "?")
        label = f"{module}.{label}"
    return label


@dataclass
class SpanStat:
    """Accumulated timing for one event kind or phase."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class KernelProfiler:
    """Collects per-event-kind timing and heap statistics for one run."""

    events: Dict[str, SpanStat] = field(default_factory=dict)
    phases: Dict[str, SpanStat] = field(default_factory=dict)
    dispatched: int = 0
    dispatch_s: float = 0.0
    pushes: int = 0
    cancelled_pops: int = 0
    max_queue_depth: int = 0

    # -- kernel hooks ------------------------------------------------------
    def on_event(self, callback: Callable[..., Any], seconds: float, depth: int) -> None:
        """One event dispatched: ``seconds`` in the callback, ``depth``
        queue entries remaining afterwards."""
        label = event_label(callback)
        stat = self.events.get(label)
        if stat is None:
            stat = self.events[label] = SpanStat()
        stat.add(seconds)
        self.dispatched += 1
        self.dispatch_s += seconds
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def on_push(self, depth: int) -> None:
        """One event scheduled; ``depth`` is the queue size after the push."""
        self.pushes += 1
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def on_cancelled_pop(self) -> None:
        """A cancelled event was discarded from the queue head."""
        self.cancelled_pops += 1

    # -- coarse phases -----------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a coarse phase (setup, run, collect, ...)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            stat = self.phases.get(name)
            if stat is None:
                stat = self.phases[name] = SpanStat()
            stat.add(time.perf_counter() - started)

    # -- reporting ---------------------------------------------------------
    def top_events(self, limit: int = 15) -> List[Tuple[str, SpanStat]]:
        """Event kinds by total time, descending."""
        ranked = sorted(
            self.events.items(), key=lambda kv: kv[1].total_s, reverse=True
        )
        return ranked[:limit]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump (sorted for determinism of the shape)."""

        def stats(d: Dict[str, SpanStat]) -> Dict[str, Dict[str, float]]:
            return {
                name: {
                    "count": s.count,
                    "total_s": s.total_s,
                    "max_s": s.max_s,
                }
                for name, s in sorted(d.items())
            }

        return {
            "dispatched": self.dispatched,
            "dispatch_s": self.dispatch_s,
            "pushes": self.pushes,
            "cancelled_pops": self.cancelled_pops,
            "max_queue_depth": self.max_queue_depth,
            "events": stats(self.events),
            "phases": stats(self.phases),
        }

    def table(self, limit: int = 15) -> str:
        """A formatted text table of the hottest event kinds."""
        lines = [
            f"{'event kind':44s} {'count':>9s} {'total ms':>10s} "
            f"{'mean us':>9s} {'max us':>9s}"
        ]
        for name, stat in self.top_events(limit):
            lines.append(
                f"{name[:44]:44s} {stat.count:9d} {stat.total_s * 1e3:10.2f} "
                f"{stat.mean_s * 1e6:9.1f} {stat.max_s * 1e6:9.1f}"
            )
        lines.append(
            f"dispatched {self.dispatched} events in {self.dispatch_s * 1e3:.1f} ms"
            f" ({self.rate():.0f} events/s in-callback); "
            f"heap: {self.pushes} pushes, depth<= {self.max_queue_depth}, "
            f"{self.cancelled_pops} cancelled pops"
        )
        for name, stat in sorted(self.phases.items()):
            lines.append(f"phase {name}: {stat.total_s:.3f} s (x{stat.count})")
        return "\n".join(lines)

    def rate(self) -> float:
        """Events per in-callback second (0.0 before any dispatch)."""
        return self.dispatched / self.dispatch_s if self.dispatch_s else 0.0

    def collapsed_stacks(self) -> str:
        """The event timings in collapsed-stack (flamegraph) format.

        One line per event kind: semicolon-joined frames rooted at
        ``kernel`` (the callback qualname's dotted parts become the
        stack), then the total in-callback time in integer microseconds —
        the format ``flamegraph.pl`` and speedscope ingest directly.
        Lines are sorted by frame path so output is deterministic.
        """
        lines = []
        for label, stat in sorted(self.events.items()):
            frames = ";".join(["kernel", *label.split(".")])
            lines.append(f"{frames} {max(1, round(stat.total_s * 1e6))}")
        return "\n".join(lines) + ("\n" if lines else "")
