"""Causal wave forensics: explain *why* each checkpoint was taken.

:mod:`repro.obs` measures runs (metrics, profiler, leveled tracing);
this module *explains* them. The paper's central claim is min-process
coordination — only processes causally dependent on the initiator write
to stable storage — and the surveys rank algorithms by forced-checkpoint
and control-message counts without ever showing why a given process was
forced. Forensics reconstructs each checkpoint wave from the trace and
emits, for every tentative/mutable/promoted checkpoint, the causal chain
back to the initiator ("P3 forced because it received m17 from P1 after
P1's tentative, triggered by initiator P0").

Everything is computed from the :class:`~repro.sim.trace.TraceLog`
alone — never from protocol state — so the same forensics run on live
logs, archived JSONL exports (``repro-sim inspect``), explore
counterexamples, and flight-recorder dumps. Message-level detail
(request attribution, control-message accounting, happened-before
verification) needs DEBUG records; on an INFO-only trace the report
degrades gracefully to the lifecycle skeleton.

The happened-before layer reuses :mod:`repro.analysis.vector_clock`:
an :class:`EventGraph` replays a fresh vector clock per process over the
trace (ticking on every owned record, merging across message edges
matched by ``msg_id`` and across request→checkpoint edges matched by
``from_pid``/``trigger``) and answers ``happened_before(a, b)`` between
any two trace positions. Every rendered chain step is checked against
it; a step whose causal edge cannot be verified is flagged rather than
silently asserted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.minimality import MinimalityReport, must_checkpoint_set
from repro.analysis.vector_clock import VectorClock, happened_before
from repro.checkpointing.types import Trigger
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "CausalStep",
    "EventGraph",
    "ForensicReport",
    "WaveReport",
    "build_forensics",
]

#: record kinds that mark a process's participation in a wave
_WAVE_KINDS = (
    "initiation",
    "tentative",
    "mutable",
    "mutable_promoted",
    "mutable_discarded",
    "tentative_discarded",
    "permanent",
)

#: wave outcomes, in trace-kind form
_OUTCOME_KINDS = ("commit", "abort", "partial_commit")


def _owner_pid(record: TraceRecord) -> Optional[int]:
    """The process a record belongs to, for clock replay purposes."""
    if "pid" in record.fields:
        return record["pid"]
    kind = record.kind
    if kind in ("comp_send", "sys_send", "sys_broadcast"):
        return record.get("src")
    if kind == "comp_recv":
        return record.get("dst")
    if kind in _OUTCOME_KINDS:
        trigger = record.get("trigger")
        return trigger.pid if isinstance(trigger, Trigger) else None
    return None


class EventGraph:
    """Happened-before over trace positions, via replayed vector clocks.

    The trace is a linearization of the run (sends precede their
    receives), so one forward pass assigns every owned record a vector
    timestamp: tick the owner's clock, merging first across the record's
    incoming causal edges —

    * ``comp_recv`` / ``mutable`` ← the ``comp_send`` with the same
      ``msg_id``;
    * ``tentative`` (via request or promotion) ← the latest ``sys_send``
      request from its ``from_pid`` for the same trigger.

    ``happened_before(a, b)`` then delegates to
    :func:`repro.analysis.vector_clock.happened_before` on the stored
    snapshots. Positions without an owner (network-layer records keyed
    by host name) carry no clock and are never ordered.
    """

    def __init__(self, trace: TraceLog, n_processes: int) -> None:
        self.n = n_processes
        self.clock_at: Dict[int, Tuple[int, ...]] = {}
        # There is no request-receive record, so the merge point for an
        # incoming checkpoint request is the handler's *first* record
        # tagged with the wave trigger (a propagated request, a reply, or
        # the tentative itself — all emitted while handling). The exact
        # requester comes from the tentative's from_pid attribution.
        handler_src: Dict[Tuple[int, Trigger], int] = {}
        for record in trace:
            if record.kind == "tentative" and record.get("from_pid") is not None:
                key = (record["pid"], record.get("trigger"))
                handler_src.setdefault(key, record["from_pid"])
        clocks: Dict[int, VectorClock] = {}
        send_clock: Dict[int, Tuple[int, ...]] = {}  # msg_id -> send stamp
        request_clock: Dict[Tuple[int, int, Any], Tuple[int, ...]] = {}
        merged_request: Set[Tuple[int, Any]] = set()
        for position, record in enumerate(trace):
            pid = _owner_pid(record)
            if pid is None or pid >= self.n:
                continue
            vc = clocks.get(pid)
            if vc is None:
                vc = clocks[pid] = VectorClock(pid, self.n)
            kind = record.kind
            trigger = record.get("trigger")
            if kind in ("comp_recv", "mutable"):
                stamp = send_clock.get(record.get("msg_id"))
                if stamp is not None:
                    vc.merge(stamp)
            if (
                kind in ("sys_send", "tentative")
                and isinstance(trigger, Trigger)
                and pid != trigger.pid
                and (pid, trigger) not in merged_request
            ):
                src = handler_src.get((pid, trigger))
                stamp = (
                    request_clock.get((src, pid, trigger))
                    if src is not None
                    else None
                )
                if stamp is not None:
                    vc.merge(stamp)
                    merged_request.add((pid, trigger))
            vc.tick()
            snapshot = vc.snapshot()
            self.clock_at[position] = snapshot
            if kind == "comp_send":
                send_clock[record["msg_id"]] = snapshot
            elif kind == "sys_send" and record.get("subkind") == "request":
                request_clock[
                    (pid, record.get("dst"), trigger)
                ] = snapshot

    def happened_before(self, a: int, b: int) -> Optional[bool]:
        """Whether position ``a`` causally precedes ``b``.

        Returns ``None`` when either position carries no clock (unowned
        record, or outside the replayed window).
        """
        clock_a = self.clock_at.get(a)
        clock_b = self.clock_at.get(b)
        if clock_a is None or clock_b is None:
            return None
        return happened_before(clock_a, clock_b)


@dataclass
class CausalStep:
    """One hop of a causal chain, with its verification verdict."""

    text: str
    position: Optional[int] = None
    verified: Optional[bool] = None  # vs. the previous step; None = n/a

    def render(self) -> str:
        if self.verified is False:
            return f"{self.text}  [causal order UNVERIFIED]"
        return self.text


@dataclass
class WaveReport:
    """Everything forensics reconstructed about one checkpoint wave."""

    index: int
    trigger: Trigger
    initiator: int
    start_time: float
    start_position: int
    outcome: str = "unresolved"  # commit | abort | partial_commit | unresolved
    end_time: Optional[float] = None
    #: pid -> (position, tentative record); the wave's forced set
    tentatives: Dict[int, Tuple[int, TraceRecord]] = field(default_factory=dict)
    #: pid -> (position, mutable record)
    mutables: Dict[int, Tuple[int, TraceRecord]] = field(default_factory=dict)
    promoted: Set[int] = field(default_factory=set)
    discarded_mutables: Set[int] = field(default_factory=set)
    permanents: Set[int] = field(default_factory=set)
    #: control messages (sys_send) tagged with this trigger, by subkind
    control_messages: Dict[str, int] = field(default_factory=dict)
    #: broadcasts (sys_broadcast) tagged with this trigger, by subkind
    broadcasts: Dict[str, int] = field(default_factory=dict)
    #: (position, record) of every tagged sys_send, for diagram rendering
    control_records: List[Tuple[int, TraceRecord]] = field(default_factory=list)
    minimality: Optional[MinimalityReport] = None

    @property
    def forced(self) -> Set[int]:
        """Processes that wrote a stable (tentative) checkpoint."""
        return set(self.tentatives)

    @property
    def justified(self) -> Optional[Set[int]]:
        if self.minimality is None:
            return None
        return self.minimality.justified

    @property
    def required(self) -> Optional[Set[int]]:
        if self.minimality is None:
            return None
        return self.minimality.required

    def label(self) -> str:
        return f"P{self.trigger.pid}#{self.trigger.inum}"

    # -- causal chains -----------------------------------------------------
    def _parent(self, pid: int) -> Optional[int]:
        """Who dragged ``pid`` into the wave (None for the initiator)."""
        entry = self.tentatives.get(pid)
        if entry is not None:
            return entry[1].get("from_pid")
        entry = self.mutables.get(pid)
        if entry is not None:
            return entry[1].get("from_pid")
        return None

    def cascade_depth(self) -> int:
        """Longest forced-by chain from the initiator (0 = initiator only).

        This is the wave's near-avalanche measure: depth 1 means every
        forced process was requested directly by the initiator; greater
        depths mean requests (or tagged messages) propagated through
        intermediaries — the cascades that, without mutable checkpoints,
        become the §3.1.1 avalanche.
        """
        depth = 0
        for pid in list(self.tentatives) + list(self.mutables):
            depth = max(depth, len(self._ancestry(pid)) - 1)
        return depth

    def deepest_chain(self) -> List[int]:
        """The pid path of the longest forced-by chain, initiator first."""
        best: List[int] = [self.initiator]
        for pid in list(self.tentatives) + list(self.mutables):
            path = self._ancestry(pid)
            if len(path) > len(best):
                best = path
        return best

    def _ancestry(self, pid: int) -> List[int]:
        """Chain of pids from the initiator down to ``pid``."""
        path = [pid]
        seen = {pid}
        current = pid
        while current != self.initiator:
            parent = self._parent(current)
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
            current = parent
        path.reverse()
        return path

    def chain_steps(self, pid: int, graph: Optional[EventGraph] = None) -> List[CausalStep]:
        """The causal chain explaining ``pid``'s role in this wave.

        Returns an empty list when ``pid`` took part in neither a
        tentative nor a mutable checkpoint for this wave.
        """
        if pid not in self.tentatives and pid not in self.mutables:
            return []
        steps: List[CausalStep] = []
        path = self._ancestry(pid)
        steps.append(
            CausalStep(
                f"P{self.initiator} initiated wave {self.label()} "
                f"at t={self.start_time:.3f}",
                position=self.start_position,
            )
        )
        if path and path[0] != self.initiator:
            steps.append(
                CausalStep(
                    f"(chain root P{path[0]} has no recorded cause — "
                    "attribution data missing from the trace)"
                )
            )
        for hop in range(1, len(path)):
            parent, child = path[hop - 1], path[hop]
            steps.extend(self._hop_steps(parent, child))
        # Terminal status for mutable-only participants.
        if pid not in self.tentatives and pid in self.mutables:
            if pid in self.discarded_mutables:
                steps.append(
                    CausalStep(
                        f"P{pid}'s mutable checkpoint was discarded at "
                        f"{self.outcome} — never written to stable storage "
                        "(the paper's avoided forced checkpoint)"
                    )
                )
        if graph is not None:
            self._verify(steps, graph)
        return steps

    def _hop_steps(self, parent: int, child: int) -> List[CausalStep]:
        """Steps explaining how ``parent`` dragged ``child`` in."""
        steps: List[CausalStep] = []
        mutable = self.mutables.get(child)
        tentative = self.tentatives.get(child)
        if mutable is not None:
            position, record = mutable
            msg_id = record.get("msg_id")
            from_pid = record.get("from_pid")
            tagged = f"tagged message m{msg_id}" if msg_id is not None else (
                "a tagged message"
            )
            steps.append(
                CausalStep(
                    f"P{child} received {tagged} from P{from_pid} while "
                    f"having sent since its last checkpoint — took mutable "
                    f"checkpoint c{record.get('ckpt_id')} at "
                    f"t={record.time:.3f}",
                    position=position,
                )
            )
        if tentative is not None:
            position, record = tentative
            via = record.get("via")
            from_pid = record.get("from_pid")
            if via == "promotion":
                steps.append(
                    CausalStep(
                        f"checkpoint request from P{from_pid} promoted "
                        f"P{child}'s mutable checkpoint to tentative "
                        f"c{record.get('ckpt_id')} at t={record.time:.3f}",
                        position=position,
                    )
                )
            elif via == "initiator":
                pass  # covered by the initiation step
            else:
                request = self._request_position(from_pid, child, position)
                sent = ""
                if request is not None:
                    sent = (
                        f" (request sent t={self.control_records_at(request).time:.3f})"
                    )
                steps.append(
                    CausalStep(
                        f"P{from_pid} sent a checkpoint request to "
                        f"P{child}{sent} — P{child} took tentative "
                        f"checkpoint c{record.get('ckpt_id')} at "
                        f"t={record.time:.3f}",
                        position=position,
                    )
                )
        return steps

    def control_records_at(self, position: int) -> TraceRecord:
        for pos, record in self.control_records:
            if pos == position:
                return record
        raise KeyError(position)

    def _request_position(
        self, from_pid: Optional[int], dst: int, before: int
    ) -> Optional[int]:
        """Position of the latest tagged request from_pid->dst before ``before``."""
        found = None
        for position, record in self.control_records:
            if position >= before:
                break
            if (
                record.get("subkind") == "request"
                and record.get("src") == from_pid
                and record.get("dst") == dst
            ):
                found = position
        return found

    def _verify(self, steps: List[CausalStep], graph: EventGraph) -> None:
        """Check that every positioned step is causally after the initiation.

        The chain is an attribution tree, not a total order — a parent
        may propagate the request before taking its own tentative, so
        consecutive steps need not be happened-before-ordered. What the
        chain *claims* is that each checkpoint traces back to the
        initiator, and that is what each step is verified against.
        """
        root: Optional[int] = None
        for step in steps:
            if step.position is None:
                continue
            if root is None:
                root = step.position
                continue
            if step.position != root:
                step.verified = graph.happened_before(root, step.position)

    # -- renderings --------------------------------------------------------
    def summary_lines(self) -> List[str]:
        """The wave-level report as text lines."""
        duration = (
            f" ({self.end_time - self.start_time:.3f}s)"
            if self.end_time is not None
            else ""
        )
        ended = (
            f", {self.outcome} at t={self.end_time:.3f}{duration}"
            if self.end_time is not None
            else f", {self.outcome}"
        )
        lines = [
            f"wave {self.index}: {self.label()} — initiated by "
            f"P{self.initiator} at t={self.start_time:.3f}{ended}"
        ]
        forced = sorted(self.forced)
        lines.append(f"  forced (stable writes) : {forced}")
        if self.minimality is not None:
            justified = sorted(self.justified or ())
            required = sorted(self.required or ())
            if set(forced) == set(justified):
                verdict = "forced set == justified closure (min-process)"
            elif set(forced) <= set(justified):
                verdict = "forced set within justified closure"
            else:
                rogue = sorted(set(forced) - set(justified))
                verdict = f"UNJUSTIFIED participants {rogue} (protocol bug?)"
            lines.append(
                f"  justified closure      : {justified}   "
                f"(exact z-closure {required}) — {verdict}"
            )
        mutable_only = sorted(set(self.mutables) - set(self.tentatives))
        if mutable_only:
            lines.append(
                f"  mutable only (no stable write) : {mutable_only}"
            )
        depth = self.cascade_depth()
        chain = self.deepest_chain()
        chain_text = " -> ".join(f"P{p}" for p in chain) if len(chain) > 1 else "-"
        lines.append(f"  cascade depth          : {depth} ({chain_text})")
        if self.control_messages or self.broadcasts:
            parts = [
                f"{subkind}={count}"
                for subkind, count in sorted(self.control_messages.items())
            ]
            broadcast_parts = [
                f"{subkind}={count}"
                for subkind, count in sorted(self.broadcasts.items())
            ]
            accounting = " ".join(parts) if parts else "-"
            if broadcast_parts:
                accounting += f"; broadcasts: {' '.join(broadcast_parts)}"
            lines.append(f"  control messages       : {accounting}")
        for pid in sorted(self.tentatives):
            position, record = self.tentatives[pid]
            via = record.get("via")
            if via == "initiator":
                cause = "initiator"
            elif via == "promotion":
                mutable = self.mutables.get(pid)
                detail = ""
                if mutable is not None:
                    mut_record = mutable[1]
                    detail = (
                        f" of mutable on m{mut_record.get('msg_id')} "
                        f"from P{mut_record.get('from_pid')}"
                    )
                cause = f"promotion{detail} by request from P{record.get('from_pid')}"
            elif via == "request":
                cause = f"request from P{record.get('from_pid')}"
            else:
                cause = "cause not recorded"
            promoted = " -> permanent" if pid in self.permanents else ""
            lines.append(
                f"  P{pid}: tentative c{record.get('ckpt_id')} at "
                f"t={record.time:.3f} via {cause}{promoted}"
            )
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary of the wave."""
        return {
            "index": self.index,
            "trigger": [self.trigger.pid, self.trigger.inum],
            "initiator": self.initiator,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "outcome": self.outcome,
            "forced": sorted(self.forced),
            "required": sorted(self.required) if self.required is not None else None,
            "justified": (
                sorted(self.justified) if self.justified is not None else None
            ),
            "mutables": sorted(self.mutables),
            "promoted": sorted(self.promoted),
            "discarded_mutables": sorted(self.discarded_mutables),
            "permanents": sorted(self.permanents),
            "cascade_depth": self.cascade_depth(),
            "deepest_chain": self.deepest_chain(),
            "control_messages": dict(sorted(self.control_messages.items())),
            "broadcasts": dict(sorted(self.broadcasts.items())),
        }


@dataclass
class ForensicReport:
    """All waves of one trace, with the happened-before graph."""

    waves: List[WaveReport]
    graph: EventGraph
    n_processes: int
    has_debug: bool

    def wave(self, index: int) -> WaveReport:
        for wave in self.waves:
            if wave.index == index:
                return wave
        raise IndexError(f"no wave with index {index}")

    def explain(self, pid: int, wave_index: Optional[int] = None) -> str:
        """The causal chains for ``pid``, one block per wave it touched."""
        waves = (
            [self.wave(wave_index)] if wave_index is not None else self.waves
        )
        blocks: List[str] = []
        for wave in waves:
            steps = wave.chain_steps(pid, self.graph)
            if not steps:
                continue
            role = (
                "initiator" if pid == wave.initiator
                else "tentative" if pid in wave.tentatives
                else "mutable"
            )
            lines = [f"P{pid} in wave {wave.index} ({wave.label()}) — {role}:"]
            lines.extend(f"  {i + 1}. {s.render()}" for i, s in enumerate(steps))
            blocks.append("\n".join(lines))
        if not blocks:
            scope = (
                f"wave {wave_index}" if wave_index is not None else "any wave"
            )
            return f"P{pid} took no checkpoint in {scope}."
        return "\n\n".join(blocks)

    def narrative(
        self,
        wave_index: Optional[int] = None,
        explain: Optional[int] = None,
    ) -> str:
        """The full text report: wave summaries plus optional chains."""
        waves = (
            [self.wave(wave_index)] if wave_index is not None else self.waves
        )
        lines: List[str] = []
        if not waves:
            lines.append("no checkpoint waves found in this trace")
        if not self.has_debug and waves:
            lines.append(
                "(INFO-only trace: message-level attribution and control-"
                "message accounting are unavailable)"
            )
        for wave in waves:
            lines.extend(wave.summary_lines())
            lines.append("")
        if explain is not None:
            lines.append(self.explain(explain, wave_index))
        return "\n".join(lines).rstrip() + "\n"

    def wave_narrative(self, wave_index: int) -> str:
        """One wave's summary plus every participant's causal chain."""
        wave = self.wave(wave_index)
        lines = list(wave.summary_lines())
        for pid in sorted(set(wave.tentatives) | set(wave.mutables)):
            lines.append("")
            lines.append(self.explain(pid, wave_index))
        return "\n".join(lines).rstrip() + "\n"

    # -- exports -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_processes": self.n_processes,
            "has_debug": self.has_debug,
            "waves": [wave.to_dict() for wave in self.waves],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_mermaid(self, wave_index: int) -> str:
        """A Mermaid sequence diagram of one wave's coordination."""
        wave = self.wave(wave_index)
        pids: Set[int] = {wave.initiator}
        pids |= set(wave.tentatives) | set(wave.mutables)
        for _, record in wave.control_records:
            pids.add(record.get("src"))
            if record.get("dst") is not None:
                pids.add(record.get("dst"))
        pids.discard(None)  # type: ignore[arg-type]
        lines = ["sequenceDiagram"]
        for pid in sorted(pids):
            lines.append(f"    participant P{pid}")
        events: List[Tuple[int, str]] = [
            (
                wave.start_position,
                f"    Note over P{wave.initiator}: initiate {wave.label()}",
            )
        ]
        for pid, (position, record) in wave.tentatives.items():
            lines_for = (
                f"    Note over P{pid}: tentative c{record.get('ckpt_id')}"
            )
            events.append((position, lines_for))
        for pid, (position, record) in wave.mutables.items():
            from_pid = record.get("from_pid")
            if from_pid is not None and record.get("msg_id") is not None:
                events.append(
                    (
                        position,
                        f"    P{from_pid}->>P{pid}: m{record.get('msg_id')} (tagged)",
                    )
                )
            events.append(
                (
                    position,
                    f"    Note over P{pid}: mutable c{record.get('ckpt_id')}",
                )
            )
        for position, record in wave.control_records:
            src, dst = record.get("src"), record.get("dst")
            subkind = record.get("subkind")
            arrow = "-->>" if subkind == "reply" else "->>"
            events.append((position, f"    P{src}{arrow}P{dst}: {subkind}"))
        if wave.end_time is not None:
            events.append(
                (
                    1 << 60,
                    f"    Note over P{wave.initiator}: {wave.outcome} {wave.label()}",
                )
            )
        events.sort(key=lambda pair: pair[0])
        lines.extend(text for _, text in events)
        return "\n".join(lines) + "\n"

    def to_dot(self, wave_index: int) -> str:
        """A Graphviz digraph of one wave's forced-by / dependency DAG."""
        wave = self.wave(wave_index)
        name = f"wave{wave.index}"
        lines = [
            f"digraph {name} {{",
            "  rankdir=LR;",
            '  node [shape=box, fontname="monospace"];',
        ]
        pids = sorted({wave.initiator} | set(wave.tentatives) | set(wave.mutables))
        for pid in pids:
            if pid == wave.initiator:
                label = f"P{pid}\\ninitiator"
                shape = ', style=filled, fillcolor="lightblue"'
            elif pid in wave.tentatives:
                kind = "promoted" if pid in wave.promoted else "tentative"
                label = f"P{pid}\\n{kind}"
                shape = ""
            else:
                label = f"P{pid}\\nmutable (discarded)"
                shape = ', style=dashed'
            lines.append(f'  p{pid} [label="{label}"{shape}];')
        for pid in pids:
            parent = wave._parent(pid)
            if parent is None or parent == pid:
                continue
            mutable = wave.mutables.get(pid)
            if mutable is not None and pid not in wave.promoted:
                label = f"m{mutable[1].get('msg_id')} (tagged)"
            elif pid in wave.promoted and mutable is not None:
                label = f"m{mutable[1].get('msg_id')} + request"
            else:
                label = "request"
            lines.append(f'  p{parent} -> p{pid} [label="{label}"];')
        if wave.minimality is not None:
            for src, dst in sorted(wave.minimality.dependency_edges):
                if src in pids and dst in pids:
                    lines.append(
                        f'  p{src} -> p{dst} '
                        '[style=dotted, color=gray, label="z-dep"];'
                    )
        lines.append("}")
        return "\n".join(lines) + "\n"


def _infer_n_processes(trace: TraceLog) -> int:
    highest = -1
    for record in trace:
        pid = _owner_pid(record)
        if pid is not None and pid > highest:
            highest = pid
        trigger = record.get("trigger")
        if isinstance(trigger, Trigger) and trigger.pid > highest:
            highest = trigger.pid
    return highest + 1


def build_forensics(
    trace: TraceLog, n_processes: Optional[int] = None
) -> ForensicReport:
    """Reconstruct every checkpoint wave of ``trace``.

    Works on live logs, imported JSONL archives, and flight-recorder
    views alike. ``n_processes`` is inferred from the records when not
    given.
    """
    if n_processes is None:
        n_processes = _infer_n_processes(trace)
    graph = EventGraph(trace, n_processes)
    waves: Dict[Trigger, WaveReport] = {}
    order: List[Trigger] = []
    has_debug = False
    for position, record in enumerate(trace):
        kind = record.kind
        trigger = record.get("trigger")
        if kind in ("comp_send", "comp_recv", "sys_send", "sys_broadcast"):
            has_debug = True
        if kind == "initiation" and isinstance(trigger, Trigger):
            if trigger not in waves:
                waves[trigger] = WaveReport(
                    index=len(order),
                    trigger=trigger,
                    initiator=record["pid"],
                    start_time=record.time,
                    start_position=position,
                )
                order.append(trigger)
            continue
        if not isinstance(trigger, Trigger):
            continue
        wave = waves.get(trigger)
        if wave is None:
            continue
        if kind == "tentative":
            wave.tentatives.setdefault(record["pid"], (position, record))
        elif kind == "mutable":
            wave.mutables.setdefault(record["pid"], (position, record))
        elif kind == "mutable_promoted":
            wave.promoted.add(record["pid"])
        elif kind == "mutable_discarded":
            wave.discarded_mutables.add(record["pid"])
        elif kind == "permanent":
            wave.permanents.add(record["pid"])
        elif kind in _OUTCOME_KINDS:
            if wave.outcome == "unresolved":
                wave.outcome = kind
                wave.end_time = record.time
        elif kind == "sys_send":
            subkind = record.get("subkind", "?")
            wave.control_messages[subkind] = (
                wave.control_messages.get(subkind, 0) + 1
            )
            wave.control_records.append((position, record))
        elif kind == "sys_broadcast":
            subkind = record.get("subkind", "?")
            wave.broadcasts[subkind] = wave.broadcasts.get(subkind, 0) + 1
    committed = {
        record.get("trigger")
        for record in trace.of_kind("commit")
        if isinstance(record.get("trigger"), Trigger)
    }
    for trigger, wave in waves.items():
        if trigger in committed and has_debug:
            wave.minimality = must_checkpoint_set(trace, trigger)
    return ForensicReport(
        waves=[waves[trigger] for trigger in order],
        graph=graph,
        n_processes=n_processes,
        has_debug=has_debug,
    )
