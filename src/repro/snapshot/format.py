"""The on-disk snapshot container.

A ``.rsnap`` file is::

    magic "RSNP" | u16 format version | u32 header length
    | header (canonical JSON, UTF-8) | payload (pickle)

The header carries cheap metadata — trigger reason, sim time, event
count, protocol, seed — plus the payload's sha256 and length, so
``repro-sim snapshots`` can list and integrity-check a directory without
unpickling anything. Writes are atomic (tmp file + ``os.replace``), so a
crash mid-write never leaves a torn ``.rsnap`` behind; readers verify
the digest before handing the payload to the restore path.

Version policy: the u16 is bumped whenever the header schema or payload
encoding changes incompatibly. Readers refuse newer versions outright
(``SnapshotError``) rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Tuple

from repro.errors import SnapshotError

MAGIC = b"RSNP"
FORMAT_VERSION = 1

_FIXED = struct.Struct(">4sHI")  # magic, version, header length

#: canonical suffix for snapshot files
SNAPSHOT_SUFFIX = ".rsnap"


@dataclass(frozen=True)
class SnapshotMeta:
    """Header metadata for one snapshot (everything but the payload)."""

    seq: int
    reason: str
    sim_time: float
    events_processed: int
    protocol: str
    n_processes: int
    seed: int
    label: str = ""
    format_version: int = FORMAT_VERSION
    payload_sha256: str = ""
    payload_len: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SnapshotMeta":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def write_snapshot(path: str, meta: SnapshotMeta, payload: bytes) -> SnapshotMeta:
    """Atomically write ``payload`` under ``meta`` to ``path``.

    The payload digest and length are stamped into the header here (the
    caller's values are overwritten). Returns the stamped meta.
    """
    stamped = SnapshotMeta.from_dict(
        {
            **meta.to_dict(),
            "format_version": FORMAT_VERSION,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_len": len(payload),
        }
    )
    header = json.dumps(stamped.to_dict(), sort_keys=True).encode("utf-8")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as fh:
        fh.write(_FIXED.pack(MAGIC, FORMAT_VERSION, len(header)))
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return stamped


def read_meta(path: str) -> SnapshotMeta:
    """Read only the header of ``path`` (no payload IO beyond the seek)."""
    try:
        with open(path, "rb") as fh:
            fixed = fh.read(_FIXED.size)
            if len(fixed) < _FIXED.size:
                raise SnapshotError(f"{path}: truncated snapshot header")
            magic, version, header_len = _FIXED.unpack(fixed)
            if magic != MAGIC:
                raise SnapshotError(f"{path}: not a snapshot file (bad magic)")
            if version > FORMAT_VERSION:
                raise SnapshotError(
                    f"{path}: format version {version} is newer than "
                    f"supported version {FORMAT_VERSION}"
                )
            header = fh.read(header_len)
            if len(header) < header_len:
                raise SnapshotError(f"{path}: truncated snapshot header")
    except OSError as exc:
        raise SnapshotError(f"{path}: {exc}") from exc
    try:
        return SnapshotMeta.from_dict(json.loads(header.decode("utf-8")))
    except (ValueError, TypeError) as exc:
        raise SnapshotError(f"{path}: corrupt snapshot header: {exc}") from exc


def read_snapshot(path: str) -> Tuple[SnapshotMeta, bytes]:
    """Read and integrity-check a snapshot; return (meta, payload)."""
    meta = read_meta(path)
    try:
        with open(path, "rb") as fh:
            fixed = fh.read(_FIXED.size)
            _, _, header_len = _FIXED.unpack(fixed)
            fh.seek(_FIXED.size + header_len)
            payload = fh.read()
    except OSError as exc:
        raise SnapshotError(f"{path}: {exc}") from exc
    if len(payload) != meta.payload_len:
        raise SnapshotError(
            f"{path}: payload is {len(payload)} bytes, header says "
            f"{meta.payload_len} (truncated file?)"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != meta.payload_sha256:
        raise SnapshotError(
            f"{path}: payload sha256 mismatch (file corrupted): "
            f"{digest} != {meta.payload_sha256}"
        )
    return meta, payload
