"""Declarative snapshot triggers (MUSCLE3-style).

A :class:`SnapshotPolicy` says *when* the snapshotter fires, not *how*:

* ``every_events`` — every N dispatched kernel events;
* ``every_sim_seconds`` — whenever simulated time advances past the
  next multiple-of-interval mark since the last snapshot;
* ``wallclock_seconds`` — at least this much real time since the last
  snapshot (crash-protection for long campaigns).

All three are evaluated by one between-events kernel hook (see
``Simulator.set_snapshot_hook``): no trigger ever schedules an event,
consumes a seq number, or consults the schedule policy, so a run with
snapshotting enabled is byte-identical — trace hash, metrics, event
count — to the same run without it. Time-based triggers therefore fire
at the first hook check *after* the deadline passes, which for a
simulator is exact enough: state only changes when events fire, so
there is nothing new to capture between events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

#: how often (in events) the hook re-evaluates time-based triggers
DEFAULT_CHECK_EVERY = 64


@dataclass(frozen=True)
class SnapshotPolicy:
    """When to take simulator snapshots.

    Any combination of triggers may be set; with none set the policy is
    manual-only (snapshots happen only via ``Snapshotter.take()``).
    ``keep`` bounds on-disk retention: after each write, only the newest
    ``keep`` snapshots of the run are kept (``None`` keeps everything).
    """

    every_events: Optional[int] = None
    every_sim_seconds: Optional[float] = None
    wallclock_seconds: Optional[float] = None
    keep: Optional[int] = None

    def __post_init__(self) -> None:
        if self.every_events is not None and self.every_events < 1:
            raise ConfigurationError(
                f"every_events must be >= 1, got {self.every_events!r}"
            )
        if self.every_sim_seconds is not None and self.every_sim_seconds <= 0:
            raise ConfigurationError(
                f"every_sim_seconds must be > 0, got {self.every_sim_seconds!r}"
            )
        if self.wallclock_seconds is not None and self.wallclock_seconds <= 0:
            raise ConfigurationError(
                f"wallclock_seconds must be > 0, got {self.wallclock_seconds!r}"
            )
        if self.keep is not None and self.keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {self.keep!r}")

    @property
    def triggered(self) -> bool:
        """Whether any automatic trigger is configured."""
        return (
            self.every_events is not None
            or self.every_sim_seconds is not None
            or self.wallclock_seconds is not None
        )

    def check_every(self) -> int:
        """Hook granularity: how many events between trigger checks.

        A pure event-count policy checks exactly on its own period;
        time-based triggers piggyback on a finer default so their
        latency is bounded by :data:`DEFAULT_CHECK_EVERY` events.
        """
        if self.every_events is not None:
            if self.every_sim_seconds is None and self.wallclock_seconds is None:
                return self.every_events
            return min(self.every_events, DEFAULT_CHECK_EVERY)
        return DEFAULT_CHECK_EVERY

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SnapshotPolicy":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
