"""The snapshotter: policy evaluation, writing, listing, resuming.

:class:`Snapshotter` binds a runner to a :class:`SnapshotPolicy` and a
directory (or to memory), arms the kernel's between-events hook, and
takes snapshots when a trigger fires. :class:`SnapshotStore` lists and
picks snapshots in a directory; :func:`resume_run` turns a ``.rsnap``
path back into a live, continuable simulation.
"""

from __future__ import annotations

import os
from time import monotonic
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import SnapshotError
from repro.snapshot.format import (
    SNAPSHOT_SUFFIX,
    SnapshotMeta,
    read_meta,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.policy import SnapshotPolicy
from repro.snapshot.state import SimulationImage, capture, restore

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.runner import ExperimentRunner
    from repro.explore.injections import InjectionDriver


class Snapshotter:
    """Take policy-driven snapshots of one run.

    Parameters
    ----------
    runner:
        The experiment runner whose object graph is captured.
    policy:
        Trigger configuration; with no triggers set only explicit
        :meth:`take` calls snapshot.
    directory:
        Where ``.rsnap`` files go. ``None`` keeps snapshots in memory
        (``self.memory``) — used by explore's fork-from-snapshot, which
        never needs the disk round-trip.
    driver:
        Optional injection driver to include in the image (explore
        runs), so its pending injections and taps survive a resume.
    label:
        Free-form tag stamped into each snapshot's header.
    """

    def __init__(
        self,
        runner: "ExperimentRunner",
        policy: Optional[SnapshotPolicy] = None,
        directory: Optional[str] = None,
        driver: Optional["InjectionDriver"] = None,
        label: str = "",
    ) -> None:
        self.runner = runner
        self.policy = policy if policy is not None else SnapshotPolicy()
        self.directory = directory
        self.driver = driver
        self.label = label
        self.seq = 0
        #: paths written so far, oldest first (disk mode)
        self.taken: List[str] = []
        #: (meta, payload) pairs, oldest first (memory mode)
        self.memory: List[Tuple[SnapshotMeta, bytes]] = []
        sim = runner.system.sim
        self._last_events = sim.events_processed
        self._next_sim_time = (
            None
            if self.policy.every_sim_seconds is None
            else sim.now + self.policy.every_sim_seconds
        )
        self._last_wall: Optional[float] = None

    # -- arming ----------------------------------------------------------
    def install(self) -> None:
        """Arm the kernel hook; call once before (re)entering the run."""
        self._last_wall = monotonic()
        if self.policy.triggered:
            self.runner.system.sim.set_snapshot_hook(
                self._check, self.policy.check_every()
            )

    def uninstall(self) -> None:
        """Disarm the kernel hook (subsequent runs pay zero cost again)."""
        self.runner.system.sim.set_snapshot_hook(None)

    def reattach(
        self,
        runner: Optional["ExperimentRunner"] = None,
        driver: Optional["InjectionDriver"] = None,
    ) -> None:
        """Re-arm after a snapshot restore (hooks are never pickled)."""
        if runner is not None:
            self.runner = runner
        if driver is not None:
            self.driver = driver
        self.install()

    # -- trigger evaluation (runs between kernel events) -----------------
    def _check(self) -> None:
        policy = self.policy
        sim = self.runner.system.sim
        if (
            policy.every_events is not None
            and sim.events_processed - self._last_events >= policy.every_events
        ):
            self.take("events")
            return
        if (
            self._next_sim_time is not None
            and sim.now >= self._next_sim_time
        ):
            self.take("sim_time")
            return
        if policy.wallclock_seconds is not None:
            now = monotonic()
            if self._last_wall is None:
                self._last_wall = now
            elif now - self._last_wall >= policy.wallclock_seconds:
                self.take("wallclock")

    # -- capture ---------------------------------------------------------
    def take(self, reason: str = "manual") -> Optional[str]:
        """Snapshot now. Returns the written path (``None`` in memory mode).

        Safe to call only between events — from the kernel hook, or
        from outside :meth:`ExperimentRunner.run` entirely.
        """
        sim = self.runner.system.sim
        system = self.runner.system
        payload = capture(self.runner, driver=self.driver, snapshotter=self)
        meta = SnapshotMeta(
            seq=self.seq,
            reason=reason,
            sim_time=sim.now,
            events_processed=sim.events_processed,
            protocol=system.protocol.name,
            n_processes=system.config.n_processes,
            seed=system.config.seed,
            label=self.label,
        )
        self.seq += 1
        self._last_events = sim.events_processed
        if self._next_sim_time is not None:
            assert self.policy.every_sim_seconds is not None
            while self._next_sim_time <= sim.now:
                self._next_sim_time += self.policy.every_sim_seconds
        if self.policy.wallclock_seconds is not None:
            self._last_wall = monotonic()
        if self.directory is None:
            self.memory.append((meta, payload))
            return None
        path = os.path.join(
            self.directory,
            f"snap-{meta.seq:05d}-ev{meta.events_processed:09d}{SNAPSHOT_SUFFIX}",
        )
        write_snapshot(path, meta, payload)
        self.taken.append(path)
        self._prune()
        return path

    def _prune(self) -> None:
        keep = self.policy.keep
        if keep is None:
            return
        while len(self.taken) > keep:
            stale = self.taken.pop(0)
            try:
                os.unlink(stale)
            except OSError:
                pass  # already gone (e.g. cleaned up externally)

    # -- pickling (a snapshotter rides inside its own snapshots) ---------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        # prior payloads would nest quadratically; wallclock is rebased
        # on reattach
        state["memory"] = []
        state["_last_wall"] = None
        return state


class SnapshotInfo:
    """One snapshot on disk: its path plus parsed header."""

    __slots__ = ("path", "meta")

    def __init__(self, path: str, meta: SnapshotMeta) -> None:
        self.path = path
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SnapshotInfo {self.path} ev={self.meta.events_processed}>"


class SnapshotStore:
    """List and pick snapshots in a directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory

    def list(self) -> List[SnapshotInfo]:
        """All readable snapshots, oldest first (by event count, seq).

        Files with unreadable headers are skipped: after a crash the
        directory must still be usable even if something unrelated
        polluted it. (Torn writes cannot occur — writes are atomic.)
        """
        if not os.path.isdir(self.directory):
            return []
        infos: List[SnapshotInfo] = []
        for name in sorted(os.listdir(self.directory)):
            if not name.endswith(SNAPSHOT_SUFFIX):
                continue
            path = os.path.join(self.directory, name)
            try:
                infos.append(SnapshotInfo(path, read_meta(path)))
            except SnapshotError:
                continue
        infos.sort(key=lambda info: (info.meta.events_processed, info.meta.seq))
        return infos

    def latest(self) -> Optional[SnapshotInfo]:
        """The most advanced snapshot, or ``None`` for an empty store."""
        infos = self.list()
        return infos[-1] if infos else None


def resume_run(path: str) -> SimulationImage:
    """Load ``path``, verify integrity, and rebuild the live simulation.

    The returned image's ``runner.resume()`` continues the run; the
    result it returns is byte-identical (trace hash, metrics) to the
    uninterrupted run's.
    """
    _, payload = read_snapshot(path)
    return restore(payload)


def resume_memory(snapshot: Tuple[SnapshotMeta, bytes]) -> SimulationImage:
    """Rebuild a live simulation from an in-memory snapshot pair."""
    _, payload = snapshot
    return restore(payload)
