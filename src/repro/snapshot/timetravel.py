"""Time-travel replay: regenerate any trace window from a snapshot.

A flight-recorder run (``--flight-recorder N``) keeps only the most
recent N DEBUG records — the price of bounded memory is that an offline
dump cannot show the whole run at message fidelity. But if the run also
snapshotted itself, no fidelity was actually lost: the simulation is
deterministic, so resuming the **nearest snapshot at or before the
window of interest** and re-running with full DEBUG tracing regenerates
the window's records *byte-identically* to what an unbounded trace of
the original run would have held — without re-running from t=0.

This is ROADMAP item 3c, and what ``repro-sim inspect --from-snapshot``
uses: forensics on a full-fidelity trace rebuilt on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.results import RunResult
from repro.errors import SnapshotError
from repro.sim.trace import TraceLevel, TraceLog, TraceRecord
from repro.snapshot.snapshotter import SnapshotInfo, SnapshotStore, resume_run


def nearest_snapshot(
    directory: str, start_time: Optional[float] = None
) -> Optional[SnapshotInfo]:
    """The latest snapshot at or before ``start_time`` (sim seconds).

    Falls back to the earliest snapshot when none precedes the window
    (the replay then starts a little earlier than asked — correct, just
    slightly more work). ``start_time=None`` also picks the earliest:
    the caller wants the longest reconstructible window. Returns
    ``None`` for a directory with no readable snapshots.
    """
    infos = SnapshotStore(directory).list()
    if not infos:
        return None
    if start_time is None:
        return infos[0]
    at_or_before = [info for info in infos if info.meta.sim_time <= start_time]
    return at_or_before[-1] if at_or_before else infos[0]


@dataclass
class ReplayedWindow:
    """A regenerated trace plus where its full-fidelity region begins."""

    trace: TraceLog
    snapshot: SnapshotInfo
    result: RunResult

    @property
    def start_time(self) -> float:
        """Sim time from which records are regenerated (full fidelity)."""
        return self.snapshot.meta.sim_time

    def window(self, end_time: Optional[float] = None) -> List[TraceRecord]:
        """The regenerated records: time in ``[start_time, end_time]``."""
        return [
            record
            for record in self.trace
            if record.time >= self.start_time
            and (end_time is None or record.time <= end_time)
        ]


def replay_window(
    directory: str,
    start_time: Optional[float] = None,
    max_events: Optional[int] = None,
) -> ReplayedWindow:
    """Resume the nearest snapshot and re-run with full DEBUG tracing.

    The returned trace covers the whole run (the snapshot's retained
    prefix plus the regenerated suffix); records from the snapshot's
    sim time onward are full fidelity regardless of the original run's
    trace level or flight-recorder bound, and — because resume is
    byte-identical — they match the original run's records exactly.
    """
    info = nearest_snapshot(directory, start_time)
    if info is None:
        raise SnapshotError(f"no snapshots in {directory!r} to replay from")
    image = resume_run(info.path)
    trace = image.system.sim.trace
    # Full fidelity for the regenerated window, and unbounded: a replay
    # exists to see everything the flight recorder evicted.
    trace.set_level(TraceLevel.DEBUG)
    trace.release_flight_recorder()
    if image.snapshotter is not None:
        # Replay is read-only: do not let the restored policy overwrite
        # the run's own snapshots with replay-time ones.
        image.snapshotter.uninstall()
    result = image.runner.resume(max_events=max_events)
    return ReplayedWindow(trace=trace, snapshot=info, result=result)
