"""Whole-graph capture and restore of a live simulation.

The payload of a snapshot is one pickled :class:`SimulationImage`: the
experiment runner and, through it, the entire object graph — kernel
(event heap, freelist, cancelled bookkeeping, seq/clock counters),
``MobileSystem`` (processes, protocol state machines, network channels
and buffers, stable storage), ``RandomStreams`` generator states, the
metrics registry, and the trace log with its counters and flight-
recorder ring. Module-global counters that live *outside* the object
graph (checkpoint ids, the fallback message-id space) ride alongside as
plain ints.

What deliberately does **not** travel:

* trace subscribers (runner hook, injection-driver tap, external JSONL
  sinks) — live callbacks, re-attached by :func:`restore`, except
  external sinks which their owners must re-subscribe;
* the kernel profiler and bench burn hook — wall-clock instrumentation;
* the per-process ``itertools.count.__next__`` fast bindings — rebuilt
  by each process's ``_reattach``;
* the kernel's snapshot hook — re-armed via the image's snapshotter,
  when one was attached.

Restoring never executes simulation code: the image comes back exactly
at the between-events point where it was captured, and
``runner.resume()`` continues from there.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.checkpointing.types import checkpoint_ids_state, restore_checkpoint_ids
from repro.errors import SnapshotError
from repro.net.message import message_ids_state, restore_message_ids

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.runner import ExperimentRunner
    from repro.core.system import MobileSystem
    from repro.explore.injections import InjectionDriver
    from repro.snapshot.snapshotter import Snapshotter
    from repro.workload.base import Workload


@dataclass
class SimulationImage:
    """Everything needed to continue a run, in one picklable bundle."""

    runner: "ExperimentRunner"
    driver: Optional["InjectionDriver"] = None
    snapshotter: Optional["Snapshotter"] = None
    checkpoint_ids: int = 0
    message_ids: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def system(self) -> "MobileSystem":
        return self.runner.system

    @property
    def workload(self) -> "Workload":
        return self.runner.workload


def capture(
    runner: "ExperimentRunner",
    driver: Optional["InjectionDriver"] = None,
    snapshotter: Optional["Snapshotter"] = None,
    extras: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Serialize the full simulation state to bytes.

    Must be called between kernel events (the snapshot hook guarantees
    this; callers doing it by hand must not be inside an event
    callback). Capture mutates nothing — the run continues unperturbed
    whether or not the bytes are ever used.
    """
    image = SimulationImage(
        runner=runner,
        driver=driver,
        snapshotter=snapshotter,
        checkpoint_ids=checkpoint_ids_state(),
        message_ids=message_ids_state(),
        extras=dict(extras or {}),
    )
    try:
        return pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(f"simulation state is not picklable: {exc!r}") from exc


def restore(payload: bytes) -> SimulationImage:
    """Rebuild a live simulation from :func:`capture` output.

    Unpickles the image, restores the module-global id counters, and
    re-attaches every dropped live binding: per-process message-id
    fastpaths, the runner's trace subscription, the injection driver's
    tap (when still armed), and the snapshotter's kernel hook (so a
    resumed run keeps snapshotting with its original policy).
    """
    try:
        image = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotError(f"cannot unpickle snapshot payload: {exc!r}") from exc
    if not isinstance(image, SimulationImage):
        raise SnapshotError(
            f"snapshot payload is {type(image).__name__}, not SimulationImage"
        )
    restore_checkpoint_ids(image.checkpoint_ids)
    restore_message_ids(image.message_ids)
    for process in image.system.processes.values():
        process._reattach()
        process.env._reattach()
    image.runner._reattach()
    if image.driver is not None:
        image.driver._reattach()
    if image.snapshotter is not None:
        image.snapshotter.reattach(image.runner, driver=image.driver)
    return image
