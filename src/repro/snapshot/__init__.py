"""repro.snapshot: checkpoint/resume for the simulator itself.

The paper's subject is consistent checkpoints of a distributed
computation; this package applies the same idea to the simulation
*running* that computation. A snapshot captures the complete state of a
run — kernel event heap, protocol state machines, network buffers, RNG
streams, metrics, trace counters — into a versioned on-disk container,
and a resumed run retraces the uninterrupted run byte for byte (same
trace hash, same metrics).

Quick use::

    from repro.snapshot import SnapshotPolicy, Snapshotter, resume_run

    snap = Snapshotter(runner, SnapshotPolicy(every_events=1000), "snaps/")
    snap.install()
    result = runner.run(max_events=10_000_000)

    # ... later, possibly in another process, after a crash:
    image = resume_run("snaps/snap-00004-ev000004000.rsnap")
    result = image.runner.resume(max_events=10_000_000)
"""

from repro.snapshot.format import (
    FORMAT_VERSION,
    SNAPSHOT_SUFFIX,
    SnapshotMeta,
    read_meta,
    read_snapshot,
    write_snapshot,
)
from repro.snapshot.policy import SnapshotPolicy
from repro.snapshot.snapshotter import (
    SnapshotInfo,
    SnapshotStore,
    Snapshotter,
    resume_memory,
    resume_run,
)
from repro.snapshot.state import SimulationImage, capture, restore
from repro.snapshot.timetravel import (
    ReplayedWindow,
    nearest_snapshot,
    replay_window,
)

__all__ = [
    "ReplayedWindow",
    "nearest_snapshot",
    "replay_window",
    "FORMAT_VERSION",
    "SNAPSHOT_SUFFIX",
    "SnapshotMeta",
    "SnapshotPolicy",
    "SnapshotInfo",
    "SnapshotStore",
    "Snapshotter",
    "SimulationImage",
    "capture",
    "restore",
    "read_meta",
    "read_snapshot",
    "write_snapshot",
    "resume_memory",
    "resume_run",
]
