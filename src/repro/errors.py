"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """An error in the discrete-event simulation kernel."""


class ScheduleInPastError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""

    def __init__(self, now: float, when: float) -> None:
        super().__init__(f"cannot schedule event at t={when!r}; clock is at t={now!r}")
        self.now = now
        self.when = when


class NetworkError(ReproError):
    """An error in the network substrate."""


class UnknownHostError(NetworkError):
    """A message was addressed to a host that does not exist."""


class NotConnectedError(NetworkError):
    """An operation required a wireless link that is not currently up."""


class ProtocolError(ReproError):
    """A checkpointing protocol violated one of its internal invariants."""


class InconsistentCheckpointError(ProtocolError):
    """A committed global checkpoint failed a consistency check."""


class ConfigurationError(ReproError):
    """An experiment configuration is invalid."""


class StorageError(ReproError):
    """A checkpoint storage operation failed."""


class SnapshotError(ReproError):
    """A simulator snapshot could not be written, read, or restored."""
