"""Checkpointing protocols and supporting machinery.

The paper's contribution lives in :mod:`repro.checkpointing.mutable`;
the baselines used in the Table 1 comparison and the §3.1.1 ablation
schemes live alongside it.
"""

from repro.checkpointing.chandy_lamport import ChandyLamportProcess, ChandyLamportProtocol
from repro.checkpointing.elnozahy import ElnozahyProcess, ElnozahyProtocol
from repro.checkpointing.koo_toueg import KooTouegProcess, KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProcess, MutableCheckpointProtocol
from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.simple_schemes import (
    BasicCsnProtocol,
    NoMutableVariantProtocol,
    RevisedCsnProtocol,
)
from repro.checkpointing.storage import LocalStore, StableStorage
from repro.checkpointing.types import (
    CheckpointKind,
    CheckpointRecord,
    MREntry,
    MutableCheckpointRecord,
    Trigger,
    fresh_mr,
)
from repro.checkpointing.weights import WeightLedger, as_weight, split

__all__ = [
    "BasicCsnProtocol",
    "ChandyLamportProcess",
    "ChandyLamportProtocol",
    "CheckpointKind",
    "CheckpointProtocol",
    "CheckpointRecord",
    "ElnozahyProcess",
    "ElnozahyProtocol",
    "KooTouegProcess",
    "KooTouegProtocol",
    "LocalStore",
    "MREntry",
    "MutableCheckpointProcess",
    "MutableCheckpointProtocol",
    "MutableCheckpointRecord",
    "NoMutableVariantProtocol",
    "ProcessEnv",
    "ProtocolProcess",
    "RevisedCsnProtocol",
    "StableStorage",
    "Trigger",
    "WeightLedger",
    "as_weight",
    "fresh_mr",
    "split",
]
