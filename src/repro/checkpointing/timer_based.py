"""Checkpointing from loosely synchronized clocks ([10], [29]; paper §6).

No coordination messages at all: every process takes its round-k
checkpoint when its own clock reaches ``k * interval``, and clocks are
assumed synchronized within ``max_skew``. The §6 catch: "a process
taking a checkpoint needs to wait for a period that equals the sum of
the maximum deviation between clocks and the maximum time to detect a
failure in another process" — i.e. the computation blocks for
``2 * max_skew + detection_time`` at every round, or a fast-clock
process could receive (and record) a message a slow-clock process sends
after its own checkpoint, creating an orphan.

Rounds are self-scheduled (there is no initiator); the experiment-runner
initiation pattern does not apply — call :meth:`TimerBasedProtocol.start`
after building the system and drive the simulation directly. Round
commits are reported through the usual listener interface (by the
lowest pid) so metrics extraction works unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from functools import partial

from repro.checkpointing.protocol import (
    CheckpointProtocol,
    ProcessEnv,
    ProtocolProcess,
    noop,
)
from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class TimerBasedProcess(ProtocolProcess):
    """Per-process state: a clock with bounded skew and a round counter."""

    def __init__(self, env: ProcessEnv, protocol: "TimerBasedProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        self.round = 0
        # Deterministic skew in [-max_skew, +max_skew], spread across pids.
        span = protocol.max_skew
        fraction = ((self.pid * 2654435761) % 997) / 996.0
        self.skew = (2.0 * fraction - 1.0) * span
        self._pending: Optional[CheckpointRecord] = None

    # -- the protocol has no message behaviour at all -----------------------
    def on_send_computation(self, message: ComputationMessage) -> None:
        pass

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        deliver()

    def on_system_message(self, message: SystemMessage) -> None:
        raise ProtocolError("timer-based checkpointing exchanges no messages")

    def initiate(self) -> bool:
        # There is no on-demand initiation: checkpoints come from clocks
        # only. (One of the §6 limitations: no output-commit on demand.)
        return False

    # -- round machinery ------------------------------------------------------
    def schedule_round(self, round_index: int, fire_at: float) -> None:
        """Arm round ``round_index`` at global time (plus local skew)."""
        local_fire = max(fire_at + self.skew - self.env.now(), 0.0)
        self.env.schedule(local_fire, partial(self._take_round, round_index))

    def _take_round(self, round_index: int) -> None:
        self.round = round_index
        trigger = Trigger(self.pid, round_index)
        self.env.block_computation()
        record = self.make_checkpoint(
            round_index, CheckpointKind.TENTATIVE, trigger
        )
        self._pending = record
        self.env.trace(
            "tentative",
            pid=self.pid,
            trigger=trigger,
            csn=round_index,
            ckpt_id=record.ckpt_id,
        )
        self.env.transfer_to_stable(record, noop)
        # The §6 wait: cover every other clock plus failure detection.
        wait = 2.0 * self.protocol.max_skew + self.protocol.detection_time
        self.env.schedule(wait, partial(self._finish_round, trigger))

    def _finish_round(self, trigger: Trigger) -> None:
        record = self._pending
        if record is not None:
            self.env.make_permanent(record)
            self.env.trace(
                "permanent", pid=self.pid, trigger=trigger, ckpt_id=record.ckpt_id
            )
            self._pending = None
        self.env.unblock_computation()
        if self.pid == 0:
            self.env.trace("commit", trigger=Trigger(0, trigger.inum))
            self.protocol.notify_commit(Trigger(0, trigger.inum))


class TimerBasedProtocol(CheckpointProtocol):
    """System-wide factory for the loosely-synchronized-clocks baseline.

    Parameters
    ----------
    interval:
        Round period in seconds.
    max_skew:
        Bound on any clock's deviation from true time.
    detection_time:
        Maximum time to detect another process's failure (part of the
        §6 waiting period).
    """

    name = "timer-based"
    blocking = True
    distributed = True

    def __init__(
        self,
        interval: float = 900.0,
        max_skew: float = 1.0,
        detection_time: float = 2.0,
    ) -> None:
        super().__init__()
        if max_skew < 0 or detection_time < 0 or interval <= 0:
            raise ProtocolError("invalid timer-based parameters")
        self.interval = interval
        self.max_skew = max_skew
        self.detection_time = detection_time
        self._rounds_scheduled = 0

    def _build_process(self, env: ProcessEnv) -> TimerBasedProcess:
        return TimerBasedProcess(env, self)

    def start(self, rounds: int, first_at: Optional[float] = None) -> None:
        """Schedule ``rounds`` checkpoint rounds on every process."""
        if not self.processes:
            raise ProtocolError("start() before any process exists")
        base = first_at if first_at is not None else self.interval
        for k in range(1, rounds + 1):
            fire_at = base + (k - 1) * self.interval
            for process in self.processes.values():
                process.schedule_round(self._rounds_scheduled + k, fire_at)
        self._rounds_scheduled += rounds
