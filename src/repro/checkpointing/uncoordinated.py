"""The Acharya-Badrinath uncoordinated baseline [1] (paper §6).

The first checkpointing algorithm for mobile computing: an MH takes a
local checkpoint whenever a message reception is preceded by a message
sent since its last checkpoint. No coordination at all — and therefore,
as §6 points out:

* "If the send and receive of messages are interleaved, the number of
  local checkpoints will be equal to half of the number of computation
  messages" — measured by the ablation bench;
* recovery must *search* for a consistent line among the accumulated
  checkpoints and can cascade (the domino effect) — demonstrated with
  :mod:`repro.analysis.recovery_line`.

Every checkpoint is unilateral and immediately permanent (the stable
transfer still pays the wireless cost). Timer-driven initiations take an
unconditional local checkpoint, so the experiment runner's scheduling
works unchanged; "commit" here means only "the local checkpoint is on
stable storage".
"""

from __future__ import annotations

from typing import Callable, Optional

from functools import partial

from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.types import CheckpointKind, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class UncoordinatedProcess(ProtocolProcess):
    """Per-process state of the Acharya-Badrinath rule."""

    def __init__(self, env: ProcessEnv, protocol: "UncoordinatedProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        self.csn = 0
        #: sent a message since the last local checkpoint
        self.sent_since_checkpoint = False

    def on_send_computation(self, message: ComputationMessage) -> None:
        self.sent_since_checkpoint = True

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        if self.protocol.ab_rule and self.sent_since_checkpoint:
            # The AB rule: receive preceded by a send forces a checkpoint
            # *before* processing, so every checkpoint interval has the
            # shape (receives)(sends). This keeps rollback cascades
            # shallow whenever senders checkpoint regularly — though a
            # process that only ever sends can still invalidate multiple
            # checkpoints of its correspondents (found by property
            # testing; the full AB system also logs messages).
            self._take_checkpoint(reason="receive-after-send")
        deliver()

    def initiate(self) -> bool:
        self._take_checkpoint(reason="scheduled")
        self.protocol.notify_commit(Trigger(self.pid, self.csn))
        return True

    def _take_checkpoint(self, reason: str) -> None:
        self.csn += 1
        trigger = Trigger(self.pid, self.csn)
        record = self.make_checkpoint(self.csn, CheckpointKind.TENTATIVE, None)
        self.sent_since_checkpoint = False
        self.env.trace(
            "tentative",
            pid=self.pid,
            trigger=None,
            csn=self.csn,
            ckpt_id=record.ckpt_id,
            uncoordinated=True,
            reason=reason,
        )

        self.env.transfer_to_stable(record, partial(self._finish_checkpoint, record))

    def _finish_checkpoint(self, record) -> None:
        self.env.make_permanent(record)
        self.env.trace(
            "permanent",
            pid=self.pid,
            trigger=None,
            ckpt_id=record.ckpt_id,
            uncoordinated=True,
        )

    def on_system_message(self, message: SystemMessage) -> None:
        raise ProtocolError(
            f"uncoordinated protocol received a system message {message.subkind!r}"
        )


class UncoordinatedProtocol(CheckpointProtocol):
    """System-wide factory for the Acharya-Badrinath baseline.

    Note that :func:`repro.analysis.consistency.latest_permanent_line`
    is NOT guaranteed consistent for this protocol — that is the point.
    Use :func:`repro.analysis.recovery_line.maximal_consistent_line`.
    """

    name = "uncoordinated"
    blocking = False
    distributed = True
    gc_permanents = False

    def __init__(self, ab_rule: bool = True) -> None:
        super().__init__()
        #: with the rule off, checkpoints are purely periodic — the
        #: classic uncoordinated setting whose recovery cascades (the
        #: domino effect the AB rule was designed to eliminate)
        self.ab_rule = ab_rule

    def _build_process(self, env: ProcessEnv) -> UncoordinatedProcess:
        return UncoordinatedProcess(env, self)
