"""The mutable-checkpoint coordinated checkpointing algorithm (paper §3).

This is the paper's contribution: a *nonblocking* algorithm in which only
a minimum number of processes write checkpoints to stable storage, with
*mutable checkpoints* — cheap local-memory checkpoints taken on receipt
of suspicious computation messages — absorbing the impossibility result
of §2.4 instead of blocking or avalanching.

The implementation follows the §3.3 pseudocode block by block; method
names reference the corresponding block. One deliberate generalization:
the paper's singular ``CP_i`` record is a dict keyed by trigger, so the
Fig. 3 situation (mutable checkpoints for two overlapping initiations,
which the single-initiation presentation of §3.3 excludes) behaves as
§3.1.2 prescribes: ``C_{1,1}`` is promoted by the initiator's request
while ``C_{1,2}`` is discarded at the other initiation's commit. With
non-overlapping initiations the dict never holds more than one entry and
the behaviour is exactly the pseudocode's.

Termination weights are exact fractions (see
:mod:`repro.checkpointing.weights`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from functools import partial
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.state import BitVector, IntVector, true_indices
from repro.checkpointing.types import (
    CheckpointKind,
    CheckpointRecord,
    MREntry,
    MutableCheckpointRecord,
    Trigger,
    fresh_mr,
)
from repro.checkpointing.weights import ONE, ZERO, WeightLedger, as_weight, split
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


@dataclass
class _TentativeContext:
    """State saved when taking a tentative checkpoint, restored on abort."""

    record: CheckpointRecord
    prev_old_csn: int
    prev_r: BitVector
    prev_sent: bool


def _noop() -> None:
    """Callback placeholder for background transfers."""


class MutableCheckpointProcess(ProtocolProcess):
    """Per-process state machine of the §3.3 algorithm."""

    # the delivery queue holds live runtime thunks, not algorithm state
    _state_dict_exclude = frozenset({"_delivery_queue"})

    def __init__(self, env: ProcessEnv, protocol: "MutableCheckpointProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        n = self.n
        # §3.2 data structures (array-backed; see checkpointing.state)
        self.r = BitVector(n)
        self.csn = IntVector(n)
        # Highest *committed* inum known per initiator. The paper folds
        # this into csn[] (commit sets csn_j[pid] = inum), but that
        # breaks the Fig. 4 suppression: req_csn must reflect the csn at
        # which the dependency message was sent, not commit gossip, or a
        # post-commit request is no longer recognized as stale. Keeping
        # commit knowledge separate satisfies both §3.1.3 and §3.3.4.
        self.commit_known = IntVector(n)
        self.sent = False
        self.cp_state = False
        self.own_trigger = Trigger(self.pid, 0)
        self.old_csn = 0
        #: mutable checkpoints held locally, keyed by the initiation that
        #: triggered them (the paper's CP_i, generalized — see module doc)
        self.mutables: Dict[Trigger, MutableCheckpointRecord] = {}
        #: tentative checkpoints awaiting commit/abort, by initiation
        self.pending_tentative: Dict[Trigger, _TentativeContext] = {}
        #: initiations known to have aborted (stale requests are refused)
        self.aborted: set = set()
        # §3.3.5 update-mode bookkeeping: processes we sent tagged
        # computation messages to, per initiation — they may hold
        # cp_state/mutable state that a unicast commit must also clear.
        self.tagged_sent: Dict[Trigger, set] = {}
        # initiator-side state
        self.weight: Fraction = ZERO
        self.initiating: Optional[Trigger] = None
        self._repliers: set = set()
        self._own_save_done = False
        # Application hand-offs held while a local mutable-checkpoint
        # copy is in progress. The process handles messages one at a
        # time: a message arriving during the copy must not overtake
        # the one that triggered it (FIFO, §2.1).
        self._delivery_queue: Deque[Callable[[], None]] = deque()

    # ------------------------------------------------------------------
    # Block: "Actions taken when P_i sends a computation message to P_j"
    # ------------------------------------------------------------------
    def on_send_computation(self, message: ComputationMessage) -> None:
        # Zero-alloc fast lane: the (csn, trigger) pair rides in the
        # message's dedicated tuple slot instead of the piggyback dict.
        if self.cp_state:
            message.pb = (self.csn[self.pid], self.own_trigger)
            if self.protocol.commit_mode != "broadcast":
                self.tagged_sent.setdefault(self.own_trigger, set()).add(
                    message.dst_pid
                )
        else:
            message.pb = (self.csn[self.pid], None)
        self.sent = True

    # ------------------------------------------------------------------
    # Block: "Actions for the initiator P_j"
    # ------------------------------------------------------------------
    def initiate(self) -> bool:
        if self.cp_state or self.initiating is not None:
            return False
        self.csn[self.pid] += 1
        self.own_trigger = Trigger(self.pid, self.csn[self.pid])
        trigger = self.own_trigger
        self.cp_state = True
        self.initiating = trigger
        self._own_save_done = False
        self._repliers = set()
        self.weight = ZERO
        if self.protocol.ledger is not None:
            self.protocol.ledger.begin(self.pid)
        self.env.trace("initiation", pid=self.pid, trigger=trigger)
        mr = fresh_mr(self.n)
        mr[self.pid] = MREntry(self.csn[self.pid], True)
        remaining = self._prop_cp(self.r, mr, trigger, ONE)
        self.weight = remaining
        record = self.make_checkpoint(
            self.csn[self.pid], CheckpointKind.TENTATIVE, trigger
        )
        self._register_tentative(record)
        self.old_csn = self.csn[self.pid]
        self.sent = False
        self.r = BitVector(self.n)
        self.env.trace(
            "tentative", pid=self.pid, trigger=trigger, csn=record.csn,
            ckpt_id=record.ckpt_id, via="initiator",
        )
        self._save_stable_and_then(record, self._on_initiator_save_done)
        return True

    def _on_initiator_save_done(self) -> None:
        self._own_save_done = True
        self._maybe_commit()

    def _save_stable_and_then(
        self, record: CheckpointRecord, fn: Callable[[], None]
    ) -> None:
        """Ship ``record`` to stable storage, then run ``fn``.

        With ``reply_after_transfer`` (strict mode) ``fn`` waits for the
        data to reach the MSS; by default (the paper's §5.2 precopy
        model) ``fn`` runs after the local memory copy and the transfer
        drains in the background.
        """
        if self.protocol.reply_after_transfer:
            self.env.transfer_to_stable(record, fn)
        else:
            self.env.transfer_to_stable(record, _noop)
            save_time = self.env.mutable_save_time
            if save_time > 0:
                self.env.schedule(save_time, fn)
            else:
                fn()

    # ------------------------------------------------------------------
    # Subroutine prop_cp(R, MR, P_i, msg_trigger, recv_weight)
    # ------------------------------------------------------------------
    def _prop_cp(
        self,
        r_vec: BitVector,
        mr,
        msg_trigger: Trigger,
        recv_weight: Fraction,
    ) -> Fraction:
        """Propagate checkpoint requests to uncovered dependencies.

        Returns the weight retained after halving once per request sent.

        Two deviations from the §3.3 pseudocode, both found necessary by
        property-based testing and both consistent with the paper's
        *prose* description of MR ("req_csn is appended with the request
        and saved in MR[k].csn"):

        * skip P_k only if some process is known to have *already sent*
          it a request (MR[k].R) with a req_csn at least as fresh as
          ours — the pseudocode's bare csn comparison also skips the
          never-requested case where both csns are 0, dropping
          dependencies outright;
        * MR[k].csn is updated only when a request to P_k is actually
          sent. The pseudocode's unconditional ``max(MR[k].csn,
          csn_i[k])`` lets csn knowledge from processes that never
          requested P_k inflate the entry, so a later process with a
          genuinely fresher dependency wrongly believes P_k is covered
          and the needed checkpoint is never taken (an orphan results).
        """
        weight = as_weight(recv_weight)
        send_set = [
            k
            for k in true_indices(r_vec)
            if k != self.pid
            and not (mr[k].r and mr[k].csn >= self.csn[k])
        ]
        temp = mr.copy()
        for k in send_set:
            temp[k] = MREntry(max(mr[k].csn, self.csn[k]), True)
        for k in send_set:
            weight = split(weight)
            if self.protocol.ledger is not None:
                self.protocol.ledger.move_to_request(self.pid, weight)
            self.env.send_system(
                k,
                "request",
                {
                    "mr": temp,
                    "recv_csn": self.csn[self.pid],
                    "trigger": msg_trigger,
                    "req_csn": self.csn[k],
                    "weight": weight,
                    "from_pid": self.pid,
                },
            )
        return weight

    # ------------------------------------------------------------------
    # Block: "Actions at process P_i, on receiving a checkpoint request"
    # ------------------------------------------------------------------
    def _on_request(self, message: SystemMessage) -> None:
        fields = message.fields
        from_pid: int = fields["from_pid"]
        mr = fields["mr"]
        recv_csn: int = fields["recv_csn"]
        msg_trigger: Trigger = fields["trigger"]
        req_csn: int = fields["req_csn"]
        recv_weight: Fraction = as_weight(fields["weight"])
        if self.protocol.ledger is not None:
            self.protocol.ledger.request_arrived(self.pid, recv_weight)

        # NOTE: the paper's pseudocode updates csn_i[j] from the request
        # unconditionally, *before* the inherit test. Property-based
        # testing found that to be unsound: if this process declines
        # (old_csn > req_csn) but the nonblocking initiator keeps sending
        # tagged messages, the inflated csn entry suppresses the mutable
        # checkpoint those messages need (first branch of the
        # computation-message handler), while the initiator's MR
        # self-marker suppresses the repair request — an orphan results.
        # We therefore update csn[from] only on the paths that end with a
        # checkpoint (or already took one) for this trigger.
        if msg_trigger in self.aborted:
            # A request of an already-aborted initiation still in flight;
            # taking a checkpoint for it would leak a tentative forever.
            self._send_reply(msg_trigger, recv_weight)
            return
        if self.old_csn > req_csn:
            # §3.1.3: the dependency that provoked this request is already
            # recorded in our current stable checkpoint.
            self._send_reply(msg_trigger, recv_weight)
            return
        self.csn[from_pid] = max(self.csn[from_pid], recv_csn)
        self.cp_state = True
        if msg_trigger == self.own_trigger:
            mutable = self.mutables.pop(msg_trigger, None)
            if mutable is not None:
                remaining = self._prop_cp(mutable.saved_r, mr, msg_trigger, recv_weight)
                self._promote_mutable(mutable, msg_trigger, remaining, from_pid)
            else:
                self._send_reply(msg_trigger, recv_weight)
        elif msg_trigger in self.mutables:
            # Holding a mutable checkpoint for this initiation without
            # having inherited yet: promote it (paper §3.1.2 — the
            # own_trigger comparison covers this in the single-initiation
            # presentation; the dict generalization needs it explicit).
            mutable = self.mutables.pop(msg_trigger)
            self.csn[self.pid] += 1
            self.own_trigger = msg_trigger
            remaining = self._prop_cp(mutable.saved_r, mr, msg_trigger, recv_weight)
            self._promote_mutable(mutable, msg_trigger, remaining, from_pid)
        else:
            self.csn[self.pid] += 1
            self.own_trigger = msg_trigger
            remaining = self._prop_cp(self.r, mr, msg_trigger, recv_weight)
            record = self.make_checkpoint(
                self.csn[self.pid], CheckpointKind.TENTATIVE, msg_trigger
            )
            context = _TentativeContext(
                record=record,
                prev_old_csn=self.old_csn,
                prev_r=self.r.copy(),
                prev_sent=self.sent,
            )
            self._register_tentative(record, context)
            self.old_csn = self.csn[self.pid]
            self.sent = False
            self.r = BitVector(self.n)
            self.env.trace(
                "tentative",
                pid=self.pid,
                trigger=msg_trigger,
                csn=record.csn,
                ckpt_id=record.ckpt_id,
                via="request",
                from_pid=from_pid,
            )
            self._save_stable_and_then(
                record, partial(self._send_reply, msg_trigger, remaining)
            )

    def _promote_mutable(
        self,
        mutable: MutableCheckpointRecord,
        msg_trigger: Trigger,
        remaining: Fraction,
        from_pid: int,
    ) -> None:
        """Turn a mutable checkpoint into a tentative one (stable save)."""
        record = mutable.checkpoint
        record.kind = CheckpointKind.TENTATIVE
        record.trigger = msg_trigger
        self.env.discard_mutable(record)
        context = _TentativeContext(
            record=record,
            prev_old_csn=self.old_csn,
            prev_r=mutable.saved_r,
            prev_sent=mutable.saved_sent,
        )
        self._register_tentative(record, context)
        self.old_csn = self.csn[self.pid]
        self.env.trace(
            "mutable_promoted", pid=self.pid, trigger=msg_trigger,
            ckpt_id=record.ckpt_id, from_pid=from_pid,
        )
        self.env.trace(
            "tentative",
            pid=self.pid,
            trigger=msg_trigger,
            csn=record.csn,
            ckpt_id=record.ckpt_id,
            via="promotion",
            from_pid=from_pid,
        )
        self._save_stable_and_then(
            record, partial(self._send_reply, msg_trigger, remaining)
        )

    def _register_tentative(
        self, record: CheckpointRecord, context: Optional[_TentativeContext] = None
    ) -> None:
        trigger = record.trigger
        assert trigger is not None
        if trigger in self.pending_tentative:
            raise ProtocolError(
                f"process {self.pid} took two tentative checkpoints for {trigger}"
            )
        if context is None:
            context = _TentativeContext(
                record=record,
                prev_old_csn=self.old_csn,
                prev_r=self.r.copy(),
                prev_sent=self.sent,
            )
        self.pending_tentative[trigger] = context

    def _send_reply(self, trigger: Trigger, weight: Fraction) -> None:
        if trigger.pid == self.pid:
            # Requests can loop back to the initiator; it keeps the weight.
            self._absorb_reply_weight(weight)
            return
        if self.protocol.ledger is not None:
            self.protocol.ledger.move_to_reply(self.pid, weight)
        self.env.send_system(
            trigger.pid,
            "reply",
            {"weight": weight, "trigger": trigger, "from_pid": self.pid},
        )

    def _hand_off(self, deliver: Callable[[], None], busy_time: float = 0.0) -> None:
        """Hand a message to the application, preserving arrival order.

        While a mutable-checkpoint copy is in progress (``busy_time`` of
        the triggering message has not elapsed), later arrivals must wait
        behind it: the process handles one message at a time, so letting
        them through immediately would reorder a FIFO channel (§2.1).
        """
        if not self._delivery_queue and busy_time <= 0.0:
            deliver()
            return
        self._delivery_queue.append(deliver)
        if len(self._delivery_queue) == 1:
            self.env.schedule(busy_time, self._drain_delivery)

    def _drain_delivery(self) -> None:
        while self._delivery_queue:
            self._delivery_queue.popleft()()

    # ------------------------------------------------------------------
    # Block: "Actions at P_i, on receiving a computation message from P_j"
    # ------------------------------------------------------------------
    def on_receive_computation(
        self, message: ComputationMessage, deliver: Callable[[], None]
    ) -> None:
        j = message.src_pid
        recv_csn, msg_trigger = message.protocol_tags()
        if recv_csn <= self.csn[j]:
            self.r[j] = True
            self._hand_off(deliver)
            return
        if msg_trigger is not None and (
            self.csn[msg_trigger.pid] >= msg_trigger.inum
            or self.commit_known[msg_trigger.pid] >= msg_trigger.inum
        ):
            # We already know about this initiation (we heard from the
            # initiator, or saw its commit): no mutable checkpoint needed.
            self.csn[j] = recv_csn
            self.r[j] = True
            self._hand_off(deliver)
            return
        self.csn[j] = recv_csn
        took_mutable = False
        if (
            msg_trigger is not None
            and self.sent
            and msg_trigger != self.own_trigger
            and msg_trigger not in self.mutables
        ):
            record = self.make_checkpoint(
                self.csn[self.pid] + 1, CheckpointKind.MUTABLE, msg_trigger
            )
            self.mutables[msg_trigger] = MutableCheckpointRecord(
                checkpoint=record,
                trigger=msg_trigger,
                saved_r=self.r.copy(),
                saved_sent=self.sent,
            )
            self.env.save_mutable(record)
            self.env.trace(
                "mutable",
                pid=self.pid,
                trigger=msg_trigger,
                csn=record.csn,
                ckpt_id=record.ckpt_id,
                from_pid=j,
                msg_id=message.msg_id,
            )
            self.sent = False
            self.r = BitVector(self.n)
            took_mutable = True
        if msg_trigger is not None and not self.cp_state:
            self.cp_state = True
            self.csn[self.pid] += 1
            self.own_trigger = msg_trigger
        self.r[j] = True
        # The message is processed after the local state copy completes;
        # protocol state above already reflects the new interval, so
        # delaying only the application hand-off is safe.
        busy = self.env.mutable_save_time if took_mutable else 0.0
        self._hand_off(deliver, busy_time=busy)

    # ------------------------------------------------------------------
    # Block: second phase (initiator) + commit reception (others)
    # ------------------------------------------------------------------
    def _on_reply(self, message: SystemMessage) -> None:
        weight = as_weight(message.fields["weight"])
        if self.initiating is None or message.fields.get("trigger") != self.initiating:
            # A reply for an initiation this process already aborted:
            # its weight is dead, drop it.
            self.env.trace("stale_reply", pid=self.pid)
            return
        if self.protocol.ledger is not None:
            self.protocol.ledger.reply_arrived(self.pid, weight)
        from_pid = message.fields.get("from_pid")
        if from_pid is not None:
            self._repliers.add(from_pid)
        self._absorb_reply_weight(weight)

    def _absorb_reply_weight(self, weight: Fraction) -> None:
        self.weight += weight
        self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self.initiating is None or self.weight != ONE or not self._own_save_done:
            return
        trigger = self.initiating
        self.initiating = None
        self.weight = ZERO
        repliers = self._repliers
        self._repliers = set()
        if self.protocol.ledger is not None:
            self.protocol.ledger.check()
            self.protocol.ledger.end()
        self.env.trace("commit", trigger=trigger)
        mode = self.protocol.commit_mode
        if mode == "auto":
            # §3.3.5: a counter decides per initiation — broadcast when
            # many processes took checkpoints, unicast when few.
            mode = (
                "broadcast"
                if len(repliers) > self.protocol.update_threshold
                else "update"
            )
        if mode == "broadcast":
            self.env.broadcast_system("commit", {"trigger": trigger})
            self._apply_commit(trigger)
        else:
            # Update mode: unicast commit to the repliers; anyone who
            # only saw our tagged computation messages is cleared by the
            # recursive clear wave in _on_commit.
            targets = repliers | self.tagged_sent.get(trigger, set())
            targets.discard(self.pid)
            for pid in sorted(targets):
                self.env.send_system(pid, "commit", {"trigger": trigger, "update": True})
            self.tagged_sent.pop(trigger, None)
            self._apply_commit(trigger)
        self.protocol.notify_commit(trigger)

    def _on_commit(self, message: SystemMessage) -> None:
        trigger = message.fields["trigger"]
        exclude = message.fields.get("exclude", ())
        if self.pid in exclude:
            # Kim-Park partial commit (§3.6): we depend on a failed
            # process, so our checkpoint aborts while others commit.
            self._apply_abort(trigger)
            return
        if message.fields.get("update"):
            # §3.3.5 update mode: forward the clear wave to everyone we
            # tagged before processing (idempotence guard: only the
            # first commit for this trigger forwards).
            already = self.commit_known[trigger.pid] >= trigger.inum
            targets = self.tagged_sent.pop(trigger, set())
            if not already:
                targets.discard(self.pid)
                for pid in sorted(targets):
                    self.env.send_system(
                        pid, "commit", {"trigger": trigger, "update": True}
                    )
        self._apply_commit(trigger)

    def _apply_commit(self, trigger: Trigger) -> None:
        self.commit_known[trigger.pid] = max(
            self.commit_known[trigger.pid], trigger.inum
        )
        # The pseudocode clears cp_state unconditionally, which is sound
        # only under §3.3's single-initiation assumption. With overlap,
        # a bystander commit must not strip a process engaged in a
        # *different* wave of its tag: its post-checkpoint sends would
        # go out untagged and receivers would skip the mutable
        # checkpoint those messages need (orphan; found by explore).
        if trigger == self.own_trigger:
            self.cp_state = False
        mutable = self.mutables.pop(trigger, None)
        if mutable is not None:
            # §3.3.4: a discarded mutable checkpoint gives back its saved
            # dependency context.
            self.sent = self.sent or mutable.saved_sent
            self.r.or_with(mutable.saved_r)
            self.env.discard_mutable(mutable.checkpoint)
            self.env.trace(
                "mutable_discarded",
                pid=self.pid,
                trigger=trigger,
                ckpt_id=mutable.checkpoint.ckpt_id,
            )
        context = self.pending_tentative.pop(trigger, None)
        if context is not None:
            self.env.make_permanent(context.record)
            self.env.trace(
                "permanent", pid=self.pid, trigger=trigger, ckpt_id=context.record.ckpt_id
            )

    # ------------------------------------------------------------------
    # Abort (failures during checkpointing, §3.6)
    # ------------------------------------------------------------------
    def abort_initiation(self) -> None:
        """Initiator-side: broadcast abort for the current initiation."""
        if self.initiating is None:
            raise ProtocolError(f"process {self.pid} is not initiating")
        trigger = self.initiating
        self.initiating = None
        self.weight = ZERO
        if self.protocol.ledger is not None:
            self.protocol.ledger.end()
        self.env.trace("abort", trigger=trigger)
        self.env.broadcast_system("abort", {"trigger": trigger})
        self._apply_abort(trigger)
        self.protocol.notify_abort(trigger)

    def _on_abort(self, message: SystemMessage) -> None:
        self._apply_abort(message.fields["trigger"])

    def _apply_abort(self, trigger: Trigger) -> None:
        # Scoped like _apply_commit: only the wave we are actually in
        # releases our cp_state.
        if trigger == self.own_trigger:
            self.cp_state = False
        self.aborted.add(trigger)
        self.tagged_sent.pop(trigger, None)
        mutable = self.mutables.pop(trigger, None)
        if mutable is not None:
            self.sent = self.sent or mutable.saved_sent
            self.r.or_with(mutable.saved_r)
            self.env.discard_mutable(mutable.checkpoint)
            self.env.trace(
                "mutable_discarded",
                pid=self.pid,
                trigger=trigger,
                ckpt_id=mutable.checkpoint.ckpt_id,
            )
        context = self.pending_tentative.pop(trigger, None)
        if context is not None:
            # Restore the dependency context the tentative checkpoint
            # consumed, so the dependencies are re-requested next time.
            self.old_csn = context.prev_old_csn
            self.sent = self.sent or context.prev_sent
            self.r.or_with(context.prev_r)
            self.env.discard_stable(context.record)
            self.env.trace(
                "tentative_discarded",
                pid=self.pid,
                trigger=trigger,
                ckpt_id=context.record.ckpt_id,
            )

    # ------------------------------------------------------------------
    def on_system_message(self, message: SystemMessage) -> None:
        handler = {
            "request": self._on_request,
            "reply": self._on_reply,
            "commit": self._on_commit,
            "abort": self._on_abort,
        }.get(message.subkind)
        if handler is None:
            raise ProtocolError(
                f"unknown system message subkind {message.subkind!r}"
            )
        handler(message)


class MutableCheckpointProtocol(CheckpointProtocol):
    """System-wide factory for the mutable-checkpoint algorithm.

    Parameters
    ----------
    track_weights:
        When True, a :class:`WeightLedger` asserts Lemma 2's weight
        invariant continuously (used in tests; adds overhead).
    reply_after_transfer:
        True (default) is the paper's accounting: a process replies once
        its checkpoint reached stable storage, so commit implies
        durability and the checkpointing time includes the transfers
        (T_ch = T_msg + T_data + T_disk, up to ~32 s for N = 16 on the
        shared 2 Mbps cell). False is the aggressive precopy mode: the
        reply leaves after the 2.5 ms local copy and the transfer drains
        in the background, shrinking the checkpointing window to
        message-delay scale (an ablation for the overhead study).
    """

    name = "mutable"
    blocking = False
    distributed = True

    def __init__(
        self,
        track_weights: bool = False,
        reply_after_transfer: bool = True,
        commit_mode: str = "broadcast",
        update_threshold: Optional[int] = None,
    ) -> None:
        super().__init__()
        if commit_mode not in ("broadcast", "update", "auto"):
            raise ProtocolError(f"unknown commit mode {commit_mode!r}")
        self.ledger: Optional[WeightLedger] = WeightLedger() if track_weights else None
        self.reply_after_transfer = reply_after_transfer
        self.commit_mode = commit_mode
        #: auto mode broadcasts when more than this many processes
        #: replied (defaults to half the system at first use)
        self._update_threshold = update_threshold

    @property
    def update_threshold(self) -> int:
        if self._update_threshold is not None:
            return self._update_threshold
        n = len(self.processes)
        return max(1, n // 2)

    def _build_process(self, env: ProcessEnv) -> MutableCheckpointProcess:
        return MutableCheckpointProcess(env, self)
