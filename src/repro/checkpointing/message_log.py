"""Sender-based message logging for lost-message replay.

Coordinated checkpointing guarantees no *orphan* messages, but a
rollback still loses messages that were in transit across the recovery
line — sent before a sender's checkpoint, received (or deliverable) only
after the receiver's. The paper's §6 notes that Koo-Toueg "do not
consider lost messages" while Deng-Park handle both; this module is the
standard remedy: every process logs the computation messages it sends,
and after a rollback the logged payloads of lost messages are replayed
to their destinations.

The log is volatile (in the sender's memory) and pruned at each
permanent checkpoint boundary: once the send is recorded in the sender's
permanent checkpoint *and* the receive in the receiver's, the entry can
never be needed again. For simplicity pruning here keeps everything
since the sender's previous permanent checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List

from repro.analysis.consistency import checkpoint_positions
from repro.checkpointing.types import CheckpointRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass(frozen=True)
class LoggedMessage:
    """One sender-logged computation message."""

    msg_id: int
    src: int
    dst: int
    payload: Any
    send_time: float


class SenderMessageLog:
    """Logs every application send; identifies and replays lost messages."""

    def __init__(self, system: "MobileSystem") -> None:
        self.system = system
        self._log: Dict[int, LoggedMessage] = {}
        self.replayed: List[LoggedMessage] = []
        system.add_send_hook(self._on_send)

    def _on_send(self, process, message) -> None:
        self._log[message.msg_id] = LoggedMessage(
            msg_id=message.msg_id,
            src=process.pid,
            dst=message.dst_pid,
            payload=message.payload,
            send_time=self.system.sim.now,
        )

    def __len__(self) -> int:
        return len(self._log)

    # ------------------------------------------------------------------
    def lost_messages(
        self, line: Dict[int, CheckpointRecord]
    ) -> List[LoggedMessage]:
        """Messages in transit across ``line``: send recorded in the
        sender's checkpoint, receive not recorded in the receiver's."""
        trace = self.system.sim.trace
        positions = checkpoint_positions(trace)
        cut = {
            pid: positions[rec.ckpt_id]
            for pid, rec in line.items()
            if rec.ckpt_id in positions
        }
        send_pos: Dict[int, int] = {}
        recv_pos: Dict[int, int] = {}
        for index, record in enumerate(trace):
            if record.kind == "comp_send":
                send_pos[record["msg_id"]] = index
            elif record.kind == "comp_recv":
                recv_pos[record["msg_id"]] = index
        lost: List[LoggedMessage] = []
        for msg_id, entry in self._log.items():
            sent_at = send_pos.get(msg_id)
            if sent_at is None or entry.src not in cut or entry.dst not in cut:
                continue
            if sent_at >= cut[entry.src]:
                continue  # send not in the line: rolled back, not lost
            received_at = recv_pos.get(msg_id)
            if received_at is not None and received_at < cut[entry.dst]:
                continue  # receive already in the line
            lost.append(entry)
        lost.sort(key=lambda e: e.msg_id)
        return lost

    def replay(self, line: Dict[int, CheckpointRecord]) -> List[LoggedMessage]:
        """Redeliver every lost message's payload to its destination.

        Replay goes through the application-delivery hook (the payload
        reaches the app exactly as the original would have) and is
        traced as ``replayed``.
        """
        lost = self.lost_messages(line)
        for entry in lost:
            process = self.system.processes[entry.dst]
            process.app_state["messages_received"] += 1
            process.app_state["steps"] = process.app_state.get("steps", 0) + 1
            self.system.sim.trace.record(
                self.system.sim.now,
                "replayed",
                msg_id=entry.msg_id,
                src=entry.src,
                dst=entry.dst,
            )
            self.replayed.append(entry)
        return lost

    def prune(self, line: Dict[int, CheckpointRecord]) -> int:
        """Drop entries whose send predates the sender's line checkpoint
        and whose receive is inside the receiver's; returns count."""
        trace = self.system.sim.trace
        positions = checkpoint_positions(trace)
        cut = {
            pid: positions[rec.ckpt_id]
            for pid, rec in line.items()
            if rec.ckpt_id in positions
        }
        recv_pos: Dict[int, int] = {}
        for index, record in enumerate(trace):
            if record.kind == "comp_recv":
                recv_pos[record["msg_id"]] = index
        droppable = [
            msg_id
            for msg_id, entry in self._log.items()
            if entry.dst in cut
            and recv_pos.get(msg_id) is not None
            and recv_pos[msg_id] < cut[entry.dst]
        ]
        for msg_id in droppable:
            del self._log[msg_id]
        return len(droppable)
