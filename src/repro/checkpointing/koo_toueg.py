"""The Koo-Toueg blocking, min-process checkpointing baseline [19].

Two-phase tree protocol: the initiator takes a tentative checkpoint and
sends requests along its dependency edges; each process that inherits a
request *blocks its underlying computation*, takes a tentative
checkpoint, and recursively requests its own dependencies. Replies flow
back up the tree; the initiator then propagates commit (or abort, if any
process was unwilling or failed) back down. Processes stay blocked from
their tentative checkpoint until the decision arrives — the blocking
time the paper's Table 1 charges as ``N_min * T_ch``.

Faithful properties reproduced here:

* min-process: the same "dependency fresh since your last checkpoint"
  test as the mutable algorithm (request carries the requester's view of
  the target's csn);
* no MR-style suppression: a process sends requests to *all* its
  dependencies, so the message cost is ``3 * N_min * N_dep * C_air``
  (request + reply + commit per tree edge, with duplicate requests
  answered trivially);
* blocking: computation messages are neither sent nor consumed between
  the tentative checkpoint and the decision (the runtime defers them);
* any process may refuse (``willing`` hook), aborting the whole
  checkpointing — the behaviour Kim-Park later improved.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.state import BitVector, IntVector, true_indices
from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class KooTouegProcess(ProtocolProcess):
    """Per-process state machine of the Koo-Toueg protocol."""

    def __init__(self, env: ProcessEnv, protocol: "KooTouegProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        n = self.n
        self.r = BitVector(n)
        self.csn = IntVector(n)
        self.old_csn = 0
        self.sent = False
        #: the initiation currently participated in (None when idle)
        self.current: Optional[Trigger] = None
        self.parent: Optional[int] = None
        self._tentative: Optional[CheckpointRecord] = None
        self._prev_context: Optional[tuple] = None
        self._awaiting: Set[int] = set()
        self._own_save_done = False
        self._replied = False
        self._children: List[int] = []
        self._is_initiator = False
        # Guards _maybe_finish until requests have been issued, so a
        # synchronously completing stable save cannot commit early.
        self._setup_done = False

    # ------------------------------------------------------------------
    def on_send_computation(self, message: ComputationMessage) -> None:
        message.pb = (self.csn[self.pid], None)
        self.sent = True

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        # Blocking protocol: the runtime has already deferred this
        # delivery if we are blocked, so here we simply account the
        # dependency and deliver.
        j = message.src_pid
        recv_csn, _ = message.protocol_tags()
        if recv_csn > self.csn[j]:
            self.csn[j] = recv_csn
        self.r[j] = True
        deliver()

    # ------------------------------------------------------------------
    def initiate(self) -> bool:
        if self.current is not None:
            return False
        if not self.protocol.willing(self.pid):
            return False
        self.csn[self.pid] += 1
        trigger = Trigger(self.pid, self.csn[self.pid])
        self.current = trigger
        self.parent = None
        self._is_initiator = True
        self._setup_done = False
        self.env.trace("initiation", pid=self.pid, trigger=trigger)
        self._take_tentative(trigger)
        self._request_children(trigger)
        self._setup_done = True
        self._maybe_finish()
        return True

    # ------------------------------------------------------------------
    def _take_tentative(self, trigger: Trigger) -> None:
        self.env.block_computation()
        record = self.make_checkpoint(
            self.csn[self.pid], CheckpointKind.TENTATIVE, trigger
        )
        self._prev_context = (self.old_csn, self.r.copy(), self.sent)
        self._tentative = record
        self.old_csn = self.csn[self.pid]
        self._own_save_done = False
        self._replied = False
        self.env.trace(
            "tentative", pid=self.pid, trigger=trigger, csn=record.csn, ckpt_id=record.ckpt_id
        )
        self.env.transfer_to_stable(record, self._on_saved)

    def _on_saved(self) -> None:
        self._own_save_done = True
        self._maybe_finish()

    def _request_children(self, trigger: Trigger) -> None:
        self._children = [k for k in true_indices(self.r) if k != self.pid]
        self._awaiting = set(self._children)
        for k in self._children:
            self.env.send_system(
                k,
                "request",
                {
                    "trigger": trigger,
                    "req_csn": self.csn[k],
                    "recv_csn": self.csn[self.pid],
                    "from_pid": self.pid,
                },
            )
        # The dependency set is consumed by this checkpoint.
        self.sent = False
        self.r = BitVector(self.n)

    # ------------------------------------------------------------------
    def _on_request(self, message: SystemMessage) -> None:
        fields = message.fields
        trigger: Trigger = fields["trigger"]
        from_pid: int = fields["from_pid"]
        self.csn[from_pid] = max(self.csn[from_pid], fields["recv_csn"])
        if self.current == trigger:
            # Duplicate request from another parent: answer immediately.
            self.env.send_system(
                from_pid, "reply", {"trigger": trigger, "ok": True, "from_pid": self.pid}
            )
            return
        if self.current is not None:
            # Concurrent initiation: refuse, aborting the other tree
            # (Koo-Toueg's simple concurrency rule).
            self.env.send_system(
                from_pid, "reply", {"trigger": trigger, "ok": False, "from_pid": self.pid}
            )
            return
        if self.old_csn > fields["req_csn"]:
            # Dependency already recorded in our stable checkpoint.
            self.env.send_system(
                from_pid, "reply", {"trigger": trigger, "ok": True, "from_pid": self.pid}
            )
            return
        if not self.protocol.willing(self.pid):
            self.env.send_system(
                from_pid, "reply", {"trigger": trigger, "ok": False, "from_pid": self.pid}
            )
            return
        self.current = trigger
        self.parent = from_pid
        self._is_initiator = False
        self._setup_done = False
        self.csn[self.pid] += 1
        self._take_tentative(trigger)
        self._request_children(trigger)
        self._setup_done = True
        self._maybe_finish()

    def _on_reply(self, message: SystemMessage) -> None:
        fields = message.fields
        if fields["trigger"] != self.current:
            return  # stale reply from an aborted initiation
        child = fields["from_pid"]
        self._awaiting.discard(child)
        if not fields["ok"]:
            if self._is_initiator:
                self._decide(False)
            elif not self._replied:
                # Bubble the refusal up; the abort will come back down
                # through the tree and clean up our subtree.
                self._replied = True
                assert self.parent is not None
                self.env.send_system(
                    self.parent,
                    "reply",
                    {"trigger": self.current, "ok": False, "from_pid": self.pid},
                )
            return
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.current is None or self._replied or not self._setup_done:
            return
        if self._awaiting or not self._own_save_done:
            return
        if self._is_initiator:
            self._decide(True)
        else:
            self._replied = True
            assert self.parent is not None
            self.env.send_system(
                self.parent,
                "reply",
                {"trigger": self.current, "ok": True, "from_pid": self.pid},
            )

    # ------------------------------------------------------------------
    def abort_initiation(self) -> None:
        """Initiator-side abort (§3.6: a participant failed)."""
        if not self._is_initiator or self.current is None:
            raise ProtocolError(f"process {self.pid} is not initiating")
        self._decide(False)

    @property
    def initiating(self) -> Optional[Trigger]:
        """The trigger this process is currently coordinating, if any
        (mirrors the mutable protocol's attribute for the injector)."""
        return self.current if self._is_initiator else None

    def _decide(self, commit: bool) -> None:
        """Initiator propagates the decision down the tree."""
        trigger = self.current
        assert trigger is not None and self._is_initiator
        self.env.trace("commit" if commit else "abort", trigger=trigger)
        self._propagate_decision(trigger, commit)
        self._apply_decision(trigger, commit)
        if commit:
            self.protocol.notify_commit(trigger)
        else:
            self.protocol.notify_abort(trigger)

    def _propagate_decision(self, trigger: Trigger, commit: bool) -> None:
        subkind = "commit" if commit else "abort"
        for k in self._children:
            self.env.send_system(k, subkind, {"trigger": trigger})

    def _on_decision(self, message: SystemMessage, commit: bool) -> None:
        trigger = message.fields["trigger"]
        if trigger != self.current:
            return
        self._propagate_decision(trigger, commit)
        self._apply_decision(trigger, commit)

    def _apply_decision(self, trigger: Trigger, commit: bool) -> None:
        record = self._tentative
        if record is not None:
            if commit:
                self.env.make_permanent(record)
                self.env.trace(
                    "permanent", pid=self.pid, trigger=trigger, ckpt_id=record.ckpt_id
                )
            else:
                assert self._prev_context is not None
                self.old_csn, prev_r, prev_sent = self._prev_context
                self.r.or_with(prev_r)
                self.sent = self.sent or prev_sent
                self.env.discard_stable(record)
                self.env.trace(
                    "tentative_discarded", pid=self.pid, trigger=trigger, ckpt_id=record.ckpt_id
                )
        self._tentative = None
        self._prev_context = None
        self.current = None
        self.parent = None
        self._children = []
        self._awaiting = set()
        self._is_initiator = False
        self.env.unblock_computation()

    # ------------------------------------------------------------------
    def on_system_message(self, message: SystemMessage) -> None:
        if message.subkind == "request":
            self._on_request(message)
        elif message.subkind == "reply":
            self._on_reply(message)
        elif message.subkind == "commit":
            self._on_decision(message, True)
        elif message.subkind == "abort":
            self._on_decision(message, False)
        else:
            raise ProtocolError(f"unknown subkind {message.subkind!r}")


class KooTouegProtocol(CheckpointProtocol):
    """System-wide factory for the Koo-Toueg baseline.

    ``willing`` lets tests model processes that refuse to checkpoint
    (Koo-Toueg aborts the whole coordination in that case).
    """

    name = "koo-toueg"
    blocking = True
    distributed = True

    def __init__(self, willing: Optional[Callable[[int], bool]] = None) -> None:
        super().__init__()
        self._willing = willing

    def willing(self, pid: int) -> bool:
        """Whether ``pid`` agrees to take a checkpoint right now."""
        return True if self._willing is None else self._willing(pid)

    def _build_process(self, env: ProcessEnv) -> KooTouegProcess:
        return KooTouegProcess(env, self)
