"""Failure injection and failure handling during checkpointing (§3.6).

Unexpected MH failures during a checkpointing coordination are handled
by either of the two policies the paper discusses:

* **Abort** (Koo-Toueg style, the paper's "simplest way"): the process
  that detects the failure notifies the initiator, which broadcasts
  ``abort``; every participant discards its tentative/mutable
  checkpoints and restores its dependency bookkeeping.
* **Partial commit** (Kim-Park [18]): processes whose checkpoint does
  not depend on the failed process commit locally; only the subtree
  affected by the failure aborts. Implemented here as a commit filter
  the initiator applies: it broadcasts a commit carrying the set of
  pids allowed to commit; others behave as if aborted.

:class:`FailureInjector` kills an MH at a chosen time: the process
stops (its handler drops messages), volatile state (mutable
checkpoints) is wiped, and — if a checkpointing is in progress — the
configured policy runs. Recovery afterwards is
:class:`~repro.checkpointing.recovery.RecoveryManager`'s job.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional, Set

from repro.checkpointing.mutable import MutableCheckpointProcess
from repro.checkpointing.types import Trigger
from repro.errors import ProtocolError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


class FailurePolicy(enum.Enum):
    """How a failure during checkpointing is resolved."""

    ABORT = "abort"
    PARTIAL_COMMIT = "partial_commit"


class FailureInjector:
    """Kills mobile hosts and drives the §3.6 failure protocol."""

    def __init__(
        self,
        system: "MobileSystem",
        policy: FailurePolicy = FailurePolicy.ABORT,
    ) -> None:
        self.system = system
        self.policy = policy
        self.failed_pids: Set[int] = set()

    def fail_process(self, pid: int) -> None:
        """Crash ``pid``'s MH now: volatile state lost, messages dropped."""
        if pid in self.failed_pids:
            return
        self.failed_pids.add(pid)
        process = self.system.processes[pid]
        process.local_store.wipe()
        host = process.host
        # Fail-stop: the host silently drops everything from now on.
        host._process_handlers[pid] = self._drop
        self.system.sim.trace.record(self.system.sim.now, "failure", pid=pid)
        self._handle_in_progress_checkpointing(pid)

    def _drop(self, message: Message) -> None:
        self.system.metrics.counter("messages_to_failed").inc()

    # ------------------------------------------------------------------
    def _handle_in_progress_checkpointing(self, failed_pid: int) -> None:
        """§3.6: resolve an active coordination touched by the failure."""
        initiator = self._active_initiator()
        if initiator is None:
            return
        if initiator.pid == failed_pid:
            # The coordinator itself failed before commit/abort: on
            # restart it would broadcast abort; we model the broadcast
            # here (restart is the recovery layer's concern).
            self._force_abort(initiator)
            return
        if self.policy is FailurePolicy.ABORT or not isinstance(
            initiator, MutableCheckpointProcess
        ):
            # Kim-Park partial commit needs the mutable protocol's
            # per-participant contexts; other protocols fall back to
            # the whole-checkpointing abort (exactly what [19] does).
            self._force_abort(initiator)
        else:
            self._partial_commit(initiator, failed_pid)

    def _active_initiator(self):
        """Any protocol process currently coordinating an initiation.

        Works for every protocol that exposes ``initiating`` and
        ``abort_initiation`` (the mutable algorithm and Koo-Toueg).
        """
        for process in self.system.protocol.processes.values():
            if getattr(process, "initiating", None) is not None and hasattr(
                process, "abort_initiation"
            ):
                return process
        return None

    def _force_abort(self, initiator) -> None:
        initiator.abort_initiation()

    def _partial_commit(
        self, initiator: MutableCheckpointProcess, failed_pid: int
    ) -> None:
        """Kim-Park: commit participants that do not depend on the failed
        process; the failed process and everyone depending on it abort.

        "Depends on" uses each participant's dependency vector as of its
        tentative checkpoint (the ``prev_r`` saved in its tentative
        context): if the participant received from the failed process in
        the interval its tentative records, committing it could orphan a
        message whose send died with the failed host's tentative.

        The injector plays the role of the failure detector: it reads
        participant state omnisciently, which a real deployment would
        learn through the notification messages of [18].
        """
        trigger = initiator.initiating
        assert trigger is not None
        participants = {}
        for pid, proc in self.system.protocol.processes.items():
            if not isinstance(proc, MutableCheckpointProcess):
                continue
            context = proc.pending_tentative.get(trigger)
            if context is not None:
                participants[pid] = context
        # Transitive closure: if A depends on the failed process, A's
        # tentative aborts, which un-records A's recent sends — so
        # anyone whose tentative recorded a receive from A must abort
        # too, or that receive becomes an orphan. Iterate to fixpoint.
        excluded_set: Set[int] = {failed_pid} | set(self.failed_pids)
        changed = True
        while changed:
            changed = False
            for pid, context in participants.items():
                if pid in excluded_set:
                    continue
                if any(
                    q < len(context.prev_r) and context.prev_r[q]
                    for q in excluded_set
                ):
                    excluded_set.add(pid)
                    changed = True
        committed = sorted(set(participants) - excluded_set)
        excluded = sorted(
            excluded_set & (set(participants) | {failed_pid})
        )
        initiator.initiating = None
        initiator.weight = initiator.weight * 0  # zero, exact
        if initiator.protocol.ledger is not None:
            initiator.protocol.ledger.end()
        self.system.sim.trace.record(
            self.system.sim.now,
            "partial_commit",
            trigger=trigger,
            committed=tuple(sorted(committed)),
            excluded=tuple(sorted(excluded)),
            failed=failed_pid,
        )
        exclude = tuple(sorted(excluded))
        initiator.env.broadcast_system(
            "commit", {"trigger": trigger, "exclude": exclude}
        )
        if initiator.pid in exclude:
            initiator._apply_abort(trigger)
        else:
            initiator._apply_commit(trigger)
        initiator.protocol.notify_commit(trigger)

    # ------------------------------------------------------------------
    def restart_process(self, pid: int) -> None:
        """Bring a failed process back (its state must then be rolled
        back by the recovery manager before it resumes)."""
        if pid not in self.failed_pids:
            raise ProtocolError(f"pid {pid} is not failed")
        self.failed_pids.discard(pid)
        process = self.system.processes[pid]
        process.host._process_handlers[pid] = process.on_message
        self.system.sim.trace.record(self.system.sim.now, "restart", pid=pid)
