"""The Elnozahy-Johnson-Zwaenepoel nonblocking baseline [13].

A centralized, all-process algorithm: a distinguished coordinator
periodically broadcasts a checkpoint request carrying a global
checkpoint sequence number (csn). Every process takes a checkpoint on
receiving the request — or earlier, if a computation message stamped
with the new csn arrives first (the csn piggyback is what makes the
algorithm nonblocking and orphan-free). When the coordinator has
collected acknowledgements from all processes it broadcasts commit.

Properties reproduced for the Table 1 comparison:

* all N processes take a stable checkpoint per initiation;
* message cost 2 * C_broad + N * C_air (request broadcast, N replies,
  commit broadcast);
* blocking time 0;
* centralized: only the coordinator may initiate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from functools import partial

from repro.checkpointing.protocol import (
    CheckpointProtocol,
    ProcessEnv,
    ProtocolProcess,
    noop,
)
from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class ElnozahyProcess(ProtocolProcess):
    """Per-process state machine of the EJZ algorithm."""

    def __init__(self, env: ProcessEnv, protocol: "ElnozahyProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        #: the global checkpoint sequence number this process has reached
        self.csn = 0
        self._pending: Dict[int, CheckpointRecord] = {}
        # coordinator-side state
        self._acks: Set[int] = set()
        self._active: Optional[Trigger] = None
        self._own_save_done = False

    @property
    def is_coordinator(self) -> bool:
        return self.pid == self.protocol.coordinator

    # ------------------------------------------------------------------
    def on_send_computation(self, message: ComputationMessage) -> None:
        message.pb = (self.csn, None)

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        recv_csn, _ = message.protocol_tags()
        if recv_csn > self.csn:
            # The sender checkpointed before sending: checkpoint before
            # processing, so the message cannot become an orphan.
            self._advance_to(recv_csn, notify=True)
        deliver()

    # ------------------------------------------------------------------
    def initiate(self) -> bool:
        if not self.is_coordinator or self._active is not None:
            return False
        trigger = Trigger(self.pid, self.csn + 1)
        self._active = trigger
        self._acks = set()
        self._own_save_done = False
        self.env.trace("initiation", pid=self.pid, trigger=trigger)
        self._advance_to(self.csn + 1, notify=False)
        self.env.broadcast_system("request", {"csn": self.csn, "trigger": trigger})
        return True

    def _advance_to(self, csn: int, notify: bool) -> None:
        """Take the checkpoint for sequence number ``csn`` if not taken."""
        if csn <= self.csn:
            return
        if csn != self.csn + 1:
            raise ProtocolError(
                f"p{self.pid} asked to jump csn {self.csn} -> {csn}"
            )
        self.csn = csn
        trigger = Trigger(self.protocol.coordinator, csn)
        record = self.make_checkpoint(csn, CheckpointKind.TENTATIVE, trigger)
        self._pending[csn] = record
        self.env.trace(
            "tentative", pid=self.pid, trigger=trigger, csn=csn, ckpt_id=record.ckpt_id
        )
        if self.pid == self.protocol.coordinator:
            self.env.transfer_to_stable(record, self._on_coordinator_saved)
        elif notify:
            self.env.transfer_to_stable(record, partial(self._reply_saved, csn))
        else:
            self.env.transfer_to_stable(record, noop)

    def _reply_saved(self, csn: int) -> None:
        """Tell the coordinator our csn-th checkpoint reached stable store."""
        self.env.send_system(
            self.protocol.coordinator, "reply", {"csn": csn, "from_pid": self.pid}
        )

    def _on_coordinator_saved(self) -> None:
        self._own_save_done = True
        self._maybe_commit()

    # ------------------------------------------------------------------
    def _on_request(self, message: SystemMessage) -> None:
        csn = message.fields["csn"]
        if csn > self.csn:
            self._advance_to(csn, notify=True)
        else:
            # Already checkpointed (a stamped computation message got
            # here first); the coordinator still needs our ack.
            self.env.send_system(
                self.protocol.coordinator, "reply", {"csn": csn, "from_pid": self.pid}
            )

    def _on_reply(self, message: SystemMessage) -> None:
        if self._active is None or message.fields["csn"] != self._active.inum:
            return
        self._acks.add(message.fields["from_pid"])
        self._maybe_commit()

    def _maybe_commit(self) -> None:
        if self._active is None or not self._own_save_done:
            return
        if len(self._acks) < self.n - 1:
            return
        trigger = self._active
        self._active = None
        self.env.trace("commit", trigger=trigger)
        self.env.broadcast_system("commit", {"csn": trigger.inum, "trigger": trigger})
        self._apply_commit(trigger.inum, trigger)
        self.protocol.notify_commit(trigger)

    def _on_commit(self, message: SystemMessage) -> None:
        self._apply_commit(message.fields["csn"], message.fields["trigger"])

    def _apply_commit(self, csn: int, trigger: Trigger) -> None:
        record = self._pending.pop(csn, None)
        if record is None:
            return
        self.env.make_permanent(record)
        self.env.trace("permanent", pid=self.pid, trigger=trigger, ckpt_id=record.ckpt_id)

    # ------------------------------------------------------------------
    def on_system_message(self, message: SystemMessage) -> None:
        handler = {
            "request": self._on_request,
            "reply": self._on_reply,
            "commit": self._on_commit,
        }.get(message.subkind)
        if handler is None:
            raise ProtocolError(f"unknown subkind {message.subkind!r}")
        handler(message)


class ElnozahyProtocol(CheckpointProtocol):
    """System-wide factory for the EJZ baseline.

    ``coordinator`` is the only process allowed to initiate (pid 0 by
    default) — the centralization the paper's Table 1 notes as a
    drawback.
    """

    name = "elnozahy"
    blocking = False
    distributed = False

    def __init__(self, coordinator: int = 0) -> None:
        super().__init__()
        self.coordinator = coordinator

    def _build_process(self, env: ProcessEnv) -> ElnozahyProcess:
        return ElnozahyProcess(env, self)
