"""Concurrent checkpoint initiations (paper §3.5).

The §3.3 algorithm is presented under the assumption that *at most one
checkpointing is in progress at a time*; §3.5 sketches two ways to lift
it: the simple Koo-Toueg rule (defer or refuse a second initiation) and
the Prakash-Singhal combination technique of [27].

This module provides:

* :class:`ConcurrencyPolicy` + :func:`make_runner` — build an
  :class:`~repro.core.runner.ExperimentRunner` with initiations either
  SERIALIZED (the paper's assumption, and the default everywhere in this
  reproduction) or UNRESTRICTED (initiations may overlap freely);
* :func:`concurrent_initiation_hazard` — an executable demonstration
  that the assumption is load-bearing: with UNRESTRICTED initiations,
  recovery lines assembled from the newest permanent checkpoints can
  contain orphan messages. This is the union-of-global-checkpoints
  problem [27] solves; reproducing the hazard (rather than hiding it)
  documents exactly where the paper's guarantees stop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.analysis.consistency import (
    check_vector_clocks,
    find_orphans,
    latest_permanent_line,
)
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.base import Workload
from repro.workload.point_to_point import PointToPointWorkload


class ConcurrencyPolicy(enum.Enum):
    """How simultaneous initiation attempts are handled."""

    #: defer later initiations until the active one commits (paper §3.3)
    SERIALIZED = "serialized"
    #: let initiations overlap freely (unsafe; for the hazard demo)
    UNRESTRICTED = "unrestricted"


def make_runner(
    system: MobileSystem,
    workload: Workload,
    run_config: RunConfig,
    policy: ConcurrencyPolicy = ConcurrencyPolicy.SERIALIZED,
) -> ExperimentRunner:
    """An experiment runner configured for the given concurrency policy."""
    return ExperimentRunner(
        system,
        workload,
        run_config,
        serialize_initiations=(policy is ConcurrencyPolicy.SERIALIZED),
    )


@dataclass
class HazardReport:
    """Outcome of one hazard run."""

    seed: int
    policy: ConcurrencyPolicy
    orphan_count: int
    vector_clock_consistent: bool

    @property
    def consistent(self) -> bool:
        return self.orphan_count == 0 and self.vector_clock_consistent


def concurrent_initiation_hazard(
    seed: int,
    policy: ConcurrencyPolicy,
    n_processes: int = 16,
    checkpoint_interval: float = 60.0,
    mean_send_interval: float = 10.0,
    initiations: int = 10,
) -> HazardReport:
    """Run a dense-initiation workload and check the recovery line.

    With SERIALIZED initiations the line is always consistent (the
    paper's Theorem 1); with UNRESTRICTED it usually is not — the
    empirical counterpart of the §3.3 assumption.
    """
    config = SystemConfig(
        n_processes=n_processes,
        seed=seed,
        checkpoint_interval=checkpoint_interval,
    )
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval)
    )
    runner = make_runner(
        system,
        workload,
        RunConfig(max_initiations=initiations, warmup_initiations=1),
        policy,
    )
    runner.run(max_events=5_000_000)
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    orphans = find_orphans(system.sim.trace, line)
    return HazardReport(
        seed=seed,
        policy=policy,
        orphan_count=len(orphans),
        vector_clock_consistent=check_vector_clocks(line),
    )


def hazard_sweep(
    seeds: List[int], policy: ConcurrencyPolicy, **kwargs
) -> List[HazardReport]:
    """Run the hazard check over several seeds."""
    return [concurrent_initiation_hazard(seed, policy, **kwargs) for seed in seeds]
