"""Distributed rollback: recovery as a message protocol.

:class:`~repro.checkpointing.recovery.RecoveryManager` restores state
omnisciently — fine for analysis, but a deployed system coordinates
recovery with messages (the paper defers to [20], [24], [28]). This
module implements the standard coordinated-rollback protocol those
papers assume:

1. the recovery initiator (typically a restarted process's MSS)
   broadcasts ``rollback_request`` carrying a new *incarnation number*;
2. every process suspends its computation, restores its newest
   permanent checkpoint (which, under coordinated checkpointing, *is*
   the recovery line — no search needed), discards buffered activity,
   adopts the incarnation, and acknowledges;
3. when all acknowledgements are in, the initiator broadcasts
   ``resume``; computation restarts.

Messages from the rolled-back incarnation that are still in flight when
computation resumes are discarded by the incarnation check in the
process runtime — the classic ghost-message defence.

A rollback must not race an active checkpointing coordination: the
caller aborts it first (see :meth:`DistributedRecovery.recover`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.analysis.consistency import latest_permanent_line
from repro.errors import ProtocolError
from repro.net.message import SystemMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass
class RecoveryRound:
    """Bookkeeping for one in-flight recovery coordination."""

    incarnation: int
    initiator: int
    started_at: float
    acked: Set[int] = field(default_factory=set)
    resumed_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.resumed_at is not None

    @property
    def duration(self) -> Optional[float]:
        if self.resumed_at is None:
            return None
        return self.resumed_at - self.started_at


class DistributedRecovery:
    """Coordinated rollback over protocol messages."""

    def __init__(self, system: "MobileSystem") -> None:
        self.system = system
        self.rounds: List[RecoveryRound] = []
        self._active: Optional[RecoveryRound] = None
        for process in system.processes.values():
            # partials (not closures) so the handler table — which lives
            # for the run inside each process — survives snapshot pickling
            process.register_system_handler(
                "rollback_request", partial(self._on_rollback_request, process)
            )
            process.register_system_handler(
                "rollback_ack", self._on_ack
            )
            process.register_system_handler(
                "resume", partial(self._on_resume, process)
            )

    @property
    def active(self) -> bool:
        """Whether a recovery round is currently in progress."""
        return self._active is not None

    # ------------------------------------------------------------------
    def recover(self, initiator_pid: int) -> RecoveryRound:
        """Start a coordinated rollback from ``initiator_pid``.

        An active checkpointing coordination is aborted first (§3.6's
        rule: a failure during checkpointing aborts it; recovery then
        proceeds from the last *committed* line).
        """
        if self._active is not None:
            raise ProtocolError("a recovery round is already in progress")
        for process in self.system.protocol.processes.values():
            if getattr(process, "initiating", None) is not None and hasattr(
                process, "abort_initiation"
            ):
                process.abort_initiation()
        incarnation = max(p.incarnation for p in self.system.processes.values()) + 1
        round_ = RecoveryRound(
            incarnation=incarnation,
            initiator=initiator_pid,
            started_at=self.system.sim.now,
        )
        self._active = round_
        self.rounds.append(round_)
        self.system.sim.trace.record(
            self.system.sim.now,
            "recovery_started",
            initiator=initiator_pid,
            incarnation=incarnation,
        )
        # The initiator rolls itself back immediately and "broadcasts".
        self._roll_back_locally(self.system.processes[initiator_pid], incarnation)
        round_.acked.add(initiator_pid)
        for pid in self.system.processes:
            if pid != initiator_pid:
                self._send(initiator_pid, pid, "rollback_request",
                           {"incarnation": incarnation, "initiator": initiator_pid})
        self._maybe_resume()
        return round_

    # ------------------------------------------------------------------
    def _send(self, src: int, dst: int, subkind: str, fields: Dict) -> None:
        message = SystemMessage(
            src_pid=src,
            dst_pid=dst,
            subkind=subkind,
            fields=fields,
            msg_id=next(self.system.message_ids),
        )
        self.system.metrics.counter("system_messages").inc()
        self.system.metrics.counter(f"system_messages_{subkind}").inc()
        self.system.network.send_from_process(src, message)

    def _roll_back_locally(self, process, incarnation: int) -> None:
        line = latest_permanent_line(
            self.system.all_stable_storages(), [process.pid]
        )
        record = line[process.pid]
        process.block()
        process.discard_deferred()
        process.restore_state(record.state, record.vector_clock)
        process.local_store.wipe()
        process.incarnation = incarnation
        self.system.sim.trace.record(
            self.system.sim.now,
            "rolled_back",
            pid=process.pid,
            ckpt_id=record.ckpt_id,
            incarnation=incarnation,
        )

    def _on_rollback_request(self, process, message: SystemMessage) -> None:
        fields = message.fields
        if fields["incarnation"] <= process.incarnation:
            return  # duplicate / stale request
        self._roll_back_locally(process, fields["incarnation"])
        self._send(
            process.pid,
            fields["initiator"],
            "rollback_ack",
            {"incarnation": fields["incarnation"], "from_pid": process.pid},
        )

    def _on_ack(self, message: SystemMessage) -> None:
        round_ = self._active
        if round_ is None or message.fields["incarnation"] != round_.incarnation:
            return
        round_.acked.add(message.fields["from_pid"])
        self._maybe_resume()

    def _maybe_resume(self) -> None:
        round_ = self._active
        if round_ is None or len(round_.acked) < len(self.system.processes):
            return
        round_.resumed_at = self.system.sim.now
        self._active = None
        for pid in self.system.processes:
            if pid != round_.initiator:
                self._send(round_.initiator, pid, "resume",
                           {"incarnation": round_.incarnation})
        self.system.processes[round_.initiator].unblock()
        self.system.sim.trace.record(
            self.system.sim.now,
            "recovery_complete",
            incarnation=round_.incarnation,
            duration=round_.duration,
        )

    def _on_resume(self, process, message: SystemMessage) -> None:
        if message.fields["incarnation"] == process.incarnation:
            process.unblock()
