"""The Chandy-Lamport distributed snapshot [9] as a checkpointing baseline.

The earliest nonblocking algorithm: markers flood every channel, every
process records its state on the first marker, and each process records
the state of each incoming channel (messages that arrived after its own
snapshot but before that channel's marker). Message complexity is
O(N²) markers over the fully connected process graph, and all N
processes checkpoint — the two costs §6 contrasts with the paper's
algorithm.

Requires FIFO channels, which the network substrate guarantees per
(src, dst) pair.

For integration with the commit/recovery machinery, a coordinator wrapup
is added (as real deployments of C-L do): each process reports
completion to the initiator, which broadcasts commit; this does not
change the snapshot algorithm itself.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class ChandyLamportProcess(ProtocolProcess):
    """Per-process state machine of the Chandy-Lamport snapshot."""

    def __init__(self, env: ProcessEnv, protocol: "ChandyLamportProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        #: snapshot generation this process has joined (0 = none yet)
        self.generation = 0
        self._recording: Set[int] = set()
        self._channel_state: Dict[int, List[int]] = {}
        self._record: Optional[CheckpointRecord] = None
        self._trigger: Optional[Trigger] = None
        self._own_save_done = False
        self._reported = False
        # initiator-side
        self._active: Optional[Trigger] = None
        self._done_from: Set[int] = set()

    # ------------------------------------------------------------------
    def on_send_computation(self, message: ComputationMessage) -> None:
        message.piggyback["cl_gen"] = self.generation

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        src = message.src_pid
        if src in self._recording:
            # Part of the channel state: arrived after our snapshot,
            # before the marker on this channel.
            self._channel_state.setdefault(src, []).append(message.msg_id)
        deliver()

    # ------------------------------------------------------------------
    def initiate(self) -> bool:
        if self._active is not None or self._trigger is not None:
            return False
        trigger = Trigger(self.pid, self.generation + 1)
        self._active = trigger
        self._done_from = set()
        self.env.trace("initiation", pid=self.pid, trigger=trigger)
        self._take_snapshot(trigger)
        return True

    def _take_snapshot(self, trigger: Trigger) -> None:
        """Record local state and flood markers (the C-L core step)."""
        self.generation = trigger.inum
        self._trigger = trigger
        self._own_save_done = False
        self._reported = False
        record = self.make_checkpoint(
            self.generation, CheckpointKind.TENTATIVE, trigger
        )
        self._record = record
        self._recording = {k for k in range(self.n) if k != self.pid}
        self._channel_state = {}
        self.env.trace(
            "tentative",
            pid=self.pid,
            trigger=trigger,
            csn=self.generation,
            ckpt_id=record.ckpt_id,
        )
        for k in range(self.n):
            if k != self.pid:
                self.env.send_system(k, "marker", {"trigger": trigger})
        self.env.transfer_to_stable(record, self._on_saved)

    def _on_saved(self) -> None:
        self._own_save_done = True
        self._maybe_report()

    # ------------------------------------------------------------------
    def _on_marker(self, message: SystemMessage) -> None:
        trigger: Trigger = message.fields["trigger"]
        src = message.src_pid
        if self._trigger != trigger and trigger.inum > self.generation:
            # First marker of this snapshot: record state, flood markers.
            self._take_snapshot(trigger)
        if self._trigger == trigger:
            # Channel (src -> me) state is now complete.
            self._recording.discard(src)
            self._maybe_report()

    def _maybe_report(self) -> None:
        if (
            self._trigger is None
            or self._recording
            or not self._own_save_done
            or self._reported
        ):
            return
        self._reported = True
        trigger = self._trigger
        assert self._record is not None
        # Channel states become part of the checkpoint.
        self._record.state["channel_state"] = {
            src: list(ids) for src, ids in self._channel_state.items()
        }
        if trigger.pid == self.pid:
            self._snapshot_done(self.pid)
        else:
            self.env.send_system(
                trigger.pid, "done", {"trigger": trigger, "from_pid": self.pid}
            )

    def _on_done(self, message: SystemMessage) -> None:
        if self._active is None or message.fields["trigger"] != self._active:
            return
        self._snapshot_done(message.fields["from_pid"])

    def _snapshot_done(self, pid: int) -> None:
        self._done_from.add(pid)
        if self._active is not None and len(self._done_from) == self.n:
            trigger = self._active
            self._active = None
            self.env.trace("commit", trigger=trigger)
            self.env.broadcast_system("commit", {"trigger": trigger})
            self._apply_commit(trigger)
            self.protocol.notify_commit(trigger)

    def _on_commit(self, message: SystemMessage) -> None:
        self._apply_commit(message.fields["trigger"])

    def _apply_commit(self, trigger: Trigger) -> None:
        if self._trigger != trigger or self._record is None:
            return
        self.env.make_permanent(self._record)
        self.env.trace(
            "permanent", pid=self.pid, trigger=trigger, ckpt_id=self._record.ckpt_id
        )
        self._record = None
        self._trigger = None
        self._recording = set()
        self._channel_state = {}

    # ------------------------------------------------------------------
    def on_system_message(self, message: SystemMessage) -> None:
        handler = {
            "marker": self._on_marker,
            "done": self._on_done,
            "commit": self._on_commit,
        }.get(message.subkind)
        if handler is None:
            raise ProtocolError(f"unknown subkind {message.subkind!r}")
        handler(message)


class ChandyLamportProtocol(CheckpointProtocol):
    """System-wide factory for the Chandy-Lamport baseline."""

    name = "chandy-lamport"
    blocking = False
    distributed = True

    def _build_process(self, env: ProcessEnv) -> ChandyLamportProcess:
        return ChandyLamportProcess(env, self)
