"""Core datatypes shared by all checkpointing protocols.

These mirror the paper's notation (§3.2): the *trigger* tuple
``(pid, inum)``, checkpoint sequence numbers (csn), the dependency bit
vector R, and the MR structure attached to checkpoint requests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, List, NamedTuple, Optional, Tuple


class Trigger(NamedTuple):
    """Identifies one checkpointing initiation (paper §3.2).

    ``pid`` is the initiator; ``inum`` is the initiator's csn at the
    checkpoint it took when initiating.
    """

    pid: int
    inum: int


class CheckpointKind(enum.Enum):
    """Lifecycle classes of a checkpoint.

    MUTABLE lives on the MH (memory/local disk) and is either promoted to
    TENTATIVE (written to stable storage) or discarded. TENTATIVE becomes
    PERMANENT on commit or is discarded on abort. DISCONNECT is the local
    checkpoint an MH leaves with its MSS before disconnecting (§2.2).
    """

    MUTABLE = "mutable"
    TENTATIVE = "tentative"
    PERMANENT = "permanent"
    DISCONNECT = "disconnect"


_checkpoint_ids = count()


def reset_checkpoint_ids() -> None:
    """Restart the process-wide ckpt_id counter (new-system hygiene).

    Called when a :class:`~repro.core.system.MobileSystem` is built so
    two identical runs in one interpreter produce bit-identical traces
    (ids are only required to be unique within a run).
    """
    global _checkpoint_ids
    _checkpoint_ids = count()


def checkpoint_ids_state() -> int:
    """The next ckpt_id the counter will hand out (without consuming it).

    Snapshot capture records this so a restored run continues the id
    sequence exactly where the original left off — the counter is a
    module global, outside the pickled object graph.
    """
    # itertools.count exposes its next value via its pickle form
    return _checkpoint_ids.__reduce__()[1][0]


def restore_checkpoint_ids(next_id: int) -> None:
    """Reset the counter so the next ckpt_id handed out is ``next_id``."""
    global _checkpoint_ids
    _checkpoint_ids = count(next_id)


@dataclass
class CheckpointRecord:
    """One saved checkpoint of one process.

    Attributes
    ----------
    pid:
        The process whose state this is.
    csn:
        The checkpoint sequence number the process assigned to it.
    kind:
        Current lifecycle stage; mutated in place on promote/commit.
    time_taken:
        Simulated time at which the state was captured.
    state:
        Opaque application-state snapshot (whatever the application's
        ``capture_state`` returned); used by recovery.
    trigger:
        The initiation this checkpoint is associated with, or None for
        independent checkpoints (e.g. initial or disconnect checkpoints).
    vector_clock:
        Snapshot of the process's vector clock at capture time; consumed
        only by the verification layer, never by protocols.
    size_bytes:
        Amount of data that must travel to stable storage to make this
        checkpoint tentative (incremental size, 512 KB by default).
    """

    pid: int
    csn: int
    kind: CheckpointKind
    time_taken: float
    state: Dict[str, Any] = field(default_factory=dict)
    trigger: Optional[Trigger] = None
    vector_clock: Tuple[int, ...] = ()
    size_bytes: int = 512 * 1024
    ckpt_id: int = field(default_factory=lambda: next(_checkpoint_ids))

    @property
    def is_stable(self) -> bool:
        """Whether the checkpoint has reached stable storage."""
        return self.kind in (CheckpointKind.TENTATIVE, CheckpointKind.PERMANENT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Ckpt p{self.pid} csn={self.csn} {self.kind.value}"
            f" trig={self.trigger} t={self.time_taken:.3f}>"
        )


@dataclass
class MutableCheckpointRecord:
    """The CP record of §3.2: a mutable checkpoint plus saved context.

    When a process takes a mutable checkpoint it stashes its *current* R
    vector and ``sent`` flag here and resets them; if the mutable
    checkpoint is later discarded, R and sent are OR-ed back (commit
    handling in §3.3.4), and if it is promoted, the saved R drives the
    request propagation.
    """

    checkpoint: CheckpointRecord
    trigger: Trigger
    #: the R vector stashed at capture time (a BitVector at runtime;
    #: plain List[bool] sequences are accepted from hand-built fixtures)
    saved_r: Any
    saved_sent: bool


@dataclass(frozen=True)
class MREntry:
    """One slot of the MR structure piggybacked on checkpoint requests.

    ``csn`` is the highest request csn known to have been sent toward the
    process; ``r`` records whether any sender of the request depended on
    the process. Together they let a receiver skip re-requesting
    processes that have already been covered (§3.3.2).
    """

    csn: int = 0
    r: bool = False

    def merged_with(self, csn: int, r: bool) -> "MREntry":
        """Pointwise max/or merge used by ``prop_cp``."""
        return MREntry(max(self.csn, csn), self.r or r)


def fresh_mr(n: int):
    """An all-zero MR vector for an N-process system.

    Returns a sparse :class:`~repro.checkpointing.state.MRVector`:
    indexing behaves exactly like the historical dense
    ``[MREntry()] * n`` list, but construction and per-hop copies cost
    O(entries set) instead of O(N) — the piggyback that made requests
    O(N) at large populations.
    """
    from repro.checkpointing.state import MRVector

    return MRVector(n)
