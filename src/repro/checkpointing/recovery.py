"""Rollback recovery from committed checkpoints.

Coordinated checkpointing's payoff: after a failure, every process
rolls back to its most recent *permanent* checkpoint and the set of
those checkpoints — the recovery line — is guaranteed consistent, so
at most one checkpoint per process needs to be kept (§6's storage
argument).

:class:`RecoveryManager` implements the post-failure procedure against
the simulated system: assemble the recovery line from the MSSs' stable
storages, verify it (belt-and-braces, using the independent checkers),
restore every process's application state and vector clock, and report
how much computation was lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.checkpointing.types import CheckpointRecord
from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass
class RollbackReport:
    """What a rollback did.

    ``lost_messages`` counts application messages whose delivery is no
    longer reflected in any process state (received after the recovery
    line) — the computation to be re-executed after restart.
    """

    line: Dict[int, CheckpointRecord]
    rolled_back_pids: List[int]
    lost_messages: int
    recovery_time: float

    @property
    def line_times(self) -> Dict[int, float]:
        """When each restored checkpoint was taken."""
        return {pid: rec.time_taken for pid, rec in self.line.items()}


class RecoveryManager:
    """Performs rollback of a :class:`~repro.core.system.MobileSystem`."""

    def __init__(self, system: "MobileSystem") -> None:
        self.system = system

    def recovery_line(self) -> Dict[int, CheckpointRecord]:
        """The newest permanent checkpoint of every process."""
        return latest_permanent_line(
            self.system.all_stable_storages(), self.system.processes
        )

    def verify_line(self, line: Dict[int, CheckpointRecord]) -> None:
        """Independent consistency check of a candidate line."""
        assert_line_consistent(self.system.sim.trace, line)

    def rollback(self, verify: bool = True) -> RollbackReport:
        """Roll every process back to the current recovery line.

        Application state and vector clocks are restored from the
        checkpoint snapshots. In-flight computation messages are
        considered lost (the recovering system re-executes from the
        line; channel state is empty after a coordinated rollback).
        """
        line = self.recovery_line()
        if verify:
            self.verify_line(line)
        rolled_back: List[int] = []
        for pid, record in line.items():
            process = self.system.processes.get(pid)
            if process is None:
                raise ProtocolError(f"recovery line names unknown pid {pid}")
            process.restore_state(record.state, record.vector_clock)
            rolled_back.append(pid)
        lost = self._count_lost_messages(line)
        report = RollbackReport(
            line=line,
            rolled_back_pids=sorted(rolled_back),
            lost_messages=lost,
            recovery_time=self.system.sim.now,
        )
        self.system.sim.trace.record(
            self.system.sim.now,
            "rollback",
            pids=tuple(report.rolled_back_pids),
            lost_messages=lost,
        )
        return report

    def _count_lost_messages(self, line: Dict[int, CheckpointRecord]) -> int:
        """Deliveries after the recovery line, undone by the rollback."""
        from repro.analysis.consistency import checkpoint_positions

        positions = checkpoint_positions(self.system.sim.trace)
        cut = {
            pid: positions[rec.ckpt_id]
            for pid, rec in line.items()
            if rec.ckpt_id in positions
        }
        lost = 0
        for index, record in enumerate(self.system.sim.trace):
            if record.kind != "comp_recv":
                continue
            dst = record["dst"]
            if dst in cut and index > cut[dst]:
                lost += 1
        return lost
