"""Exact weights for Huang-style termination detection (paper §3.2, [16]).

The initiator starts with weight 1; every checkpoint request carries a
portion of the sender's weight and every reply returns the remainder to
the initiator, which concludes termination when its weight is back to 1
(Theorem 2 / Lemma 2).

Weights are ``fractions.Fraction`` rather than floats: repeated halving
produces dyadic rationals whose exponents quickly exceed what binary
floating point can sum exactly, and an inexact ``weight == 1`` test would
either deadlock or terminate early. With exact arithmetic Lemma 2's
invariant — the weights at the initiator, at other processes, and in
transit always sum to exactly 1 — is machine-checkable at any instant
(see :meth:`WeightLedger.total`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Union

from repro.errors import ProtocolError

WeightLike = Union[int, Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_weight(value: WeightLike) -> Fraction:
    """Coerce to an exact Fraction weight, validating the range."""
    w = Fraction(value)
    if w < 0 or w > 1:
        raise ProtocolError(f"weight out of range [0, 1]: {w}")
    return w


def split(weight: Fraction) -> Fraction:
    """Halve a weight, as ``prop_cp`` does per outgoing request.

    Returns the half that travels with the request; the caller keeps the
    same amount.
    """
    if weight <= 0:
        raise ProtocolError(f"cannot split non-positive weight {weight}")
    return weight / 2


class WeightLedger:
    """Global bookkeeping of weights for invariant checking.

    Protocols do not need the ledger to function — it exists so tests can
    assert Lemma 2's invariant continuously. Each unit of weight is
    tracked in one of three places: a process, in-transit requests, or
    in-transit replies.
    """

    def __init__(self) -> None:
        self.at_process: Dict[int, Fraction] = {}
        self.in_requests: Fraction = ZERO
        self.in_replies: Fraction = ZERO
        self.active = False

    def begin(self, initiator: int) -> None:
        """Start an initiation: the initiator holds weight 1."""
        if self.active:
            raise ProtocolError("weight ledger already tracking an initiation")
        self.at_process = {initiator: ONE}
        self.in_requests = ZERO
        self.in_replies = ZERO
        self.active = True

    def end(self) -> None:
        """Finish the initiation (after the initiator regained weight 1)."""
        self.active = False

    def move_to_request(self, pid: int, amount: Fraction) -> None:
        """Process ``pid`` put ``amount`` onto an outgoing request.

        All movement methods are no-ops when no initiation is being
        tracked (weights of an aborted initiation are dead).
        """
        if not self.active:
            return
        self._debit(pid, amount)
        self.in_requests += amount

    def request_arrived(self, pid: int, amount: Fraction) -> None:
        """A request carrying ``amount`` was received by ``pid``."""
        if not self.active:
            return
        self.in_requests -= amount
        if self.in_requests < 0:
            raise ProtocolError("negative in-flight request weight")
        self.at_process[pid] = self.at_process.get(pid, ZERO) + amount

    def move_to_reply(self, pid: int, amount: Fraction) -> None:
        """Process ``pid`` put ``amount`` onto a reply to the initiator."""
        if not self.active:
            return
        self._debit(pid, amount)
        self.in_replies += amount

    def reply_arrived(self, initiator: int, amount: Fraction) -> None:
        """A reply carrying ``amount`` reached the initiator."""
        if not self.active:
            return
        self.in_replies -= amount
        if self.in_replies < 0:
            raise ProtocolError("negative in-flight reply weight")
        self.at_process[initiator] = self.at_process.get(initiator, ZERO) + amount

    def _debit(self, pid: int, amount: Fraction) -> None:
        held = self.at_process.get(pid, ZERO)
        if amount > held:
            raise ProtocolError(
                f"process {pid} tried to move weight {amount} but holds {held}"
            )
        self.at_process[pid] = held - amount

    def total(self) -> Fraction:
        """Sum over all locations; equals 1 while active (Lemma 2)."""
        return sum(self.at_process.values(), ZERO) + self.in_requests + self.in_replies

    def check(self) -> None:
        """Raise unless the Lemma 2 invariant holds."""
        if self.active and self.total() != ONE:
            raise ProtocolError(f"weight invariant violated: total={self.total()}")
