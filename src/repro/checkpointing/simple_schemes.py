"""The strawman csn schemes of §3.1.1 and a no-mutable negative control.

These exist for the ablation study that motivates mutable checkpoints:

* **Basic scheme**: a process receiving a computation message whose csn
  is larger than expected takes an immediate *stable* checkpoint before
  processing it. Correct, but "may result in a large number of
  checkpoints … and may lead to an avalanche effect": each induced
  checkpoint raises the taker's own csn, inducing checkpoints at its
  correspondents in turn.
* **Revised scheme**: same, but only if the process has sent a message
  in the current checkpoint interval (the m4-exists test of §3.1.1).
  Fewer checkpoints, still avalanche-prone.
* **No-mutable control** (:class:`NoMutableVariantProtocol`): the full
  min-process request machinery with the mutable-checkpoint branch
  simply removed — the broken design point (≈ a Prakash-Singhal-style
  algorithm) whose committed recovery lines can contain orphan
  messages. Tests use it to show the consistency checkers actually have
  teeth, and why §2.4's impossibility forces either mutable checkpoints
  or inconsistency.

Induced checkpoints are unilateral: they go straight to stable storage
and become permanent without any commit round (traced with
``induced=True``). The request/commit flow for *coordinated* checkpoints
is inherited unchanged from the mutable algorithm.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.checkpointing.mutable import MutableCheckpointProcess, MutableCheckpointProtocol
from repro.checkpointing.protocol import ProcessEnv
from repro.checkpointing.state import BitVector, true_indices
from repro.checkpointing.types import CheckpointKind
from repro.net.message import ComputationMessage


class CsnSchemeProcess(MutableCheckpointProcess):
    """Per-process state machine of the basic/revised csn schemes."""

    def on_send_computation(self, message: ComputationMessage) -> None:
        message.pb = (self.csn[self.pid], None)
        self.sent = True

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        j = message.src_pid
        recv_csn, _ = message.protocol_tags()
        if recv_csn <= self.csn[j]:
            self.r[j] = True
            deliver()
            return
        self.csn[j] = recv_csn
        if not self.protocol.revised or self.sent:
            self._take_induced_checkpoint()
        self.r[j] = True
        deliver()

    def _take_induced_checkpoint(self) -> None:
        """Unilateral stable checkpoint forced by a higher-csn message.

        This is the avalanche engine: the checkpoint bumps our own csn
        (so our future messages induce checkpoints downstream) *and*
        recursively asks every current dependency to checkpoint too
        ("processes in the system recursively ask others to take
        checkpoints", §3.1.1).
        """
        self.csn[self.pid] += 1
        deps = [k for k in true_indices(self.r) if k != self.pid]
        record = self.make_checkpoint(
            self.csn[self.pid], CheckpointKind.TENTATIVE, None
        )
        self.old_csn = self.csn[self.pid]
        self.sent = False
        self.r = BitVector(self.n)
        self.env.trace(
            "tentative",
            pid=self.pid,
            trigger=None,
            csn=record.csn,
            ckpt_id=record.ckpt_id,
            induced=True,
        )

        self._save_stable_and_then(record, partial(self._finish_induced, record))
        for k in deps:
            self.env.send_system(
                k,
                "induce",
                {
                    "req_csn": self.csn[k],
                    "recv_csn": self.csn[self.pid],
                    "from_pid": self.pid,
                },
            )

    def _finish_induced(self, record) -> None:
        self.env.make_permanent(record)
        self.env.trace(
            "permanent", pid=self.pid, trigger=None, ckpt_id=record.ckpt_id,
            induced=True,
        )

    def _on_induce(self, message) -> None:
        fields = message.fields
        from_pid = fields["from_pid"]
        self.csn[from_pid] = max(self.csn[from_pid], fields["recv_csn"])
        if self.old_csn <= fields["req_csn"]:
            self._take_induced_checkpoint()

    def on_system_message(self, message) -> None:
        if message.subkind == "induce":
            self._on_induce(message)
        else:
            super().on_system_message(message)


class BasicCsnProtocol(MutableCheckpointProtocol):
    """§3.1.1's first strawman: checkpoint on every higher-csn message."""

    name = "csn-basic"
    revised = False

    def _build_process(self, env: ProcessEnv) -> CsnSchemeProcess:
        return CsnSchemeProcess(env, self)


class RevisedCsnProtocol(MutableCheckpointProtocol):
    """§3.1.1's revised strawman: checkpoint only if sent this interval."""

    name = "csn-revised"
    revised = True

    def _build_process(self, env: ProcessEnv) -> CsnSchemeProcess:
        return CsnSchemeProcess(env, self)


class NoMutableVariantProcess(MutableCheckpointProcess):
    """The mutable algorithm with the mutable-checkpoint branch removed.

    Tagged computation messages are processed directly (only csn
    bookkeeping happens); no local checkpoint protects against the
    §2.4 z-dependency. Orphan messages can therefore survive into
    committed recovery lines — this is the *intended* failure mode.
    """

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        j = message.src_pid
        recv_csn, msg_trigger = message.protocol_tags()
        if recv_csn > self.csn[j]:
            self.csn[j] = recv_csn
            if msg_trigger is not None and not self.cp_state:
                self.cp_state = True
                self.csn[self.pid] += 1
                self.own_trigger = msg_trigger
        self.r[j] = True
        deliver()


class NoMutableVariantProtocol(MutableCheckpointProtocol):
    """Negative control: min-process + nonblocking, no mutable checkpoints."""

    name = "no-mutable"

    def _build_process(self, env: ProcessEnv) -> NoMutableVariantProcess:
        return NoMutableVariantProcess(env, self)
