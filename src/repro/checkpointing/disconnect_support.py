"""Checkpointing support for disconnected mobile hosts (paper §2.2).

Before disconnecting, an MH takes a local checkpoint and leaves it — the
``disconnect_checkpoint`` — with its MSS, together with its dependency
information. If a checkpoint request arrives while the MH is away, *the
MSS acts on the process's behalf*: it converts the disconnect checkpoint
into the process's new checkpoint (no wireless transfer needed — the
data is already at the MSS) and propagates requests using the saved
dependency vector.

Implementation: the per-process protocol instance keeps running inside
the simulator, but while the MH is disconnected its environment is
swapped for :class:`MssProxyEnv`, which originates traffic at the MSS
and stores checkpoints directly (zero wireless cost). Because no local
events occur at a disconnected MH, the process state captured by the MSS
equals the disconnect checkpoint — the equivalence §2.2 relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.core.process import AppProcess, RuntimeEnv
from repro.errors import ProtocolError
from repro.net.disconnect import DisconnectProxy, DisconnectRecord
from repro.net.disconnect import disconnect as net_disconnect
from repro.net.disconnect import reconnect as net_reconnect
from repro.net.message import SystemMessage
from repro.net.mh import MobileHost
from repro.net.mss import MobileSupportStation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


class MssProxyEnv(RuntimeEnv):
    """Environment that originates protocol actions at the serving MSS."""

    def __init__(self, process: AppProcess, mss: MobileSupportStation) -> None:
        super().__init__(process)
        self.mss = mss

    def send_system(self, dst_pid: int, subkind: str, fields: Dict[str, Any]) -> None:
        message = SystemMessage(
            src_pid=self.pid,
            dst_pid=dst_pid,
            subkind=subkind,
            fields=fields,
            msg_id=self._next_msg_id(),
        )
        self._m_sys_messages.inc()
        self.system.metrics.counter(f"system_messages_{subkind}").inc()
        trace = self.system.sim.trace
        if trace.debug_on:
            trace.debug(
                self.system.sim.now,
                "sys_send",
                src=self.pid,
                dst=dst_pid,
                subkind=subkind,
                via_mss=True,
            )
        self.mss.send(message)

    def broadcast_system(self, subkind: str, fields: Dict[str, Any]) -> int:
        self._m_broadcasts.inc()
        sent = 0
        for pid in self.system.network.process_ids:
            if pid == self.pid:
                continue
            message = SystemMessage(
                src_pid=self.pid,
                dst_pid=pid,
                subkind=subkind,
                fields=dict(fields),
                msg_id=self._next_msg_id(),
            )
            message.broadcast = True
            self.mss.send(message)
            sent += 1
        return sent

    def transfer_to_stable(
        self, record: CheckpointRecord, on_saved: Callable[[], None]
    ) -> None:
        # The disconnect checkpoint already lives at this MSS: converting
        # it costs no wireless transfer, only the disk write.
        record.size_bytes = self.system.config.checkpoint_size_bytes
        assert self.mss.stable_storage is not None
        self.mss.stable_storage.store(record)
        delay = self.system.config.network.stable_write_time
        if delay > 0:
            self.system.sim.schedule(delay, on_saved)
        else:
            on_saved()


class MutableDisconnectProxy(DisconnectProxy):
    """The MSS-side agent for a disconnected process (mutable protocol)."""

    def __init__(self, process: AppProcess, mss: MobileSupportStation) -> None:
        self.process = process
        self.mss = mss
        self._original_env = process.protocol_process.env
        process.protocol_process.env = MssProxyEnv(process, mss)

    def handle_system_message(
        self,
        mss: MobileSupportStation,
        record: DisconnectRecord,
        message: SystemMessage,
    ) -> bool:
        protocol_process = self.process.protocol_process
        old_csn_before = getattr(protocol_process, "old_csn", None)
        protocol_process.on_system_message(message)
        if (
            message.subkind == "request"
            and old_csn_before is not None
            and protocol_process.old_csn != old_csn_before
        ):
            # The MSS converted the disconnect checkpoint into a real one.
            record.checkpoint_taken_on_behalf = True
        return True

    def restore(self) -> None:
        """Reattach the process to its normal environment (reconnect)."""
        self.process.protocol_process.env = self._original_env


def disconnect_process(system: "MobileSystem", pid: int) -> DisconnectRecord:
    """Voluntarily disconnect the MH hosting ``pid`` (§2.2 procedure).

    Takes the disconnect checkpoint, stores it at the serving MSS,
    installs the protocol proxy, and drops the wireless link. The
    workload must not send from this process until reconnection (no send
    events occur while disconnected).
    """
    process = system.processes[pid]
    host = process.host
    if not isinstance(host, MobileHost):
        raise ProtocolError(f"pid {pid} does not run on a mobile host")
    mss = host.mss
    if mss is None:
        raise ProtocolError(f"{host.name} has no serving MSS")
    checkpoint = CheckpointRecord(
        pid=pid,
        csn=-1,
        kind=CheckpointKind.DISCONNECT,
        time_taken=system.sim.now,
        state=process.capture_state(),
        trigger=None,
        vector_clock=process.vc.snapshot(),
        size_bytes=system.config.checkpoint_size_bytes,
    )
    assert mss.stable_storage is not None
    mss.stable_storage.store(checkpoint)
    proxy = MutableDisconnectProxy(process, mss)
    record = net_disconnect(
        system.network,
        host,
        checkpoint,
        proxy,
        checkpoint_bytes=system.config.checkpoint_size_bytes,
    )
    return record


def reconnect_process(
    system: "MobileSystem", pid: int, new_mss: Optional[MobileSupportStation] = None
) -> DisconnectRecord:
    """Reconnect ``pid``'s MH (possibly at a different MSS).

    Restores the normal environment before the buffered messages replay,
    so they are handled by the process itself, not the proxy.
    """
    process = system.processes[pid]
    host = process.host
    if not isinstance(host, MobileHost):
        raise ProtocolError(f"pid {pid} does not run on a mobile host")
    target = new_mss if new_mss is not None else system.mss_list[0]
    # Swap the env back *before* replay so buffered traffic is processed
    # by the reconnected process.
    env = process.protocol_process.env
    if isinstance(env, MssProxyEnv):
        process.protocol_process.env = RuntimeEnv(process)
    record = net_reconnect(system.network, host, target)
    return record
