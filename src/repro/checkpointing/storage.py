"""Checkpoint storage: stable storage at MSSs, local stores at MHs.

The paper's storage model (§1, §5.1): an MH's own disk is *not* stable —
stable storage lives at the MSSs, so a tentative checkpoint costs a
512 KB incremental transfer over the 2 Mbps wireless link (2 s), whereas
a mutable checkpoint is a 2.5 ms main-memory copy on the MH itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import StorageError


class StableStorage:
    """Stable storage at one MSS.

    Holds tentative and permanent checkpoints per process and basic
    accounting of how many bytes were written (a proxy for the wireless
    transfer cost the paper wants minimized).
    """

    def __init__(self, name: str = "stable") -> None:
        self.name = name
        self._checkpoints: Dict[int, List[CheckpointRecord]] = {}
        self.bytes_written = 0
        self.writes = 0

    def store(self, record: CheckpointRecord) -> None:
        """Persist a checkpoint (it must already be tentative/permanent)."""
        if not record.is_stable and record.kind is not CheckpointKind.DISCONNECT:
            raise StorageError(
                f"cannot store {record.kind.value} checkpoint on stable storage"
            )
        self._checkpoints.setdefault(record.pid, []).append(record)
        self.bytes_written += record.size_bytes
        self.writes += 1

    def checkpoints_of(self, pid: int) -> List[CheckpointRecord]:
        """All stored checkpoints of ``pid``, oldest first."""
        return list(self._checkpoints.get(pid, ()))

    def latest(self, pid: int, kind: Optional[CheckpointKind] = None) -> Optional[CheckpointRecord]:
        """Most recent checkpoint of ``pid`` (optionally of one kind)."""
        for record in reversed(self._checkpoints.get(pid, [])):
            if kind is None or record.kind is kind:
                return record
        return None

    def discard(self, record: CheckpointRecord) -> None:
        """Remove a checkpoint (aborted tentative, superseded disconnect)."""
        try:
            self._checkpoints[record.pid].remove(record)
        except (KeyError, ValueError):
            raise StorageError(f"checkpoint {record.ckpt_id} not in {self.name}") from None

    def garbage_collect(self, pid: int, keep_latest_permanent: int = 1) -> int:
        """Drop all but the newest ``keep_latest_permanent`` permanent
        checkpoints of ``pid`` (older ones can never be part of the most
        recent recovery line). Returns the number removed.
        """
        records = self._checkpoints.get(pid, [])
        permanents = [r for r in records if r.kind is CheckpointKind.PERMANENT]
        to_drop = permanents[:-keep_latest_permanent] if keep_latest_permanent else permanents
        for record in to_drop:
            records.remove(record)
        return len(to_drop)

    def __len__(self) -> int:
        return sum(len(v) for v in self._checkpoints.values())


class LocalStore:
    """Volatile local storage on an MH for mutable checkpoints.

    The paper's key point: this storage is cheap (main memory) but not
    stable — its contents do not survive an MH failure, which is exactly
    why mutable checkpoints must be promoted to stable storage before
    they can participate in a recovery line. Usually one checkpoint is
    held at a time; overlapping initiations (Fig. 3) can briefly require
    more, so the store is keyed by checkpoint id.
    """

    def __init__(self, name: str = "local") -> None:
        self.name = name
        self._records: Dict[int, CheckpointRecord] = {}
        self.saves = 0
        self.discards = 0
        self.removals = 0

    @property
    def records(self) -> List[CheckpointRecord]:
        """All mutable checkpoints currently held."""
        return list(self._records.values())

    @property
    def current(self) -> Optional[CheckpointRecord]:
        """The most recently saved checkpoint still held, if any."""
        if not self._records:
            return None
        return self._records[max(self._records)]

    def save(self, record: CheckpointRecord) -> None:
        """Store a mutable checkpoint."""
        if record.kind is not CheckpointKind.MUTABLE:
            raise StorageError("local store only holds mutable checkpoints")
        self._records[record.ckpt_id] = record
        self.saves += 1

    def remove(self, record: CheckpointRecord) -> None:
        """Drop a held checkpoint (promoted to stable, or discarded)."""
        if self._records.pop(record.ckpt_id, None) is not None:
            self.removals += 1

    def discard(self) -> Optional[CheckpointRecord]:
        """Drop the most recent checkpoint; returns it if one was held."""
        record = self.current
        if record is not None:
            del self._records[record.ckpt_id]
            self.discards += 1
        return record

    def wipe(self) -> None:
        """Simulate MH failure: volatile contents are lost."""
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
