"""Protocol plug-in interface.

A checkpointing algorithm is implemented as a pair of classes:

* a :class:`CheckpointProtocol` (one per system) that manufactures
  per-process instances and carries cross-process *observers* (commit /
  abort listeners used by the experiment runner — never algorithm state);
* a :class:`ProtocolProcess` (one per process) holding all algorithm
  state and reacting to exactly the events the paper's pseudocode reacts
  to: sending a computation message, receiving one, receiving a system
  message, and initiating a checkpointing process.

The per-process instance talks to the world only through a
:class:`ProcessEnv`, so protocols are unit-testable against a scripted
environment and identical code runs inside the full mobile-network
simulation.

Trace kinds emitted by protocols (consumed by the verification and
metrics layers):

* ``initiation``      fields: pid, trigger
* ``tentative``       fields: pid, trigger, csn, ckpt_id
* ``mutable``         fields: pid, trigger, csn, ckpt_id
* ``mutable_promoted``  fields: pid, trigger, ckpt_id
* ``mutable_discarded`` fields: pid, trigger, ckpt_id
* ``permanent``       fields: pid, trigger, ckpt_id
* ``commit``          fields: trigger
* ``abort``           fields: trigger
* ``comp_send`` / ``comp_recv``  fields: src, dst, msg_id
* ``sys_send``        fields: src, dst, subkind
* ``blocked`` / ``unblocked``    fields: pid
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.net.message import ComputationMessage, SystemMessage


def noop() -> None:
    """Do nothing.

    The picklable stand-in for ``lambda: None`` completion callbacks:
    module-level functions pickle by reference, so protocols that park a
    no-op on an in-flight message or the event heap stay snapshottable.
    """


#: wiring attributes every process excludes from ``state_dict()``
_STATE_DICT_WIRING: FrozenSet[str] = frozenset({"env", "protocol", "pid", "n"})


class ProcessEnv(ABC):
    """Everything a protocol process may do to the outside world."""

    #: process id of this instance
    pid: int
    #: total number of processes (paper's N)
    n: int

    @abstractmethod
    def now(self) -> float:
        """Current simulated time."""

    @abstractmethod
    def send_system(
        self, dst_pid: int, subkind: str, fields: Dict[str, Any]
    ) -> None:
        """Send a 50-byte protocol control message to ``dst_pid``."""

    @abstractmethod
    def broadcast_system(self, subkind: str, fields: Dict[str, Any]) -> int:
        """Send a control message to every other process; returns copies."""

    @abstractmethod
    def capture_state(self) -> Dict[str, Any]:
        """Snapshot the application state for a checkpoint."""

    @abstractmethod
    def capture_vector_clock(self) -> Tuple[int, ...]:
        """Snapshot the runtime-maintained vector clock (verification)."""

    @abstractmethod
    def save_mutable(self, record: CheckpointRecord) -> None:
        """Store ``record`` in the MH-local store (2.5 ms class cost)."""

    @abstractmethod
    def transfer_to_stable(
        self, record: CheckpointRecord, on_saved: Callable[[], None]
    ) -> None:
        """Ship ``record`` to MSS stable storage over the wireless link.

        ``on_saved`` fires when the data has arrived (the 2 s class cost);
        protocols send their *reply* from there so the checkpointing time
        includes the transfer, as in the paper's T_ch.
        """

    @abstractmethod
    def discard_mutable(self, record: CheckpointRecord) -> None:
        """Drop a mutable checkpoint from the local store."""

    @abstractmethod
    def make_permanent(self, record: CheckpointRecord) -> None:
        """Flip a stored tentative checkpoint to permanent and garbage
        collect permanents it supersedes."""

    @abstractmethod
    def discard_stable(self, record: CheckpointRecord) -> None:
        """Remove an aborted tentative checkpoint from stable storage."""

    @abstractmethod
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn`` after ``delay`` simulated seconds."""

    @abstractmethod
    def trace(self, kind: str, **fields: Any) -> None:
        """Append a record to the run's trace log."""

    @abstractmethod
    def block_computation(self) -> None:
        """Suspend the underlying computation (blocking protocols)."""

    @abstractmethod
    def unblock_computation(self) -> None:
        """Resume the underlying computation."""

    @property
    @abstractmethod
    def mutable_save_time(self) -> float:
        """Local-memory checkpoint copy time (paper: 2.5 ms)."""

    @property
    def all_pids(self) -> Tuple[int, ...]:
        """All process ids in the system, sorted."""
        return tuple(range(self.n))


class ProtocolProcess(ABC):
    """Per-process half of a checkpointing algorithm."""

    #: extra attribute names a subclass excludes from ``state_dict()``
    #: (e.g. queues of live callables that belong to the runtime, not
    #: the algorithm)
    _state_dict_exclude: FrozenSet[str] = frozenset()

    def __init__(self, env: ProcessEnv) -> None:
        self.env = env
        self.pid = env.pid
        self.n = env.n

    # -- algorithm-state capture (snapshot inspection + tests) ---------------
    def state_dict(self) -> Dict[str, Any]:
        """The algorithm's per-process state as a plain, detached dict.

        Every instance attribute except the wiring (``env``,
        ``protocol``, ``pid``, ``n``) and the subclass's
        ``_state_dict_exclude`` set, deep-copied so callers can inspect
        or stash it without aliasing live protocol state. This is the
        introspectable counterpart of whole-graph snapshot pickling —
        ``repro-sim snapshots --show`` renders it, and the round-trip
        tests diff it across snapshot/resume.
        """
        skip = _STATE_DICT_WIRING | self._state_dict_exclude
        return {
            key: copy.deepcopy(value)
            for key, value in sorted(vars(self).items())
            if key not in skip
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore attributes previously captured by :meth:`state_dict`."""
        for key, value in state.items():
            setattr(self, key, copy.deepcopy(value))

    @abstractmethod
    def on_send_computation(self, message: ComputationMessage) -> None:
        """Piggyback protocol data onto an outgoing computation message."""

    @abstractmethod
    def on_receive_computation(
        self, message: ComputationMessage, deliver: Callable[[], None]
    ) -> None:
        """Handle an incoming computation message.

        The protocol decides whether to checkpoint first, then calls
        ``deliver()`` (possibly after a delay) to hand the message to the
        application.
        """

    @abstractmethod
    def on_system_message(self, message: SystemMessage) -> None:
        """Handle a protocol control message."""

    @abstractmethod
    def initiate(self) -> bool:
        """Start a checkpointing process; False if refused/impossible."""

    # -- conveniences shared by implementations ------------------------------
    def make_checkpoint(
        self,
        csn: int,
        kind: CheckpointKind,
        trigger: Optional[Trigger],
    ) -> CheckpointRecord:
        """Capture application state into a new checkpoint record."""
        return CheckpointRecord(
            pid=self.pid,
            csn=csn,
            kind=kind,
            time_taken=self.env.now(),
            state=self.env.capture_state(),
            trigger=trigger,
            vector_clock=self.env.capture_vector_clock(),
        )


class CheckpointProtocol(ABC):
    """System-wide half: factory for process instances plus observers."""

    #: short machine name used by the registry and result tables
    name: str = "abstract"
    #: whether the algorithm ever blocks the underlying computation
    blocking: bool = False
    #: whether any process may initiate (vs a fixed coordinator)
    distributed: bool = True
    #: whether superseded permanent checkpoints may be garbage collected
    #: (uncoordinated recovery needs the full history — §6's storage cost)
    gc_permanents: bool = True

    def __init__(self) -> None:
        self.processes: Dict[int, ProtocolProcess] = {}
        self._commit_listeners: List[Callable[[Trigger], None]] = []
        self._abort_listeners: List[Callable[[Trigger], None]] = []

    @abstractmethod
    def _build_process(self, env: ProcessEnv) -> ProtocolProcess:
        """Create the per-process instance (subclass hook)."""

    def create_process(self, env: ProcessEnv) -> ProtocolProcess:
        """Create and register the instance for ``env.pid``."""
        process = self._build_process(env)
        self.processes[env.pid] = process
        return process

    def state_dict(self) -> Dict[str, Any]:
        """Protocol-wide algorithm state: one entry per process."""
        return {
            "name": self.name,
            "processes": {
                pid: process.state_dict()
                for pid, process in sorted(self.processes.items())
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore every process's state from :meth:`state_dict` output."""
        if state.get("name") != self.name:
            raise ValueError(
                f"state_dict is for protocol {state.get('name')!r}, "
                f"not {self.name!r}"
            )
        for pid, process_state in state["processes"].items():
            self.processes[pid].load_state_dict(process_state)

    def add_commit_listener(self, fn: Callable[[Trigger], None]) -> None:
        """Observe committed initiations (used by the runner)."""
        self._commit_listeners.append(fn)

    def add_abort_listener(self, fn: Callable[[Trigger], None]) -> None:
        """Observe aborted initiations."""
        self._abort_listeners.append(fn)

    def notify_commit(self, trigger: Trigger) -> None:
        """Called by the initiating process when it broadcasts commit."""
        for fn in list(self._commit_listeners):
            fn(trigger)

    def notify_abort(self, trigger: Trigger) -> None:
        """Called when an initiation is aborted."""
        for fn in list(self._abort_listeners):
            fn(trigger)
