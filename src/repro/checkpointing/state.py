"""Array-backed per-process state stores for the checkpointing protocols.

The paper's per-process structures — the csn array, the R dependency
bit-vector, and the MR structure piggybacked on requests — were plain
Python lists of ints/bools/:class:`~repro.checkpointing.types.MREntry`.
At 16 processes that is fine; at 1k-10k mobile hosts the O(N) per-object
allocations (every process holds several N-entry vectors; every request
carries one) and the O(N) scans over them dominate. These stores keep
the exact list-like surface the protocol code (and its tests) already
use, while changing the representation:

* :class:`IntVector` — ``array('q')``-backed dense int vector. One
  machine word per entry, no per-entry object churn.
* :class:`BitVector` — ``bytearray``-backed bool vector. One byte per
  entry, and :meth:`BitVector.true_indices` finds set bits with
  C-level ``bytearray.find`` scans instead of a Python loop over N —
  the scan the request-propagation path (``prop_cp``) runs per wave.
* :class:`MRVector` — sparse dict-backed MR. A fresh MR is O(1) instead
  of N ``MREntry`` allocations, and the copy taken per request hop is
  O(entries actually set). Reads of unset slots return the shared
  all-zero entry, so protocol decisions are identical to the dense
  representation's.

All three deep-copy and pickle cleanly, so the generic protocol
``state_dict()``/``load_state_dict()`` round-trip and whole-simulation
snapshots work unchanged.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Sequence, Union

from repro.checkpointing.types import MREntry

__all__ = ["BitVector", "IntVector", "MRVector", "true_indices"]


class IntVector:
    """A dense int vector with a list-like surface, backed by ``array``.

    Accepts either a size (zero-filled) or an iterable of ints.
    """

    __slots__ = ("_a",)

    #: 'q' (8-byte signed) keeps the surface a drop-in for Python ints
    #: well past any csn the simulator can reach
    typecode = "q"
    _itemsize = array(typecode).itemsize

    def __init__(self, init: Union[int, Iterable[int]] = 0) -> None:
        if isinstance(init, int):
            self._a = array(self.typecode, bytes(self._itemsize * init))
        else:
            self._a = array(self.typecode, init)

    def __len__(self) -> int:
        return len(self._a)

    def __getitem__(self, index: int) -> int:
        return self._a[index]

    def __setitem__(self, index: int, value: int) -> None:
        self._a[index] = value

    def __iter__(self) -> Iterator[int]:
        return iter(self._a)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IntVector):
            return self._a == other._a
        if isinstance(other, (list, tuple)):
            return len(other) == len(self._a) and all(
                a == b for a, b in zip(self._a, other)
            )
        return NotImplemented

    def __reduce__(self):
        return (type(self), (self._a.tolist(),))

    def copy(self) -> "IntVector":
        dup = type(self).__new__(type(self))
        dup._a = array(self.typecode, self._a)
        return dup

    def __copy__(self) -> "IntVector":
        return self.copy()

    def __deepcopy__(self, memo) -> "IntVector":
        return self.copy()

    def tolist(self) -> List[int]:
        return self._a.tolist()

    def clear(self) -> None:
        """Zero every entry."""
        self._a = array(self.typecode, bytes(self._itemsize * len(self._a)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntVector({self._a.tolist()!r})"


class BitVector:
    """A dense bool vector with a list-like surface, backed by ``bytearray``."""

    __slots__ = ("_b",)

    def __init__(self, init: Union[int, Iterable[bool]] = 0) -> None:
        if isinstance(init, int):
            self._b = bytearray(init)
        else:
            self._b = bytearray(1 if v else 0 for v in init)

    def __len__(self) -> int:
        return len(self._b)

    def __getitem__(self, index: int) -> bool:
        return bool(self._b[index])

    def __setitem__(self, index: int, value: bool) -> None:
        self._b[index] = 1 if value else 0

    def __iter__(self) -> Iterator[bool]:
        return (bool(b) for b in self._b)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self._b == other._b
        if isinstance(other, (list, tuple)):
            return len(other) == len(self._b) and all(
                bool(a) == bool(b) for a, b in zip(self._b, other)
            )
        return NotImplemented

    def __reduce__(self):
        return (type(self), (bytes(self._b),))

    def copy(self) -> "BitVector":
        dup = type(self).__new__(type(self))
        dup._b = bytearray(self._b)
        return dup

    def __copy__(self) -> "BitVector":
        return self.copy()

    def __deepcopy__(self, memo) -> "BitVector":
        return self.copy()

    def tolist(self) -> List[bool]:
        return [bool(b) for b in self._b]

    def any(self) -> bool:
        """Whether any bit is set (C-level scan)."""
        return self._b.find(1) >= 0

    def true_indices(self) -> Iterator[int]:
        """Indices of set bits, ascending — C-level ``find`` scans, so
        the cost is O(set bits) Python operations, not O(N)."""
        buf = self._b
        index = buf.find(1)
        while index >= 0:
            yield index
            index = buf.find(1, index + 1)

    def or_with(self, other: Union["BitVector", Sequence[bool]]) -> None:
        """In-place componentwise OR (the §3.3.4 give-back merge)."""
        buf = self._b
        if isinstance(other, BitVector):
            for index in other.true_indices():
                buf[index] = 1
        else:
            for index, value in enumerate(other):
                if value:
                    buf[index] = 1

    def clear(self) -> None:
        """Reset every bit in place."""
        self._b = bytearray(len(self._b))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitVector({self.tolist()!r})"


def true_indices(vec: Union[BitVector, Sequence[bool]]) -> Iterable[int]:
    """Indices of truthy entries of either a BitVector or a plain list.

    Protocol code uses this so hand-built test fixtures may still pass
    plain ``List[bool]`` vectors where the runtime uses BitVectors.
    """
    if isinstance(vec, BitVector):
        return vec.true_indices()
    return (index for index, value in enumerate(vec) if value)


#: shared all-zero MR slot — reads of unset MRVector entries return this
_MR_ZERO = MREntry()


class MRVector:
    """The MR request structure, stored sparsely.

    Indexing an unset slot returns the shared all-zero
    :class:`~repro.checkpointing.types.MREntry`, which is exactly what a
    dense ``fresh_mr(n)`` slot holds — every csn/r comparison the
    protocol makes sees identical values, so the request-suppression
    decisions are identical to the dense representation's.
    """

    __slots__ = ("n", "_entries")

    def __init__(self, n: int, entries=None) -> None:
        self.n = n
        self._entries = dict(entries) if entries else {}

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, index: int) -> MREntry:
        return self._entries.get(index, _MR_ZERO)

    def __setitem__(self, index: int, entry: MREntry) -> None:
        self._entries[index] = entry

    def __iter__(self) -> Iterator[MREntry]:
        entries = self._entries
        return (entries.get(i, _MR_ZERO) for i in range(self.n))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MRVector):
            return self.n == other.n and list(self) == list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == self.n and list(self) == list(other)
        return NotImplemented

    def __reduce__(self):
        return (type(self), (self.n, self._entries))

    def copy(self) -> "MRVector":
        return MRVector(self.n, self._entries)

    def __copy__(self) -> "MRVector":
        return self.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MRVector(n={self.n}, {self._entries!r})"
