"""The strawman protocol of Fig. 1: coordinated checkpointing with *no*
protection against in-flight computation messages.

The initiator requests its direct dependencies; every requested process
takes a checkpoint whenever the request arrives, regardless of what it
received in between. Works only if no computation message crosses the
checkpointing — exactly the failure Fig. 1 illustrates (message m1
becomes an orphan when P3 receives it before the request).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv, ProtocolProcess
from repro.checkpointing.types import CheckpointKind, CheckpointRecord, Trigger
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage


class NaiveProcess(ProtocolProcess):
    """Checkpoint-on-request, no csn, no mutable checkpoints."""

    def __init__(self, env: ProcessEnv, protocol: "NaiveProtocol") -> None:
        super().__init__(env)
        self.protocol = protocol
        self.r: List[bool] = [False] * self.n
        self.csn = 0
        self._pending: Dict[Trigger, CheckpointRecord] = {}
        self._awaiting: Set[int] = set()
        self._active: Optional[Trigger] = None

    def on_send_computation(self, message: ComputationMessage) -> None:
        pass  # nothing piggybacked — that is the point

    def on_receive_computation(self, message, deliver: Callable[[], None]) -> None:
        self.r[message.src_pid] = True
        deliver()

    def initiate(self) -> bool:
        if self._active is not None:
            return False
        self.csn += 1
        trigger = Trigger(self.pid, self.csn)
        self._active = trigger
        self.env.trace("initiation", pid=self.pid, trigger=trigger)
        self._take_checkpoint(trigger)
        self._awaiting = {k for k in range(self.n) if k != self.pid and self.r[k]}
        for k in sorted(self._awaiting):
            self.env.send_system(k, "request", {"trigger": trigger})
        self.r = [False] * self.n
        if not self._awaiting:
            self._commit(trigger)
        return True

    def _take_checkpoint(self, trigger: Trigger) -> None:
        record = self.make_checkpoint(self.csn, CheckpointKind.TENTATIVE, trigger)
        self._pending[trigger] = record
        self.env.trace(
            "tentative", pid=self.pid, trigger=trigger, csn=self.csn, ckpt_id=record.ckpt_id
        )
        self.env.transfer_to_stable(record, lambda: None)

    def on_system_message(self, message: SystemMessage) -> None:
        fields = message.fields
        trigger: Trigger = fields["trigger"]
        if message.subkind == "request":
            self.csn += 1
            self._take_checkpoint(trigger)
            self.r = [False] * self.n
            self.env.send_system(
                trigger.pid, "reply", {"trigger": trigger, "from_pid": self.pid}
            )
        elif message.subkind == "reply":
            if trigger != self._active:
                return
            self._awaiting.discard(fields["from_pid"])
            if not self._awaiting:
                self._commit(trigger)
        elif message.subkind == "commit":
            self._apply_commit(trigger)
        else:
            raise ProtocolError(f"unknown subkind {message.subkind!r}")

    def _commit(self, trigger: Trigger) -> None:
        self._active = None
        self.env.trace("commit", trigger=trigger)
        self.env.broadcast_system("commit", {"trigger": trigger})
        self._apply_commit(trigger)
        self.protocol.notify_commit(trigger)

    def _apply_commit(self, trigger: Trigger) -> None:
        record = self._pending.pop(trigger, None)
        if record is not None:
            self.env.make_permanent(record)
            self.env.trace(
                "permanent", pid=self.pid, trigger=trigger, ckpt_id=record.ckpt_id
            )


class NaiveProtocol(CheckpointProtocol):
    """Fig. 1's broken strawman."""

    name = "naive"
    blocking = False
    distributed = True

    def _build_process(self, env: ProcessEnv) -> NaiveProcess:
        return NaiveProcess(env, self)
