"""Deterministic reproductions of the paper's Figs. 1–4.

Each ``figureN`` function builds the exact message pattern of the figure
on the :class:`~repro.scenarios.harness.ScenarioHarness` and returns a
:class:`FigureResult` with the facts the figure is meant to demonstrate.
The test suite asserts those facts; the scenario bench re-runs them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.simple_schemes import NoMutableVariantProtocol
from repro.scenarios.harness import ScenarioHarness
from repro.scenarios.naive import NaiveProtocol


@dataclass
class FigureResult:
    """Outcome of one figure scenario."""

    figure: str
    consistent: bool
    orphan_msg_ids: List[int] = field(default_factory=list)
    tentative_counts: Dict[str, int] = field(default_factory=dict)
    mutable_taken: int = 0
    mutable_promoted: int = 0
    mutable_discarded: int = 0
    notes: str = ""


def _counts(harness: ScenarioHarness) -> Dict[str, int]:
    return {
        "tentative": harness.trace.count("tentative"),
        "mutable": harness.trace.count("mutable"),
        "promoted": harness.trace.count("mutable_promoted"),
        "discarded": harness.trace.count("mutable_discarded"),
    }


def figure1() -> FigureResult:
    """Fig. 1: naive nonblocking coordination creates an orphan.

    P2 initiates; P1 checkpoints on request and then sends m1 to P3; P3
    receives m1 *before* its own request arrives, so m1's receive is
    recorded but its send is not.
    """
    p1, p2, p3 = 0, 1, 2
    h = ScenarioHarness(3, NaiveProtocol())
    # Dependencies: P2 received from both P1 and P3.
    h.deliver(h.send(p1, p2))
    h.deliver(h.send(p3, p2))
    h.initiate(p2)
    req_p1, req_p3 = h.pending_system("request")
    assert req_p1.dst == p1 and req_p3.dst == p3
    h.deliver(req_p1)              # P1 checkpoints...
    m1 = h.send(p1, p3)            # ...then sends m1
    h.deliver(m1)                  # P3 processes m1 first
    h.deliver(req_p3)              # and only now checkpoints
    h.deliver_all_system()
    orphans = h.find_orphans()
    return FigureResult(
        figure="fig1",
        consistent=h.is_consistent(),
        orphan_msg_ids=[o.msg_id for o in orphans],
        tentative_counts=_counts(h),
        notes="m1 must be an orphan",
    )


def _figure2_script(h: ScenarioHarness) -> None:
    """The §2.4 impossibility pattern, shared by both protocol variants.

    Chain of dependencies P1 <- P4 <- P5 <- P2; P1 initiates and sends
    m5 to P2, which arrives before the request that is still crawling
    down the chain.
    """
    p1, p2, p3, p4, p5 = 0, 1, 2, 3, 4
    # Dependencies: P1 received from P3 and P4; P4 from P5; P5 from P2 (m3).
    h.deliver(h.send(p3, p1))
    h.deliver(h.send(p4, p1))
    h.deliver(h.send(p5, p4))
    h.deliver(h.send(p2, p5))      # m3: creates the z-dependency path
    h.initiate(p1)
    requests = {f.dst: f for f in h.pending_system("request")}
    h.deliver(requests[p4])        # P4 checkpoints, requests P5
    req_p5 = next(f for f in h.pending_system("request") if f.dst == p5)
    h.deliver(req_p5)              # P5 checkpoints, requests P2
    m5 = h.send(p1, p2)            # m5 sent after C_{1,1}
    h.deliver(m5)                  # ...and received BEFORE P2's request
    req_p2 = next(f for f in h.pending_system("request") if f.dst == p2)
    h.deliver(req_p2)
    h.deliver(requests[p3])
    h.deliver_all_system()


def figure2() -> FigureResult:
    """Fig. 2 run with the broken no-mutable variant: m5 orphans."""
    h = ScenarioHarness(5, NoMutableVariantProtocol())
    _figure2_script(h)
    orphans = h.find_orphans()
    return FigureResult(
        figure="fig2-no-mutable",
        consistent=h.is_consistent(),
        orphan_msg_ids=[o.msg_id for o in orphans],
        tentative_counts=_counts(h),
        notes="without mutable checkpoints, m5 must be an orphan",
    )


def figure2_with_mutable() -> FigureResult:
    """Fig. 2 run with the paper's algorithm: the mutable checkpoint at
    P2 absorbs the impossibility and is later promoted."""
    h = ScenarioHarness(5, MutableCheckpointProtocol())
    _figure2_script(h)
    counts = _counts(h)
    return FigureResult(
        figure="fig2-mutable",
        consistent=h.is_consistent(),
        orphan_msg_ids=[o.msg_id for o in h.find_orphans()],
        tentative_counts=counts,
        mutable_taken=counts["mutable"],
        mutable_promoted=counts["promoted"],
        mutable_discarded=counts["discarded"],
        notes="P2's mutable checkpoint is promoted; no orphan",
    )


def figure3() -> FigureResult:
    """Fig. 3 / §3.4: the worked example of the full algorithm.

    P2's initiation promotes the mutable checkpoints C_{1,1} (at P1) and
    C_{3,1} (at P3); P0's overlapping initiation leaves C_{1,2} at P1,
    discarded as redundant when P0's checkpointing commits.
    """
    p0, p1, p2, p3, p4 = 0, 1, 2, 3, 4
    h = ScenarioHarness(5, MutableCheckpointProtocol())
    # Dependencies of P2 on P1, P3, P4; of P0 on P4.
    h.deliver(h.send(p1, p2))
    h.deliver(h.send(p3, p2))
    h.deliver(h.send(p4, p2))
    h.deliver(h.send(p4, p0))
    # P0 initiates; its request to P4 stays in flight, so P0's
    # checkpointing is unfinished when it later sends m1.
    h.initiate(p0)
    req_p0_to_p4 = next(f for f in h.pending_system("request") if f.dst == p4)
    # P2 initiates and its request reaches P4 first.
    h.initiate(p2)
    p2_requests = {
        f.dst: f
        for f in h.pending_system("request")
        if f is not req_p0_to_p4
    }
    h.deliver(p2_requests[p4])     # P4 takes its tentative for P2's trigger
    m3 = h.send(p4, p3)            # tagged with P2's trigger
    h.deliver(m3)                  # P3 takes mutable C_{3,1}
    m2 = h.send(p3, p1)            # tagged (P3 is now in cp_state)
    h.deliver(m2)                  # P1 takes mutable C_{1,1}
    m4 = h.send(p1, p3)            # m4: P1 sends in its new interval
    m1 = h.send(p0, p1)            # tagged with P0's trigger
    h.deliver(m1)                  # P1 takes mutable C_{1,2}
    h.deliver(p2_requests[p1])     # C_{1,1} promoted to tentative
    h.deliver(p2_requests[p3])     # C_{3,1} promoted to tentative
    h.deliver(req_p0_to_p4)        # P4 skips (old_csn > req_csn)
    h.deliver(m4)
    h.deliver_everything()         # replies, commits; C_{1,2} discarded
    counts = _counts(h)
    return FigureResult(
        figure="fig3",
        consistent=h.is_consistent(),
        orphan_msg_ids=[o.msg_id for o in h.find_orphans()],
        tentative_counts=counts,
        mutable_taken=counts["mutable"],
        mutable_promoted=counts["promoted"],
        mutable_discarded=counts["discarded"],
        notes="C_{1,1}, C_{3,1} promoted; C_{1,2} redundant",
    )


def figure4() -> FigureResult:
    """Fig. 4 / §3.1.3: a stale request (req_csn behind the target's
    current stable checkpoint) is ignored, saving C_{2,2} and C_{1,2}."""
    p1, p2, p3 = 0, 1, 2
    h = ScenarioHarness(3, MutableCheckpointProtocol())
    h.deliver(h.send(p1, p2))      # m2: P2 depends on P1
    h.deliver(h.send(p2, p3))      # m1: P3 depends on P2 (csn still 0)
    # First initiation: P2 takes C_{2,1}, forcing C_{1,1} at P1.
    h.initiate(p2)
    h.deliver_all_system()
    before = h.trace.count("tentative")
    # Second initiation: P3's request to P2 carries req_csn = 0 < old_csn.
    h.initiate(p3)
    h.deliver_all_system()
    after = h.trace.count("tentative")
    counts = _counts(h)
    counts["second_initiation_tentatives"] = after - before
    return FigureResult(
        figure="fig4",
        consistent=h.is_consistent(),
        orphan_msg_ids=[o.msg_id for o in h.find_orphans()],
        tentative_counts=counts,
        notes="P2 ignores P3's stale request; only P3 checkpoints",
    )


def all_figures() -> List[FigureResult]:
    """Run every figure scenario."""
    return [figure1(), figure2(), figure2_with_mutable(), figure3(), figure4()]
