"""Deterministic scenario engine and figure reproductions."""

from repro.scenarios.figures import (
    FigureResult,
    all_figures,
    figure1,
    figure2,
    figure2_with_mutable,
    figure3,
    figure4,
)
from repro.scenarios.harness import InFlight, ScenarioHarness
from repro.scenarios.naive import NaiveProtocol

__all__ = [
    "FigureResult",
    "InFlight",
    "NaiveProtocol",
    "ScenarioHarness",
    "all_figures",
    "figure1",
    "figure2",
    "figure2_with_mutable",
    "figure3",
    "figure4",
]
