"""Deterministic protocol harness with scripted message delivery.

The paper's figures (1–4) are statements about *message orderings*, not
timing: "P3 receives m1 before the checkpoint request". This harness
runs protocol processes against a minimal in-memory environment where
the test script chooses exactly when each in-flight message is
delivered, making every figure reproducible as a deterministic unit
test — and making randomized delivery orders a natural property-based
test (deliver in any order; committed lines must stay consistent).

Checkpoints are saved instantly (timing is irrelevant here); the trace
log uses the same record kinds as the full simulation, so the
:mod:`repro.analysis.consistency` checkers apply unchanged.
"""

from __future__ import annotations

from collections import deque
from itertools import count
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.analysis.vector_clock import VectorClock
from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv
from repro.checkpointing.storage import LocalStore, StableStorage
from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import ProtocolError
from repro.net.message import ComputationMessage, SystemMessage
from repro.sim.trace import TraceLog


class InFlight:
    """A message waiting for the script to deliver it."""

    _ids = count()

    def __init__(self, message: Any, dst: int, kind: str) -> None:
        self.message = message
        self.dst = dst
        self.kind = kind  # "comp" | "system"
        self.uid = next(InFlight._ids)
        self.delivered = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "delivered" if self.delivered else "pending"
        label = getattr(self.message, "subkind", "comp")
        return f"<InFlight #{self.uid} {label} -> p{self.dst} {state}>"


class HarnessEnv(ProcessEnv):
    """Minimal :class:`ProcessEnv` capturing everything in memory."""

    def __init__(self, harness: "ScenarioHarness", pid: int) -> None:
        self.harness = harness
        self.pid = pid
        self.n = harness.n

    def now(self) -> float:
        return float(self.harness.clock)

    def send_system(self, dst_pid: int, subkind: str, fields: Dict[str, Any]) -> None:
        message = SystemMessage(
            src_pid=self.pid, dst_pid=dst_pid, subkind=subkind, fields=fields
        )
        self.harness.trace.record(
            self.now(), "sys_send", src=self.pid, dst=dst_pid, subkind=subkind,
            trigger=fields.get("trigger"),
        )
        self.harness.post(InFlight(message, dst_pid, "system"))

    def broadcast_system(self, subkind: str, fields: Dict[str, Any]) -> int:
        sent = 0
        for pid in range(self.n):
            if pid == self.pid:
                continue
            self.send_system(pid, subkind, dict(fields))
            sent += 1
        return sent

    def capture_state(self) -> Dict[str, Any]:
        return dict(self.harness.app_state[self.pid])

    def capture_vector_clock(self) -> Tuple[int, ...]:
        return self.harness.clocks[self.pid].snapshot()

    def save_mutable(self, record: CheckpointRecord) -> None:
        self.harness.local_stores[self.pid].save(record)

    def transfer_to_stable(
        self, record: CheckpointRecord, on_saved: Callable[[], None]
    ) -> None:
        self.harness.storage.store(record)
        on_saved()

    def discard_mutable(self, record: CheckpointRecord) -> None:
        self.harness.local_stores[self.pid].remove(record)

    def make_permanent(self, record: CheckpointRecord) -> None:
        record.kind = CheckpointKind.PERMANENT
        if self.harness.protocol.gc_permanents:
            self.harness.storage.garbage_collect(self.pid, keep_latest_permanent=1)

    def discard_stable(self, record: CheckpointRecord) -> None:
        try:
            self.harness.storage.discard(record)
        except Exception:
            record.kind = CheckpointKind.MUTABLE

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        # Checkpoint-save delays are irrelevant to ordering scenarios.
        fn()

    def trace(self, kind: str, **fields: Any) -> None:
        self.harness.trace.record(self.now(), kind, **fields)

    def block_computation(self) -> None:
        self.harness.blocked[self.pid] = True

    def unblock_computation(self) -> None:
        if not self.harness.blocked[self.pid]:
            return
        self.harness.blocked[self.pid] = False
        self.harness.flush_deferred(self.pid)

    @property
    def mutable_save_time(self) -> float:
        return 0.0


class ScenarioHarness:
    """Drives protocol processes with scripted message delivery.

    Typical use::

        h = ScenarioHarness(3, MutableCheckpointProtocol())
        m1 = h.send(0, 1)          # P0 -> P1, in flight
        h.initiate(2)              # P2 starts a checkpointing
        h.deliver(m1)              # now deliver m1
        h.deliver_all_system()     # let the coordination finish
        h.assert_consistent()
    """

    def __init__(self, n: int, protocol: CheckpointProtocol) -> None:
        self.n = n
        self.protocol = protocol
        self.clock = 0
        self.trace = TraceLog()
        self.storage = StableStorage(name="scenario-stable")
        self.local_stores = [LocalStore(name=f"local-p{i}") for i in range(n)]
        self.app_state: List[Dict[str, Any]] = [
            {"messages_sent": 0, "messages_received": 0} for _ in range(n)
        ]
        self.clocks = [VectorClock(i, n) for i in range(n)]
        self.blocked = [False] * n
        self.pending: Deque[InFlight] = deque()
        # Blocking protocols (Koo-Toueg): a blocked process neither sends
        # nor consumes computation messages; both are deferred here and
        # replayed on unblock, mirroring the full runtime's semantics.
        self._deferred_sends: Dict[int, List[Tuple[int, Any]]] = {
            i: [] for i in range(n)
        }
        self._deferred_receives: Dict[int, List[InFlight]] = {i: [] for i in range(n)}
        self.processes = [
            protocol.create_process(HarnessEnv(self, pid)) for pid in range(n)
        ]
        # Initial permanent checkpoints so a recovery line always exists.
        for pid in range(n):
            record = CheckpointRecord(
                pid=pid,
                csn=0,
                kind=CheckpointKind.PERMANENT,
                time_taken=0.0,
                state=dict(self.app_state[pid]),
                trigger=None,
                vector_clock=self.clocks[pid].snapshot(),
            )
            self.storage.store(record)
            self.trace.record(0.0, "permanent", pid=pid, trigger=None, ckpt_id=record.ckpt_id)

    # -- script actions ------------------------------------------------------
    def tick(self) -> None:
        """Advance the scenario clock one step."""
        self.clock += 1

    def post(self, flight: InFlight) -> None:
        """Register an in-flight message (used by envs)."""
        self.pending.append(flight)

    def send(self, src: int, dst: int, payload: Any = None) -> Optional[InFlight]:
        """P_src sends a computation message to P_dst (stays in flight).

        Returns None when ``src`` is blocked: the send is deferred and
        happens automatically at unblock (blocking-protocol semantics).
        """
        if src == dst:
            raise ProtocolError("no self-messages")
        if self.blocked[src]:
            self._deferred_sends[src].append((dst, payload))
            return None
        self.tick()
        self.clocks[src].tick()
        message = ComputationMessage(src_pid=src, dst_pid=dst, payload=payload)
        message.vc = self.clocks[src].snapshot()
        self.processes[src].on_send_computation(message)
        self.app_state[src]["messages_sent"] += 1
        self.trace.record(
            float(self.clock), "comp_send", src=src, dst=dst, msg_id=message.msg_id
        )
        flight = InFlight(message, dst, "comp")
        self.pending.append(flight)
        return flight

    def deliver(self, flight: InFlight) -> None:
        """Deliver one in-flight message now."""
        if flight.delivered:
            raise ProtocolError(f"{flight!r} already delivered")
        if flight not in self.pending:
            raise ProtocolError(f"{flight!r} is not pending")
        self.pending.remove(flight)
        flight.delivered = True
        self.tick()
        if flight.kind == "comp":
            if self.blocked[flight.dst]:
                # The runtime buffers computation deliveries while the
                # destination is blocked; replayed on unblock.
                self._deferred_receives[flight.dst].append(flight)
                return
            self.processes[flight.dst].on_receive_computation(
                flight.message, lambda: self._consume(flight)
            )
        else:
            self.processes[flight.dst].on_system_message(flight.message)

    def flush_deferred(self, pid: int) -> None:
        """Replay a just-unblocked process's deferred activity in order."""
        receives, self._deferred_receives[pid] = self._deferred_receives[pid], []
        for flight in receives:
            self.processes[pid].on_receive_computation(
                flight.message, lambda f=flight: self._consume(f)
            )
        sends, self._deferred_sends[pid] = self._deferred_sends[pid], []
        for dst, payload in sends:
            self.send(pid, dst, payload)

    def _consume(self, flight: InFlight) -> None:
        message = flight.message
        dst = flight.dst
        vc = message.vc_stamp()
        if vc is not None:
            self.clocks[dst].merge(vc)
        self.clocks[dst].tick()
        self.app_state[dst]["messages_received"] += 1
        self.trace.record(
            float(self.clock), "comp_recv", src=message.src_pid, dst=dst,
            msg_id=message.msg_id,
        )

    def initiate(self, pid: int) -> bool:
        """P_pid initiates a checkpointing process."""
        self.tick()
        return self.processes[pid].initiate()

    # -- bulk delivery helpers ---------------------------------------------------
    def pending_system(self, subkind: Optional[str] = None) -> List[InFlight]:
        """In-flight system messages (optionally of one subkind)."""
        out = []
        for flight in self.pending:
            if flight.kind != "system":
                continue
            if subkind is not None and flight.message.subkind != subkind:
                continue
            out.append(flight)
        return out

    def pending_comp(self) -> List[InFlight]:
        """In-flight computation messages."""
        return [f for f in self.pending if f.kind == "comp"]

    def deliver_all_system(self, max_rounds: int = 10000) -> int:
        """Deliver system messages (FIFO) until none remain; returns count.

        Computation messages left in flight stay in flight.
        """
        delivered = 0
        while True:
            flights = self.pending_system()
            if not flights:
                return delivered
            self.deliver(flights[0])
            delivered += 1
            if delivered > max_rounds:
                raise ProtocolError("system messages do not quiesce")

    def deliver_everything(self, max_rounds: int = 10000) -> int:
        """Deliver all in-flight messages, system first, FIFO."""
        delivered = 0
        while self.pending:
            flights = self.pending_system() or list(self.pending)
            self.deliver(flights[0])
            delivered += 1
            if delivered > max_rounds:
                raise ProtocolError("messages do not quiesce")
        return delivered

    # -- verification -------------------------------------------------------------
    def recovery_line(self) -> Dict[int, CheckpointRecord]:
        """Latest permanent checkpoint per process."""
        from repro.analysis.consistency import latest_permanent_line

        return latest_permanent_line([self.storage], range(self.n))

    def find_orphans(self):
        """Orphans of the current recovery line."""
        from repro.analysis.consistency import find_orphans

        return find_orphans(self.trace, self.recovery_line())

    def assert_consistent(self) -> None:
        """Raise unless the current recovery line passes both checkers."""
        from repro.analysis.consistency import assert_line_consistent

        assert_line_consistent(self.trace, self.recovery_line())

    def is_consistent(self) -> bool:
        """Whether the current recovery line passes both checkers."""
        from repro.analysis.consistency import check_vector_clocks

        return not self.find_orphans() and check_vector_clocks(self.recovery_line())
