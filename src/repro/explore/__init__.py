"""Adversarial schedule exploration, invariant checking, and shrinking.

``repro.explore`` turns the simulator into a property-based testing
harness for the checkpointing protocols:

* :mod:`repro.explore.policy` — seeded schedule perturbation via the
  kernel's :class:`~repro.sim.kernel.SchedulePolicy` hook (FIFO-safe
  tie-break shuffling and bounded delay jitter), with record/replay;
* :mod:`repro.explore.invariants` — a trace-evaluated invariant suite
  (recovery-line consistency, min-process minimality, no avalanche,
  FIFO order, coordination termination, incarnation hygiene);
* :mod:`repro.explore.injections` — adversarial injection grids
  (failures mid-coordination, handoffs, disconnections, concurrent
  initiations) drawn deterministically per seed;
* :mod:`repro.explore.mutations` — deliberately broken protocol
  variants for end-to-end self-tests of the explorer;
* :mod:`repro.explore.fuzz` — batch fan-out over the campaign engine;
* :mod:`repro.explore.shrink` — ddmin counterexample minimization;
* :mod:`repro.explore.fork` — fork-from-snapshot: replay only the tail
  of a violating run from its nearest in-memory simulator snapshot.
"""

from repro.explore.fork import fork_from_counterexample, fork_meta
from repro.explore.fuzz import (
    EXPLORE_PRESETS,
    ExploreReport,
    ExploreSpec,
    execute_explore_point,
    explore_preset,
    run_explore_batch,
    run_explore_once,
    run_explore_point,
    trace_digest,
)
from repro.explore.injections import (
    INJECTION_KINDS,
    InjectionDriver,
    draw_injections,
)
from repro.explore.invariants import (
    DEFAULT_INVARIANTS,
    INVARIANT_FACTORIES,
    Invariant,
    Violation,
    build_invariants,
    check_invariants,
)
from repro.explore.mutations import (
    MUTATIONS,
    available_mutations,
    build_explore_protocol,
)
from repro.explore.policy import (
    PerturbationConfig,
    RecordingPolicy,
    ReplayPolicy,
    decisions_from_jsonable,
    decisions_to_jsonable,
)
from repro.explore.shrink import (
    counterexample_ratio,
    ddmin,
    replay_counterexample,
    shrink_counterexample,
)

__all__ = [
    "fork_from_counterexample",
    "fork_meta",
    "EXPLORE_PRESETS",
    "ExploreReport",
    "ExploreSpec",
    "execute_explore_point",
    "explore_preset",
    "run_explore_batch",
    "run_explore_once",
    "run_explore_point",
    "trace_digest",
    "INJECTION_KINDS",
    "InjectionDriver",
    "draw_injections",
    "DEFAULT_INVARIANTS",
    "INVARIANT_FACTORIES",
    "Invariant",
    "Violation",
    "build_invariants",
    "check_invariants",
    "MUTATIONS",
    "available_mutations",
    "build_explore_protocol",
    "PerturbationConfig",
    "RecordingPolicy",
    "ReplayPolicy",
    "decisions_from_jsonable",
    "decisions_to_jsonable",
    "counterexample_ratio",
    "ddmin",
    "replay_counterexample",
    "shrink_counterexample",
]
