"""Delta-debugging counterexample shrinker.

When a seed violates an invariant, the raw reproduction is noisy: a few
hundred recorded schedule perturbations plus several injections, most of
them irrelevant. :func:`shrink_counterexample` minimizes both with the
classic ddmin algorithm — first the injection schedule, then the
perturbation decision set — re-running the simulation as the test
oracle. Every experiment replays a *subset* of the recorded decisions
through :class:`~repro.explore.policy.ReplayPolicy`, so the search space
is exactly "which of the observed perturbations mattered".

The result is a plain-data counterexample: a RunPoint dict with the
minimized injections baked in, plus the minimized decision list —
:func:`replay_counterexample` turns it back into a live run that
reproduces the violation bit-identically.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import RunPoint
from repro.explore.policy import (
    Decisions,
    decisions_from_jsonable,
    decisions_to_jsonable,
)

#: default cap on shrinker experiments (each one is a full sim run)
DEFAULT_SHRINK_BUDGET = 200


def ddmin(
    items: Sequence[Any],
    test: Callable[[List[Any]], bool],
    max_tests: int = DEFAULT_SHRINK_BUDGET,
) -> Tuple[List[Any], int]:
    """Zeller's minimizing delta debugging.

    ``test(subset)`` must return True when the subset still triggers the
    failure; ``test(items)`` is assumed True (the caller observed it).
    Returns ``(minimal_subset, tests_run)``. The result is 1-minimal if
    the budget was not exhausted; otherwise it is the best reduction
    found within ``max_tests`` experiments.
    """
    items = list(items)
    tests_run = 0

    def run_test(subset: List[Any]) -> bool:
        nonlocal tests_run
        tests_run += 1
        return test(subset)

    if not items:
        return items, tests_run
    if run_test([]):
        return [], tests_run
    granularity = 2
    while len(items) >= 2 and tests_run < max_tests:
        chunk_size = max(1, len(items) // granularity)
        chunks = [
            items[i : i + chunk_size] for i in range(0, len(items), chunk_size)
        ]
        reduced = False
        for index in range(len(chunks)):
            if tests_run >= max_tests:
                break
            complement = [
                item
                for chunk_index, chunk in enumerate(chunks)
                for item in chunk
                if chunk_index != index
            ]
            if complement and run_test(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items, tests_run


def shrink_counterexample(
    point: RunPoint,
    initial_run: Any,
    max_tests: int = DEFAULT_SHRINK_BUDGET,
) -> Dict[str, Any]:
    """Minimize a violating run to a replayable counterexample.

    ``initial_run`` is the :class:`~repro.explore.fuzz.ExploreRun` that
    violated. Two ddmin passes share one experiment budget: injections
    first (they dominate run behaviour), then the recorded perturbation
    decisions. The oracle accepts *any* invariant violation, not just
    the original one — standard practice; chasing one fixed symptom
    makes shrinking brittle for no diagnostic gain.
    """
    from repro.explore.fuzz import run_explore_once, trace_digest

    explore = point.explore or {}
    full_decisions: Decisions = dict(initial_run.policy.decisions)
    full_injections: List[Dict[str, Any]] = [
        dict(injection) for injection in explore.get("injections", ())
    ]
    tests_total = 0

    def violates(
        decisions: Decisions, injections: List[Dict[str, Any]]
    ) -> bool:
        run = run_explore_once(point, decisions=decisions, injections=injections)
        return bool(run.violations)

    budget = max_tests
    min_injections, used = ddmin(
        full_injections,
        lambda subset: violates(full_decisions, subset),
        max_tests=budget,
    )
    tests_total += used
    budget = max(0, max_tests - tests_total)

    decision_items = sorted(full_decisions.items())
    if budget > 0:
        min_items, used = ddmin(
            decision_items,
            lambda subset: violates(dict(subset), min_injections),
            max_tests=budget,
        )
        tests_total += used
    else:
        min_items = decision_items
    min_decisions: Decisions = dict(min_items)

    # Final replay with the minimized pair — both to confirm it and to
    # capture the canonical violation list and schedule digest.
    final = run_explore_once(
        point, decisions=min_decisions, injections=min_injections
    )
    tests_total += 1

    ce_point = point.to_dict()
    ce_explore = dict(ce_point.get("explore") or {})
    ce_explore["injections"] = [dict(injection) for injection in min_injections]
    ce_explore["shrink"] = False
    ce_point["explore"] = ce_explore

    return {
        "point": ce_point,
        "decisions": decisions_to_jsonable(min_decisions),
        "violations": [v.to_dict() for v in final.violations],
        "schedule_digest": trace_digest(final.trace),
        "original_decisions": len(full_decisions),
        "original_injections": len(full_injections),
        "shrunk_decisions": len(min_decisions),
        "shrunk_injections": len(min_injections),
        "tests_run": tests_total,
        "reproduces": bool(final.violations),
    }


def replay_counterexample(counterexample: Dict[str, Any]) -> Any:
    """Re-run a shrunk counterexample; returns the live ExploreRun.

    Deterministic: the same counterexample dict always produces the same
    schedule digest and the same violations.
    """
    from repro.explore.fuzz import run_explore_once

    point = RunPoint.from_dict(dict(counterexample["point"]))
    decisions = decisions_from_jsonable(counterexample["decisions"])
    return run_explore_once(point, decisions=decisions)


def counterexample_ratio(counterexample: Dict[str, Any]) -> Optional[float]:
    """Shrunk size over original size for the perturbation set.

    None when the original run had no recorded perturbations (the bug
    reproduced with zero schedule noise — already minimal).
    """
    original = counterexample.get("original_decisions", 0)
    if not original:
        return None
    return counterexample["shrunk_decisions"] / original
