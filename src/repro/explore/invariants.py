"""The invariant suite: the paper's safety claims as trace checks.

Every invariant is evaluated against the :class:`~repro.sim.trace.TraceLog`
of a finished run — never against live protocol state — so the same
checks work on archived counterexample traces. Where an independent
checker already exists in :mod:`repro.analysis` it is reused directly.

Catalogue
---------
``recovery-line-consistency``
    The committed recovery line (last permanent checkpoint per process)
    contains no orphan message — Theorem 1/2, via
    :func:`repro.analysis.offline.verify_archived_trace`.
``min-process-minimality``
    Every committed initiation checkpointed exactly the z-dependency
    closure — Theorem 3, via :func:`repro.analysis.minimality`. Skipped
    for commits after the first failure/recovery/disconnection record:
    those legitimately alter the participant set (§3.6 resolves the
    coordination early; proxies checkpoint on a disconnected host's
    behalf from older state), so the closure comparison is only exact on
    the undisturbed prefix.
``no-avalanche``
    No initiation forces a process into more than one new checkpoint,
    and no checkpoint is taken outside a coordination (§3.1.1's
    avalanche is exactly uncoordinated induced checkpoints cascading).
``fifo-channel-order``
    Per (src, dst) pair, computation messages are received in send
    order (§2.1 reliable FIFO). Losses are allowed (failures and
    rollbacks legitimately drop messages); reordering is not. Pairs
    touching a host that handed off or disconnected are skipped: the
    reroute path is a different physical route, where the FIFO
    assumption genuinely does not hold end-to-end.
``coordination-termination``
    Every traced ``initiation`` reaches a ``commit``, ``abort``, or
    ``partial_commit`` for its trigger (Lemma 2 / §3.4 termination).
    Evaluated after the run has fully quiesced.
``incarnation-hygiene``
    Incarnation numbers only grow, and no process accepts (records a
    ``comp_recv`` for) a message sent in a rolled-back part of the past
    after it has itself rolled past that incarnation — the ghost-message
    defence actually held.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.minimality import must_checkpoint_set
from repro.analysis.offline import verify_archived_trace
from repro.errors import ConfigurationError, InconsistentCheckpointError
from repro.sim.trace import TraceLog

#: trace kinds that mark the run as "disturbed" from this position on,
#: invalidating the exact minimality comparison
_DISTURBANCES = ("failure", "partial_commit", "recovery_started", "disconnect")


@dataclass
class Violation:
    """One invariant violation found in a trace."""

    invariant: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "details": {k: repr(v) for k, v in self.details.items()},
        }

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.message}"


class Invariant:
    """A named safety property checked against a finished trace."""

    name = "invariant"

    def check(self, trace: TraceLog) -> List[Violation]:
        raise NotImplementedError

    def violation(self, message: str, **details: Any) -> Violation:
        return Violation(invariant=self.name, message=message, details=details)


class RecoveryLineConsistency(Invariant):
    """No orphan messages across the committed recovery line."""

    name = "recovery-line-consistency"

    def check(self, trace: TraceLog) -> List[Violation]:
        try:
            verdict = verify_archived_trace(trace)
        except InconsistentCheckpointError:
            return []  # no permanent checkpoints yet: nothing to verify
        return [
            self.violation(
                f"orphan message {orphan.msg_id} {orphan.src}->{orphan.dst}: "
                "receive is inside the recovery line, send is not",
                msg_id=orphan.msg_id,
                src=orphan.src,
                dst=orphan.dst,
            )
            for orphan in verdict.orphans
        ]


class MinProcessMinimality(Invariant):
    """Committed initiations checkpoint exactly the z-closure (Thm. 3)."""

    name = "min-process-minimality"

    def check(self, trace: TraceLog) -> List[Violation]:
        disturbed_at = None
        for index, record in enumerate(trace):
            if record.kind in _DISTURBANCES:
                disturbed_at = index
                break
        violations: List[Violation] = []
        for index, record in enumerate(trace):
            if record.kind != "commit":
                continue
            if disturbed_at is not None and index > disturbed_at:
                continue  # §3.6/§2.2 paths legitimately alter the set
            report = must_checkpoint_set(trace, record["trigger"])
            if report.missing:
                violations.append(
                    self.violation(
                        f"initiation {record['trigger']} committed without "
                        f"required processes {sorted(report.missing)}",
                        trigger=record["trigger"],
                        missing=sorted(report.missing),
                    )
                )
            if report.unjustified:
                # excess vs. the *exact* closure is tolerated: the
                # protocol's R-bit/csn knowledge legitimately
                # over-approximates (see MinimalityReport.unjustified);
                # a participant with no dependency basis at all is not.
                violations.append(
                    self.violation(
                        f"initiation {record['trigger']} checkpointed "
                        f"processes {sorted(report.unjustified)} with no "
                        "dependency basis",
                        trigger=record["trigger"],
                        unjustified=sorted(report.unjustified),
                    )
                )
        return violations


class NoAvalanche(Invariant):
    """At most one new checkpoint per process per initiation.

    ``allow_untriggered`` admits protocols that legitimately take
    unilateral checkpoints (timer-based, uncoordinated, csn schemes);
    the default rejects them, which is the right setting for the
    min-process protocols explore targets.
    """

    name = "no-avalanche"

    def __init__(self, allow_untriggered: bool = False) -> None:
        self.allow_untriggered = allow_untriggered

    def check(self, trace: TraceLog) -> List[Violation]:
        per_trigger: Dict[Tuple[Any, int], Set[int]] = {}
        violations: List[Violation] = []
        for record in trace.of_kind("tentative"):
            trigger = record.get("trigger")
            pid = record["pid"]
            if trigger is None:
                if not self.allow_untriggered:
                    violations.append(
                        self.violation(
                            f"process {pid} took an uncoordinated (induced) "
                            "checkpoint — avalanche engine",
                            pid=pid,
                            ckpt_id=record.get("ckpt_id"),
                        )
                    )
                continue
            ids = per_trigger.setdefault((trigger, pid), set())
            ckpt_id = record.get("ckpt_id")
            if ckpt_id is not None:
                ids.add(ckpt_id)
        for (trigger, pid), ids in sorted(
            per_trigger.items(), key=lambda item: (repr(item[0][0]), item[0][1])
        ):
            if len(ids) > 1:
                violations.append(
                    self.violation(
                        f"initiation {trigger} forced {len(ids)} checkpoints "
                        f"at process {pid} (avalanche)",
                        trigger=trigger,
                        pid=pid,
                        ckpt_ids=sorted(ids),
                    )
                )
        return violations


def _rerouted_pids(trace: TraceLog) -> Set[int]:
    """Pids whose host left its original route (handoff/disconnect)."""
    pids: Set[int] = set()
    for record in trace:
        if record.kind in ("handoff_start", "disconnect"):
            name = record.get("mh", "")
            if isinstance(name, str) and name.startswith("mh"):
                try:
                    pids.add(int(name[2:]))
                except ValueError:
                    pass
    return pids


class FifoChannelOrder(Invariant):
    """Receives per (src, dst) pair happen in send order (§2.1)."""

    name = "fifo-channel-order"

    def check(self, trace: TraceLog) -> List[Violation]:
        rerouted = _rerouted_pids(trace)
        send_order: Dict[Tuple[int, int], Dict[int, int]] = {}
        last_received: Dict[Tuple[int, int], Tuple[int, int]] = {}
        violations: List[Violation] = []
        for record in trace:
            if record.kind == "comp_send":
                pair = (record["src"], record["dst"])
                order = send_order.setdefault(pair, {})
                order[record["msg_id"]] = len(order)
            elif record.kind == "comp_recv":
                pair = (record["src"], record["dst"])
                if pair[0] in rerouted or pair[1] in rerouted:
                    continue  # reroute path: end-to-end FIFO not modeled
                position = send_order.get(pair, {}).get(record["msg_id"])
                if position is None:
                    continue  # send not traced (pre-trace or system path)
                previous = last_received.get(pair)
                if previous is not None and position < previous[0]:
                    violations.append(
                        self.violation(
                            f"channel {pair[0]}->{pair[1]} delivered message "
                            f"{record['msg_id']} (send #{position}) after "
                            f"message {previous[1]} (send #{previous[0]})",
                            src=pair[0],
                            dst=pair[1],
                            msg_id=record["msg_id"],
                            after_msg_id=previous[1],
                        )
                    )
                if previous is None or position > previous[0]:
                    last_received[pair] = (position, record["msg_id"])
        return violations


class CoordinationTermination(Invariant):
    """Every initiation commits, aborts, or partially commits."""

    name = "coordination-termination"

    def check(self, trace: TraceLog) -> List[Violation]:
        started: Dict[Any, int] = {}
        resolved: Set[Any] = set()
        for record in trace:
            if record.kind == "initiation":
                trigger = record.get("trigger")
                if trigger is not None and trigger not in started:
                    started[trigger] = record["pid"]
            elif record.kind in ("commit", "abort", "partial_commit"):
                trigger = record.get("trigger")
                if trigger is not None:
                    resolved.add(trigger)
        return [
            self.violation(
                f"initiation {trigger} by process {pid} never terminated "
                "(no commit/abort after quiescence)",
                trigger=trigger,
                pid=pid,
            )
            for trigger, pid in started.items()
            if trigger not in resolved
        ]


class IncarnationHygiene(Invariant):
    """Incarnations only grow and ghost messages stay dead."""

    name = "incarnation-hygiene"

    def check(self, trace: TraceLog) -> List[Violation]:
        violations: List[Violation] = []
        last_incarnation: Dict[int, int] = {}
        # capture position of every checkpoint id (first record wins —
        # for promoted mutables that *is* the mutable capture point)
        capture_pos: Dict[int, int] = {}
        rolled_back: List[Tuple[int, int, int, Optional[int]]] = []
        for index, record in enumerate(trace):
            if record.kind in ("mutable", "tentative", "permanent"):
                ckpt_id = record.get("ckpt_id")
                if ckpt_id is not None and ckpt_id not in capture_pos:
                    capture_pos[ckpt_id] = index
            elif record.kind == "rolled_back":
                pid = record["pid"]
                incarnation = record["incarnation"]
                previous = last_incarnation.get(pid, 0)
                if incarnation <= previous:
                    violations.append(
                        self.violation(
                            f"process {pid} adopted incarnation {incarnation} "
                            f"after already being at {previous}",
                            pid=pid,
                            incarnation=incarnation,
                        )
                    )
                last_incarnation[pid] = incarnation
                rolled_back.append(
                    (index, pid, incarnation, record.get("ckpt_id"))
                )
        if not rolled_back:
            return violations

        # Dead-send windows: for each rollback of pid to ckpt_id, sends
        # by pid between the restored checkpoint's capture and the
        # rollback are undone. A receiver that records such a message
        # *after* its own rollback for the same incarnation accepted a
        # ghost the incarnation check should have dropped.
        dead_windows: List[Tuple[int, int, int, int]] = []  # (pid, lo, hi, inc)
        rollback_pos: Dict[Tuple[int, int], int] = {}
        for index, pid, incarnation, ckpt_id in rolled_back:
            rollback_pos[(pid, incarnation)] = index
            lo = capture_pos.get(ckpt_id) if ckpt_id is not None else None
            if lo is not None:
                dead_windows.append((pid, lo, index, incarnation))

        sends: Dict[int, Tuple[int, int]] = {}  # msg_id -> (pos, src)
        for index, record in enumerate(trace):
            if record.kind == "comp_send":
                sends[record["msg_id"]] = (index, record["src"])
            elif record.kind == "comp_recv":
                sent = sends.get(record["msg_id"])
                if sent is None:
                    continue
                send_pos, src = sent
                for pid, lo, hi, incarnation in dead_windows:
                    if src != pid or not (lo < send_pos < hi):
                        continue
                    receiver_rolled = rollback_pos.get(
                        (record["dst"], incarnation)
                    )
                    if receiver_rolled is not None and index > receiver_rolled:
                        violations.append(
                            self.violation(
                                f"process {record['dst']} accepted ghost "
                                f"message {record['msg_id']} from rolled-back "
                                f"incarnation {incarnation - 1} of process "
                                f"{src}",
                                msg_id=record["msg_id"],
                                src=src,
                                dst=record["dst"],
                                incarnation=incarnation,
                            )
                        )
        return violations


#: the default suite, in evaluation order
DEFAULT_INVARIANTS: Tuple[Invariant, ...] = (
    RecoveryLineConsistency(),
    MinProcessMinimality(),
    NoAvalanche(),
    FifoChannelOrder(),
    CoordinationTermination(),
    IncarnationHygiene(),
)

#: name -> factory, for spec-driven selection
INVARIANT_FACTORIES = {
    RecoveryLineConsistency.name: RecoveryLineConsistency,
    MinProcessMinimality.name: MinProcessMinimality,
    NoAvalanche.name: NoAvalanche,
    FifoChannelOrder.name: FifoChannelOrder,
    CoordinationTermination.name: CoordinationTermination,
    IncarnationHygiene.name: IncarnationHygiene,
}


def build_invariants(names: Optional[Sequence[str]] = None) -> Tuple[Invariant, ...]:
    """The invariant suite for ``names`` (default: the full catalogue)."""
    if names is None:
        return DEFAULT_INVARIANTS
    suite = []
    for name in names:
        factory = INVARIANT_FACTORIES.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown invariant {name!r}; "
                f"available: {', '.join(sorted(INVARIANT_FACTORIES))}"
            )
        suite.append(factory())
    return tuple(suite)


def check_invariants(
    trace: TraceLog,
    invariants: Optional[Sequence[Invariant]] = None,
    dump_path: Optional[str] = None,
) -> List[Violation]:
    """Run the suite against ``trace`` and collect every violation.

    ``dump_path`` arms the flight recorder's dump-on-violation: when any
    invariant fails, the trace (merged INFO + retained-DEBUG view for a
    ring-buffered log) is written there as JSON lines before returning,
    so the evidence window survives even if the run continues and the
    ring rolls past it.
    """
    violations: List[Violation] = []
    for invariant in invariants if invariants is not None else DEFAULT_INVARIANTS:
        violations.extend(invariant.check(trace))
    if violations and dump_path is not None:
        from repro.sim.export import save_trace

        save_trace(trace, dump_path)
    return violations
