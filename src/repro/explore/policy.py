"""Seeded schedule-perturbation policies for adversarial exploration.

The kernel's :class:`~repro.sim.kernel.SchedulePolicy` hook is consulted
once per ``schedule``/``schedule_at`` call; these policies use it to
explore the schedule space around the nominal run:

* :class:`RecordingPolicy` draws perturbations from one seeded
  :class:`random.Random` in call order and *records* every active
  decision as ``call_index -> (extra_delay, priority)``. The recorded
  decision list is the raw material the shrinker minimizes.
* :class:`ReplayPolicy` applies an explicit decision map and is the
  identity everywhere else — replaying the full recorded set reproduces
  the recording run bit-for-bit, and replaying a subset is exactly the
  "remove some perturbations" experiment delta debugging needs.

Both perturbation kinds are bounded and safe by construction: extra
delay is capped by ``max_jitter`` (and the kernel clamps to ``>= now``),
and priorities only reorder events that share a timestamp. FIFO streams
are protected by the kernel's per-stream monotone floor, so no policy
can reorder a channel's deliveries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.kernel import SchedulePolicy
from repro.sim.rng import raw_rng

#: a recorded perturbation: schedule-call index -> (extra delay, priority)
Decisions = Dict[int, Tuple[float, int]]


@dataclass(frozen=True)
class PerturbationConfig:
    """Knobs for :class:`RecordingPolicy`.

    ``p_perturb`` is the per-call probability of perturbing at all;
    ``max_jitter`` bounds the extra delay in seconds (keep it below the
    smallest physical hop delay so jitter widens races without inventing
    impossible overtaking); ``priority_levels`` bounds the tie-break
    priorities drawn (``[-levels, +levels]``).
    """

    p_perturb: float = 0.25
    max_jitter: float = 0.001
    priority_levels: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_perturb <= 1.0:
            raise ConfigurationError("p_perturb must be in [0, 1]")
        if self.max_jitter < 0:
            raise ConfigurationError("max_jitter cannot be negative")
        if self.priority_levels < 0:
            raise ConfigurationError("priority_levels cannot be negative")

    def to_dict(self) -> Dict[str, float]:
        return {
            "p_perturb": self.p_perturb,
            "max_jitter": self.max_jitter,
            "priority_levels": self.priority_levels,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "PerturbationConfig":
        return cls(**data)


class RecordingPolicy(SchedulePolicy):
    """Draw seeded perturbations and record the active ones.

    Deterministic: the policy's output is a pure function of its seed
    and the sequence of ``on_schedule`` calls, and the simulation (given
    the policy) is deterministic, so the whole closed loop is — the same
    seed always yields the same schedule and the same decision list.
    """

    def __init__(self, seed: int, config: Optional[PerturbationConfig] = None) -> None:
        self.seed = seed
        self.config = config or PerturbationConfig()
        self.decisions: Decisions = {}
        # raw_rng keeps random.Random(seed) semantics: recorded decision
        # sequences from before the RNG audit replay unchanged
        self._rng = raw_rng(seed)
        self._calls = 0

    @property
    def calls(self) -> int:
        """Number of schedule calls seen so far."""
        return self._calls

    def on_schedule(
        self, now: float, when: float, stream: Optional[Hashable]
    ) -> Tuple[float, int]:
        index = self._calls
        self._calls += 1
        cfg = self.config
        if self._rng.random() >= cfg.p_perturb:
            return when, 0
        extra = self._rng.uniform(0.0, cfg.max_jitter)
        priority = self._rng.randint(-cfg.priority_levels, cfg.priority_levels)
        if extra == 0.0 and priority == 0:
            return when, 0
        self.decisions[index] = (extra, priority)
        return when + extra, priority


class ReplayPolicy(SchedulePolicy):
    """Apply an explicit decision map; identity for every other call."""

    def __init__(self, decisions: Decisions) -> None:
        self.decisions = dict(decisions)
        self._calls = 0

    @property
    def calls(self) -> int:
        return self._calls

    def on_schedule(
        self, now: float, when: float, stream: Optional[Hashable]
    ) -> Tuple[float, int]:
        index = self._calls
        self._calls += 1
        decision = self.decisions.get(index)
        if decision is None:
            return when, 0
        extra, priority = decision
        return when + extra, priority


def decisions_to_jsonable(decisions: Decisions) -> List[List]:
    """Stable JSON form: ``[[call_index, extra_delay, priority], ...]``."""
    return [
        [index, extra, priority]
        for index, (extra, priority) in sorted(decisions.items())
    ]


def decisions_from_jsonable(data: Iterable[Sequence]) -> Decisions:
    """Inverse of :func:`decisions_to_jsonable`."""
    return {int(index): (float(extra), int(priority)) for index, extra, priority in data}
