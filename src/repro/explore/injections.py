"""Adversarial injection grids: failures, mobility, concurrency.

An *injection* is a plain-data dict describing one adversarial action
inside a run — picklable and JSON-serializable so it can live in a
:class:`~repro.campaign.spec.RunPoint`'s explore payload, be content-
hashed, and cross a worker boundary. :func:`draw_injections` samples a
schedule of them from a seeded RNG; :class:`InjectionDriver` arms them
on a built system before the run starts.

Kinds
-----
``fail_mid_coordination``
    Crash a host a fixed delay after the k-th initiation starts, resolve
    the active coordination with the §3.6 policy (abort or Kim-Park
    partial commit), restart the host later, then run the distributed
    rollback protocol to a consistent line.
``handoff``
    Move a host to another cell at a chosen time (requires >= 2 MSSs).
``disconnect``
    §2.2 voluntary disconnection for a bounded duration, with the MSS
    proxy answering checkpoint requests on the host's behalf.
``concurrent_initiation``
    Ask the runner for an extra initiation at a chosen time. Routed
    through the runner's serialization (§3.3's presentation assumption)
    so it probes timing, not the known §3.5 unrestricted-concurrency
    hazard.

Every action is guarded against conflicting system state (already
failed, already disconnected, …); a suppressed action is traced as
``injection_skipped`` so runs stay deterministic and auditable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.checkpointing.disconnect_support import (
    disconnect_process,
    reconnect_process,
)
from repro.checkpointing.failures import FailureInjector, FailurePolicy
from repro.checkpointing.rollback_protocol import DistributedRecovery
from repro.errors import ConfigurationError
from repro.net.mh import MobileHost
from repro.sim.rng import raw_rng
from repro.net.mobility import handoff

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runner import ExperimentRunner
    from repro.core.system import MobileSystem

#: all injection kinds, in the order the grid samples them
INJECTION_KINDS = (
    "fail_mid_coordination",
    "handoff",
    "disconnect",
    "concurrent_initiation",
)

#: retry delay while waiting for the system to be recoverable
_RECOVER_RETRY = 1.0


def draw_injections(
    seed: int,
    n_processes: int,
    n_mss: int,
    horizon: float,
    kinds: Optional[Sequence[str]] = None,
    max_injections: int = 3,
) -> List[Dict[str, Any]]:
    """Sample a deterministic injection schedule from ``seed``.

    ``horizon`` is the expected run length in simulated seconds (timed
    injections land in its middle 85%). Kinds that the topology cannot
    support (``handoff`` with one MSS) are dropped from the grid. The
    count is drawn from ``[0, max_injections]`` — zero keeps a share of
    pure schedule-fuzz runs in every batch.
    """
    grid = [k for k in (kinds if kinds is not None else INJECTION_KINDS)]
    for kind in grid:
        if kind not in INJECTION_KINDS:
            raise ConfigurationError(
                f"unknown injection kind {kind!r}; "
                f"available: {', '.join(INJECTION_KINDS)}"
            )
    if n_mss < 2:
        grid = [k for k in grid if k != "handoff"]
    rng = raw_rng(seed)
    injections: List[Dict[str, Any]] = []
    if not grid:
        return injections
    for _ in range(rng.randint(0, max_injections)):
        kind = rng.choice(grid)
        when = round(rng.uniform(0.05, 0.9) * horizon, 6)
        if kind == "fail_mid_coordination":
            injections.append(
                {
                    "kind": kind,
                    "at_initiation": rng.randint(1, 3),
                    "delay": round(rng.uniform(0.0, 3.0), 6),
                    "victim_offset": rng.randrange(n_processes),
                    "policy": rng.choice(
                        [FailurePolicy.ABORT.value, FailurePolicy.PARTIAL_COMMIT.value]
                    ),
                    "restart_after": round(rng.uniform(2.0, 8.0), 6),
                    "recover_after": round(rng.uniform(0.5, 3.0), 6),
                }
            )
        elif kind == "handoff":
            injections.append(
                {
                    "kind": kind,
                    "time": when,
                    "pid": rng.randrange(n_processes),
                    "mss_offset": rng.randrange(1, n_mss),
                }
            )
        elif kind == "disconnect":
            injections.append(
                {
                    "kind": kind,
                    "time": when,
                    "pid": rng.randrange(n_processes),
                    "duration": round(rng.uniform(0.05, 0.2) * horizon, 6),
                }
            )
        else:  # concurrent_initiation
            injections.append(
                {"kind": kind, "time": when, "pid": rng.randrange(n_processes)}
            )
    return injections


class InjectionDriver:
    """Arm an injection schedule on a built system before the run.

    Construction wires the failure injector and the distributed
    recovery layer; :meth:`install` schedules the actions. Every fail is
    always followed by a restart and a coordinated rollback, so no run
    is left with a permanently dead host (which would turn every later
    initiation into a termination false positive).
    """

    def __init__(
        self,
        system: "MobileSystem",
        runner: "ExperimentRunner",
        injections: Sequence[Dict[str, Any]],
    ) -> None:
        self.system = system
        self.runner = runner
        self.injections = [dict(injection) for injection in injections]
        self.injector = FailureInjector(system)
        self.recovery = DistributedRecovery(system)
        self.fired: List[Dict[str, Any]] = []
        self.skipped: List[Dict[str, Any]] = []
        self._initiations_seen = 0
        self._fail_pending: List[Dict[str, Any]] = []

    def install(self) -> None:
        """Schedule every injection; call once, before the run starts."""
        sim = self.system.sim
        for injection in self.injections:
            kind = injection["kind"]
            if kind == "fail_mid_coordination":
                self._fail_pending.append(injection)
            elif kind == "handoff":
                sim.schedule_at(injection["time"], self._do_handoff, injection)
            elif kind == "disconnect":
                sim.schedule_at(injection["time"], self._do_disconnect, injection)
            elif kind == "concurrent_initiation":
                sim.schedule_at(injection["time"], self._do_initiation, injection)
            else:
                raise ConfigurationError(f"unknown injection kind {kind!r}")
        if self._fail_pending:
            sim.trace.subscribe(self._on_trace)

    def _reattach(self) -> None:
        """Re-subscribe the trace tap after a snapshot restore.

        Mirrors the tail of :meth:`install`: the subscription exists
        only while fail injections are still waiting for their trigger
        initiation, and subscribers are dropped at pickling time.
        """
        if self._fail_pending:
            self.system.sim.trace.subscribe(self._on_trace)

    # -- bookkeeping -----------------------------------------------------
    def _fire(self, injection: Dict[str, Any], **extra: Any) -> None:
        self.fired.append(injection)
        self.system.sim.trace.record(
            self.system.sim.now, "injection", injection=injection["kind"], **extra
        )

    def _skip(self, injection: Dict[str, Any], reason: str) -> None:
        self.skipped.append(injection)
        self.system.sim.trace.record(
            self.system.sim.now,
            "injection_skipped",
            injection=injection["kind"],
            reason=reason,
        )

    def _mobile_host(self, pid: int) -> Optional[MobileHost]:
        host = self.system.processes[pid].host
        return host if isinstance(host, MobileHost) else None

    # -- failures --------------------------------------------------------
    def _on_trace(self, record) -> None:
        if record.kind != "initiation":
            return
        self._initiations_seen += 1
        due = [
            injection
            for injection in self._fail_pending
            if injection["at_initiation"] == self._initiations_seen
        ]
        for injection in due:
            self._fail_pending.remove(injection)
            self.system.sim.schedule(
                injection["delay"], self._do_fail, injection, record["pid"]
            )

    def _do_fail(self, injection: Dict[str, Any], initiator_pid: int) -> None:
        victim = (initiator_pid + injection["victim_offset"]) % len(
            self.system.processes
        )
        host = self._mobile_host(victim)
        if victim in self.injector.failed_pids:
            self._skip(injection, "victim already failed")
            return
        if host is not None and host.disconnected:
            self._skip(injection, "victim disconnected")
            return
        self.injector.policy = FailurePolicy(injection["policy"])
        self._fire(injection, pid=victim, policy=injection["policy"])
        self.injector.fail_process(victim)
        self.system.sim.schedule(
            injection["restart_after"],
            self._do_restart,
            victim,
            injection["recover_after"],
        )

    def _do_restart(self, victim: int, recover_after: float) -> None:
        if victim not in self.injector.failed_pids:
            return
        self.injector.restart_process(victim)
        self.system.sim.schedule(recover_after, self._do_recover, victim)

    def _do_recover(self, victim: int) -> None:
        if (
            self.recovery.active
            or self.injector.failed_pids
            or any(
                host is not None and host.disconnected
                for host in map(self._mobile_host, self.system.processes)
            )
        ):
            # Another rollback is running, another host is still down
            # (its handlers would drop the rollback_request and stall the
            # round), or a host is voluntarily disconnected (§2.2 forbids
            # it sending, so it could never ack): try again shortly.
            # Restarts and reconnections are always scheduled, so this
            # terminates.
            self.system.sim.schedule(_RECOVER_RETRY, self._do_recover, victim)
            return
        self.recovery.recover(victim)

    # -- mobility --------------------------------------------------------
    def _do_handoff(self, injection: Dict[str, Any]) -> None:
        pid = injection["pid"]
        host = self._mobile_host(pid)
        if host is None:
            self._skip(injection, "not a mobile host")
            return
        if host.disconnected or pid in self.injector.failed_pids:
            self._skip(injection, "host unavailable")
            return
        mss_list = self.system.mss_list
        current = host.mss
        if current is None:
            self._skip(injection, "host detached")
            return
        target = mss_list[
            (mss_list.index(current) + injection["mss_offset"]) % len(mss_list)
        ]
        if target is current:
            self._skip(injection, "same cell")
            return
        self._fire(injection, pid=pid, dst=target.name)
        handoff(self.system.network, host, target)

    def _do_disconnect(self, injection: Dict[str, Any]) -> None:
        pid = injection["pid"]
        host = self._mobile_host(pid)
        if host is None:
            self._skip(injection, "not a mobile host")
            return
        if host.disconnected or pid in self.injector.failed_pids:
            self._skip(injection, "host unavailable")
            return
        if self.system.processes[pid].blocked:
            self._skip(injection, "host blocked (recovery in progress)")
            return
        self._fire(injection, pid=pid, duration=injection["duration"])
        home = host.mss
        disconnect_process(self.system, pid)
        self.system.sim.schedule(injection["duration"], self._do_reconnect, pid, home)

    def _do_reconnect(self, pid: int, home) -> None:
        host = self._mobile_host(pid)
        if host is None or not host.disconnected:
            return
        reconnect_process(self.system, pid, new_mss=home)

    # -- concurrency -----------------------------------------------------
    def _do_initiation(self, injection: Dict[str, Any]) -> None:
        self._fire(injection, pid=injection["pid"])
        self.runner.request_initiation(injection["pid"])
