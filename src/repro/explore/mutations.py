"""Deliberately planted protocol mutations (explorer self-test).

A fuzzer that never finds anything proves nothing. These mutations each
break the mutable-checkpoint algorithm in a small, realistic way —
exactly the kind of "looks right, loses a race" bug §2.4's impossibility
argument warns about — so the explorer can demonstrate end-to-end that
it finds the violation and shrinks it to a replayable counterexample.

Mutations wrap :class:`~repro.checkpointing.mutable.MutableCheckpointProtocol`
(the only protocol explore mutates), overriding ``_build_process`` with
a subtly broken process subclass. They are *not* registered in the
protocol registry: you opt in via ``--mutation`` / the explore spec, so
no production path can pick one up by accident.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.checkpointing.mutable import (
    MutableCheckpointProcess,
    MutableCheckpointProtocol,
)
from repro.checkpointing.protocol import CheckpointProtocol, ProcessEnv
from repro.errors import ConfigurationError
from repro.net.message import ComputationMessage


class _SkipMutableProcess(MutableCheckpointProcess):
    """Mutation: the receiver never takes a mutable checkpoint.

    The csn bookkeeping and cp_state propagation survive, so the run
    *looks* healthy — but a message received from a checkpointing peer
    after we sent in the current interval is no longer protected, and
    the committed line can orphan it (the §2.4 z-dependency race).
    """

    def on_receive_computation(
        self, message: ComputationMessage, deliver: Callable[[], None]
    ) -> None:
        j = message.src_pid
        recv_csn, msg_trigger = message.protocol_tags()
        if recv_csn > self.csn[j]:
            self.csn[j] = recv_csn
            if msg_trigger is not None and not self.cp_state:
                self.cp_state = True
                self.csn[self.pid] += 1
                self.own_trigger = msg_trigger
        self.r[j] = True
        deliver()


class _ForgetSentProcess(MutableCheckpointProcess):
    """Mutation: the ``sent`` flag is cleared on every receive.

    §3.3's mutable-checkpoint condition is "have I *sent* since my last
    checkpoint"; forgetting the flag makes the condition almost always
    false, so mutable checkpoints are skipped precisely in the schedules
    where they matter. Rarer than :class:`_SkipMutableProcess` — a good
    target for schedule fuzzing rather than plain runs.
    """

    def on_receive_computation(
        self, message: ComputationMessage, deliver: Callable[[], None]
    ) -> None:
        self.sent = False
        super().on_receive_computation(message, deliver)


class SkipMutableMutation(MutableCheckpointProtocol):
    """``skip-mutable``: receivers never take mutable checkpoints."""

    name = "mutable[skip-mutable]"

    def _build_process(self, env: ProcessEnv) -> MutableCheckpointProcess:
        return _SkipMutableProcess(env, self)


class ForgetSentMutation(MutableCheckpointProtocol):
    """``forget-sent``: the sent flag is lost on every receive."""

    name = "mutable[forget-sent]"

    def _build_process(self, env: ProcessEnv) -> MutableCheckpointProcess:
        return _ForgetSentProcess(env, self)


#: mutation name -> protocol factory (kwargs as for MutableCheckpointProtocol)
MUTATIONS: Dict[str, Callable[..., MutableCheckpointProtocol]] = {
    "skip-mutable": SkipMutableMutation,
    "forget-sent": ForgetSentMutation,
}


def available_mutations() -> list:
    """Names accepted by :func:`build_explore_protocol`."""
    return sorted(MUTATIONS)


def build_explore_protocol(
    mutation: Optional[str], protocol: str, protocol_params: Dict
) -> CheckpointProtocol:
    """The protocol for an explore run, mutated if requested.

    Without a mutation this defers to the registry; with one, the
    protocol must be ``mutable`` (mutations are defined against it).
    """
    from repro.core.registry import build_protocol

    if mutation is None:
        return build_protocol(protocol, **protocol_params)
    factory = MUTATIONS.get(mutation)
    if factory is None:
        raise ConfigurationError(
            f"unknown mutation {mutation!r}; "
            f"available: {', '.join(available_mutations())}"
        )
    if protocol != "mutable":
        raise ConfigurationError(
            f"mutations are defined against the 'mutable' protocol, "
            f"not {protocol!r}"
        )
    return factory(**protocol_params)
