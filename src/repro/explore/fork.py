"""Fork-from-counterexample: replay only the tail of a violating run.

A full counterexample replay re-executes the run from event zero. When
the original run was taken with in-memory snapshots
(``run_explore_once(..., snapshot_every=N)``), forking restores the
snapshot nearest the end and re-executes only the remaining schedule —
the restored trace log already contains everything before the fork
point, so the invariant suite judges the *complete* history and
reports exactly the violations the uninterrupted run reported.

This is the simulator-level analogue of the paper's rollback-recovery:
roll the whole world back to a consistent saved state, then let the
deterministic schedule carry it forward again.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SnapshotError
from repro.explore.fuzz import DEFAULT_EXPLORE_MAX_EVENTS, ExploreRun
from repro.explore.invariants import build_invariants, check_invariants
from repro.snapshot import SnapshotMeta, resume_memory


def fork_from_counterexample(
    run: ExploreRun,
    snapshot_index: int = -1,
    invariants: Optional[List[str]] = None,
    max_events: int = DEFAULT_EXPLORE_MAX_EVENTS,
) -> ExploreRun:
    """Restore a snapshot from ``run`` and re-execute the tail.

    ``run`` must come from :func:`~repro.explore.fuzz.run_explore_once`
    with ``snapshot_every`` set. ``snapshot_index`` picks which
    in-memory snapshot to fork from (default ``-1``: the one nearest
    the end, i.e. the cheapest fork). Returns a new :class:`ExploreRun`
    whose trace, schedule decisions, and violations are identical to
    the original's — the acceptance check for fork-from-snapshot.
    """
    if run.snapshotter is None or not run.snapshotter.memory:
        raise SnapshotError(
            "run has no in-memory snapshots to fork from "
            "(pass snapshot_every= to run_explore_once)"
        )
    image = resume_memory(run.snapshotter.memory[snapshot_index])
    # Re-execute the remainder exactly as run_explore_once would have:
    # finish the bounded run, then drain to quiescence. The restored
    # heap already holds every pending timer and in-flight message, so
    # the dispatch order — and therefore the trace tail — is fixed.
    image.runner.resume(max_events=max_events)
    image.system.run_until_quiescent(max_events=max_events)
    violations = check_invariants(
        image.system.sim.trace, build_invariants(invariants)
    )
    return ExploreRun(
        system=image.system,
        policy=image.system.sim.policy,
        driver=image.driver,
        violations=violations,
        snapshotter=image.snapshotter,
    )


def fork_meta(run: ExploreRun, snapshot_index: int = -1) -> SnapshotMeta:
    """Header of the snapshot a fork would restore (for reporting)."""
    if run.snapshotter is None or not run.snapshotter.memory:
        raise SnapshotError("run has no in-memory snapshots")
    meta, _ = run.snapshotter.memory[snapshot_index]
    return meta
