"""Seeded fuzz batches: schedule perturbation × adversarial injections.

An :class:`ExploreSpec` describes a batch of adversarial runs: a base
system/workload (small and fast by design), a number of seeds, the
perturbation knobs, the injection grid, an optional planted mutation,
and the invariant selection. ``expand()`` derives one
:class:`~repro.campaign.spec.RunPoint` per seed — each carrying its
content-derived run seed, perturbation seed, and a concrete injection
schedule in its ``explore`` payload — so the batch rides the existing
:class:`~repro.campaign.engine.CampaignEngine` and fans out over
workers bit-identically (every point is hermetic).

:func:`execute_explore_point` is the worker entry point; it builds the
system, installs the :class:`~repro.explore.policy.RecordingPolicy` and
the :class:`~repro.explore.injections.InjectionDriver`, runs to
quiescence, evaluates the invariant suite, and — on violation — runs
the delta-debugging shrinker inside the worker so the record already
contains a minimized, replayable counterexample.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.cache import derive_seed, spec_hash
from repro.campaign.engine import CampaignEngine, CampaignReport
from repro.campaign.spec import WORKLOAD_KINDS, RunPoint
from repro.campaign.store import PointRecord, ResultStore
from repro.core.config import RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.errors import ConfigurationError
from repro.explore.injections import INJECTION_KINDS, InjectionDriver, draw_injections
from repro.explore.invariants import Violation, build_invariants, check_invariants
from repro.explore.mutations import MUTATIONS, build_explore_protocol
from repro.explore.policy import (
    Decisions,
    PerturbationConfig,
    RecordingPolicy,
    ReplayPolicy,
    decisions_to_jsonable,
)
from repro.sim.export import dumps_trace
from repro.sim.trace import TraceLog

#: runaway guard for explore points — small systems, short horizons
DEFAULT_EXPLORE_MAX_EVENTS = 5_000_000


def trace_digest(trace: TraceLog) -> str:
    """Content hash of a trace's canonical JSONL export.

    Two runs with the same digest produced bit-identical schedules —
    this is what the determinism acceptance tests compare.
    """
    return hashlib.sha256(dumps_trace(trace).encode("utf-8")).hexdigest()[:32]


@dataclass
class ExploreSpec:
    """One fuzz batch: base run × seeds × perturbation × injections."""

    name: str = "explore"
    protocol: str = "mutable"
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    workload: str = "p2p"
    workload_params: Dict[str, Any] = field(
        default_factory=lambda: {"mean_send_interval": 2.0}
    )
    # The default system is deliberately adversarial, not realistic: a
    # slow wired backbone widens the §2.4 race window (a tagged message
    # racing a request that crawls a dependency chain), and a short
    # checkpoint interval keeps the dependency graph sparse so depth>=2
    # chains exist at all. Under the paper's fast-network defaults the
    # race is so narrow that even planted bugs almost never fire.
    system_params: Dict[str, Any] = field(
        default_factory=lambda: {
            "n_processes": 6,
            "n_mss": 2,
            "checkpoint_interval": 8.0,
            "trace_messages": True,
            "network": {"wired_latency": 0.2},
        }
    )
    run_params: Dict[str, Any] = field(
        default_factory=lambda: {
            "max_initiations": 8,
            "warmup_initiations": 0,
            "time_limit": 250.0,
        }
    )
    n_seeds: int = 25
    seed: int = 7
    perturb: Dict[str, Any] = field(
        default_factory=lambda: PerturbationConfig(max_jitter=0.1).to_dict()
    )
    injection_kinds: Optional[List[str]] = None
    max_injections: int = 3
    mutation: Optional[str] = None
    shrink: bool = True
    invariants: Optional[List[str]] = None
    max_events: int = DEFAULT_EXPLORE_MAX_EVENTS

    def __post_init__(self) -> None:
        if self.n_seeds < 1:
            raise ConfigurationError("need at least one seed")
        if self.workload not in WORKLOAD_KINDS:
            raise ConfigurationError(f"unknown workload kind {self.workload!r}")
        if self.mutation is not None and self.mutation not in MUTATIONS:
            raise ConfigurationError(
                f"unknown mutation {self.mutation!r}; "
                f"available: {', '.join(sorted(MUTATIONS))}"
            )
        if self.run_params.get("time_limit") is None:
            raise ConfigurationError(
                "explore runs need run_params['time_limit'] (injections can "
                "stall coordinations; the limit bounds every run)"
            )
        PerturbationConfig.from_dict(self.perturb)
        RunConfig(**self.run_params)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "protocol": self.protocol,
            "protocol_params": dict(self.protocol_params),
            "workload": self.workload,
            "workload_params": dict(self.workload_params),
            "system_params": dict(self.system_params),
            "run_params": dict(self.run_params),
            "n_seeds": self.n_seeds,
            "seed": self.seed,
            "perturb": dict(self.perturb),
            "injection_kinds": (
                None if self.injection_kinds is None else list(self.injection_kinds)
            ),
            "max_injections": self.max_injections,
            "mutation": self.mutation,
            "shrink": self.shrink,
            "invariants": None if self.invariants is None else list(self.invariants),
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExploreSpec":
        return cls(**data)

    def expand(self) -> List[RunPoint]:
        """One hermetic RunPoint per seed, injections drawn up front."""
        n_processes = self.system_params.get("n_processes", 16)
        n_mss = self.system_params.get("n_mss", 1)
        horizon = float(self.run_params["time_limit"])
        points: List[RunPoint] = []
        for index in range(self.n_seeds):
            identity = {
                "explore": self.name,
                "seed_index": index,
                "protocol": self.protocol,
                "mutation": self.mutation,
            }
            run_seed = derive_seed(self.seed, {**identity, "role": "run"})
            perturb_seed = derive_seed(self.seed, {**identity, "role": "perturb"})
            injection_seed = derive_seed(
                self.seed, {**identity, "role": "injections"}
            )
            injections = draw_injections(
                injection_seed,
                n_processes=n_processes,
                n_mss=n_mss,
                horizon=horizon,
                kinds=self.injection_kinds,
                max_injections=self.max_injections,
            )
            points.append(
                RunPoint(
                    protocol=self.protocol,
                    protocol_params=dict(self.protocol_params),
                    workload=self.workload,
                    workload_params=dict(self.workload_params),
                    system_params=dict(self.system_params),
                    run_params=dict(self.run_params),
                    seed=run_seed,
                    max_events=self.max_events,
                    replicate=index,
                    explore={
                        "seed_index": index,
                        "perturb_seed": perturb_seed,
                        "perturb": dict(self.perturb),
                        "injections": injections,
                        "mutation": self.mutation,
                        "shrink": self.shrink,
                        "invariants": (
                            None if self.invariants is None else list(self.invariants)
                        ),
                    },
                )
            )
        return points


@dataclass
class ExploreRun:
    """Everything one adversarial run produced (in-process view)."""

    system: MobileSystem
    policy: Any
    driver: InjectionDriver
    violations: List[Violation]
    #: set when the run was taken with ``snapshot_every`` — holds the
    #: in-memory snapshots that fork-from-counterexample restores
    snapshotter: Optional[Any] = None

    @property
    def trace(self) -> TraceLog:
        return self.system.sim.trace

    @property
    def decisions(self) -> Decisions:
        return dict(self.policy.decisions)


def run_explore_once(
    point: RunPoint,
    decisions: Optional[Decisions] = None,
    injections: Optional[Sequence[Dict[str, Any]]] = None,
    snapshot_every: Optional[int] = None,
) -> ExploreRun:
    """Execute one adversarial run and evaluate the invariant suite.

    ``decisions`` switches from a fresh :class:`RecordingPolicy` (seeded
    from the point's explore payload) to a :class:`ReplayPolicy` — the
    shrinker's subset experiments and counterexample replay both use it.
    ``injections`` overrides the point's injection schedule the same way.
    ``snapshot_every`` attaches an in-memory snapshotter taking a
    snapshot every N events; the resulting :class:`ExploreRun` then
    supports :func:`~repro.explore.fork.fork_from_counterexample`.
    Snapshot trigger checks run between events, so the schedule (and
    every violation) is identical with or without them.
    """
    explore = point.explore or {}
    protocol = build_explore_protocol(
        explore.get("mutation"), point.protocol, point.protocol_params
    )
    config = SystemConfig.from_params(point.system_params, seed=point.seed)
    system = MobileSystem(config, protocol)
    if decisions is None:
        policy = RecordingPolicy(
            explore["perturb_seed"],
            PerturbationConfig.from_dict(explore.get("perturb", {})),
        )
    else:
        policy = ReplayPolicy(decisions)
    system.sim.set_policy(policy)
    workload_config_cls, workload_cls = WORKLOAD_KINDS[point.workload]
    workload = workload_cls(system, workload_config_cls(**point.workload_params))
    runner = ExperimentRunner(system, workload, RunConfig(**point.run_params))
    driver = InjectionDriver(
        system,
        runner,
        explore.get("injections", ()) if injections is None else injections,
    )
    driver.install()
    snapshotter = None
    if snapshot_every is not None:
        from repro.snapshot import SnapshotPolicy, Snapshotter

        snapshotter = Snapshotter(
            runner,
            SnapshotPolicy(every_events=snapshot_every),
            directory=None,  # in-memory: forking never needs the disk
            driver=driver,
        )
        snapshotter.install()
    runner.run(max_events=point.max_events)
    # Drain completely (pending injections, recovery rounds, commit
    # waves) so the termination invariant judges a finished world.
    system.run_until_quiescent(max_events=point.max_events)
    violations = check_invariants(
        system.sim.trace, build_invariants(explore.get("invariants"))
    )
    return ExploreRun(
        system=system,
        policy=policy,
        driver=driver,
        violations=violations,
        snapshotter=snapshotter,
    )


def run_explore_point(point: RunPoint) -> Dict[str, Any]:
    """One seed end to end: run, check, and (on violation) shrink."""
    run = run_explore_once(point)
    result: Dict[str, Any] = {
        "verdict": "violation" if run.violations else "ok",
        "seed_index": (point.explore or {}).get("seed_index"),
        "violations": [v.to_dict() for v in run.violations],
        "schedule_digest": trace_digest(run.trace),
        "perturbations": len(run.policy.decisions),
        "schedule_calls": run.policy.calls,
        "injections_fired": len(run.driver.fired),
        "events": run.system.sim.events_processed,
        "sim_time": run.system.sim.now,
    }
    if run.violations and (point.explore or {}).get("shrink", True):
        from repro.explore.shrink import shrink_counterexample

        result["counterexample"] = shrink_counterexample(point, run)
    return result


def execute_explore_point(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point for explore points (pluggable engine executor).

    Mirrors :func:`repro.campaign.engine.execute_point`: never raises,
    returns a :class:`~repro.campaign.store.PointRecord`-shaped dict.
    An invariant violation is still ``status="ok"`` — the *point* ran
    fine; the verdict lives in the result payload.
    """
    started = time.perf_counter()
    point_dict = dict(payload)
    point_hash = spec_hash(point_dict)
    try:
        point = RunPoint.from_dict(point_dict)
        result = run_explore_point(point)
        return {
            "point_hash": point_hash,
            "status": "ok",
            "point": point.to_dict(),
            "result": result,
            "wall_time": time.perf_counter() - started,
        }
    except Exception as exc:  # noqa: BLE001 — failures become records
        return {
            "point_hash": point_hash,
            "status": "failed",
            "point": point_dict,
            "error": f"{type(exc).__name__}: {exc}",
            "meta": {"traceback": traceback.format_exc()},
            "wall_time": time.perf_counter() - started,
        }


@dataclass
class ExploreReport:
    """Batch outcome: per-seed verdicts plus the campaign bookkeeping."""

    spec: ExploreSpec
    campaign: CampaignReport

    @property
    def records(self) -> List[PointRecord]:
        return self.campaign.records

    @property
    def failed(self) -> List[PointRecord]:
        """Points that crashed (infrastructure errors, not violations)."""
        return self.campaign.failed

    @property
    def violations(self) -> List[Tuple[RunPoint, Dict[str, Any]]]:
        """(point, result) for every seed whose verdict was violation."""
        found = []
        for point, record in zip(self.campaign.points, self.campaign.records):
            if record.ok and record.result.get("verdict") == "violation":
                found.append((point, record.result))
        return found

    @property
    def clean(self) -> bool:
        return not self.violations and not self.failed

    def batch_digest(self) -> str:
        """Hash of every seed's (point, schedule, verdict) triple.

        Identical for any worker count and any execution order — the
        bit-identity acceptance check for fuzz batches.
        """
        parts = []
        for record in sorted(self.campaign.records, key=lambda r: r.point_hash):
            result = record.result or {}
            parts.append(
                f"{record.point_hash}:{result.get('schedule_digest')}"
                f":{result.get('verdict')}"
            )
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:32]

    def summary(self) -> str:
        n = len(self.campaign.records)
        n_violations = len(self.violations)
        n_failed = len(self.failed)
        status = "0 violations, CLEAN" if self.clean else (
            f"{n_violations} violation(s), {n_failed} crashed"
        )
        return (
            f"explore {self.spec.name}: {n} seeds, {status}, "
            f"batch digest {self.batch_digest()}"
        )


def run_explore_batch(
    spec: ExploreSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    quiet: bool = True,
) -> ExploreReport:
    """Fan the batch out over the campaign engine and wrap the report."""
    engine = CampaignEngine(
        spec.expand(),
        store=store,
        workers=workers,
        quiet=quiet,
        executor=execute_explore_point,
    )
    engine.name = spec.name
    return ExploreReport(spec=spec, campaign=engine.run())


# -- presets ------------------------------------------------------------
def _quick_spec() -> ExploreSpec:
    """Small 6-process, 2-cell system: seconds per seed, full grid."""
    return ExploreSpec(name="quick")


def _mobility_spec() -> ExploreSpec:
    """Mobility-heavy grid: handoffs and disconnections only."""
    return ExploreSpec(
        name="mobility",
        injection_kinds=["handoff", "disconnect", "concurrent_initiation"],
        max_injections=4,
    )


def _failures_spec() -> ExploreSpec:
    """Failure-heavy grid: crashes mid-coordination, both §3.6 policies."""
    return ExploreSpec(
        name="failures",
        injection_kinds=["fail_mid_coordination", "concurrent_initiation"],
        max_injections=2,
    )


EXPLORE_PRESETS = {
    "quick": _quick_spec,
    "mobility": _mobility_spec,
    "failures": _failures_spec,
}


def explore_preset(name: str) -> ExploreSpec:
    """A built-in explore batch by name."""
    try:
        return EXPLORE_PRESETS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown explore preset {name!r}; "
            f"available: {', '.join(sorted(EXPLORE_PRESETS))}"
        ) from None
