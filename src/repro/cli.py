"""Command-line interface.

Installed as ``repro-sim``; also runnable as ``python -m repro.cli``.

Subcommands::

    repro-sim protocols                    list available protocols
    repro-sim run --protocol mutable ...   run one experiment
    repro-sim figures                      reproduce Figs. 1-4
    repro-sim table1                       the three-way comparison
    repro-sim campaign --preset fig5 ...   parallel sweep with resume
    repro-sim explore --seeds 100 ...      adversarial schedule fuzzing
    repro-sim profile ...                  kernel profile of one run
    repro-sim inspect trace.jsonl ...      causal wave forensics on a trace
    repro-sim snapshots snaps/ ...         inspect simulator snapshots
    repro-sim serve --data-dir data ...    always-on campaign service (HTTP)
    repro-sim submit --preset smoke ...    submit a grid to a running service
    repro-sim top --url http://...         live terminal view of the service
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, List, Optional

from repro.analysis.comparison import (
    CostParameters,
    analytic_table,
    format_table,
    measured_row,
)
from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.core.config import (
    GroupWorkloadConfig,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.registry import available_protocols, build_protocol
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.group import GroupWorkload
from repro.workload.point_to_point import PointToPointWorkload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Mutable-checkpoints reproduction (Cao & Singhal)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("protocols", help="list available checkpointing protocols")

    run = sub.add_parser("run", help="run one experiment and print the summary")
    run.add_argument("--protocol", default="mutable", choices=available_protocols())
    run.add_argument("--processes", "--hosts", dest="processes",
                     type=int, default=16,
                     help="number of mobile hosts / processes (the "
                     "protocol scales to thousands; see docs/DESIGN.md)")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--cells", type=int, default=1, metavar="M",
                     help="number of cells / support stations "
                     "(SystemConfig.n_mss; default 1, the paper's "
                     "single-LAN model)")
    run.add_argument("--shards", type=int, default=1, metavar="N",
                     help="partition the simulation by cell across N "
                     "shards on the conservative windowed kernel; "
                     "results are bit-identical to --shards 1 "
                     "(see docs/DESIGN.md)")
    run.add_argument("--rate", type=float, default=0.01,
                     help="messages per second per process")
    run.add_argument("--initiations", type=int, default=10)
    run.add_argument("--workload", choices=["p2p", "group"], default="p2p")
    run.add_argument("--group-ratio", type=float, default=1000.0)
    run.add_argument("--interval", type=float, default=900.0,
                     help="checkpoint interval in seconds")
    run.add_argument("--export-trace", "--trace-out", dest="export_trace",
                     metavar="PATH",
                     help="write the run's trace as JSON lines")
    run.add_argument("--verify", action="store_true",
                     help="check the final recovery line for consistency")
    run.add_argument("--flight-recorder", type=int, metavar="N", default=None,
                     help="flight-recorder tracing: keep only the most "
                     "recent N DEBUG records in memory (implies message "
                     "tracing; --export-trace still archives every record "
                     "via the streaming sink)")
    run.add_argument("--snapshot-every", type=int, metavar="N", default=None,
                     help="snapshot the whole simulation every N events")
    run.add_argument("--snapshot-interval", type=float, metavar="S",
                     default=None,
                     help="snapshot every S simulated seconds")
    run.add_argument("--snapshot-dir", metavar="DIR", default="snapshots",
                     help="where .rsnap files go (default: snapshots/)")
    run.add_argument("--snapshot-keep", type=int, metavar="K", default=None,
                     help="keep only the newest K snapshots (default: all)")
    run.add_argument("--resume-from", metavar="PATH", default=None,
                     help="resume from a .rsnap file (or the latest one in "
                     "a directory) instead of starting fresh; the snapshot "
                     "carries the full configuration, so the other run "
                     "flags are ignored")
    run.add_argument("--timeseries-window", type=float, metavar="S",
                     default=None,
                     help="sample windowed telemetry every S simulated "
                     "seconds (deterministic; trace hashes are unchanged)")
    run.add_argument("--timeseries-out", metavar="PATH", default=None,
                     help="write the windowed telemetry (JSON lines, or "
                     "TSV if PATH ends in .tsv; needs --timeseries-window)")
    run.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="dump the final metrics registry snapshot as "
                     "canonical JSON (sorted keys)")

    sub.add_parser("figures", help="reproduce the paper's Figs. 1-4")
    sub.add_parser("table1", help="run the three-way Table 1 comparison")

    report = sub.add_parser(
        "report", help="regenerate the full paper-vs-measured report"
    )
    report.add_argument("--output", default="report.md")
    report.add_argument("--scale", choices=["quick", "default", "full"],
                        default="default")

    verify = sub.add_parser(
        "verify-trace", help="re-verify an archived trace (JSON lines)"
    )
    verify.add_argument("path")

    campaign = sub.add_parser(
        "campaign",
        help="run a sweep of experiments on a worker pool, with a "
        "durable result store and crash resume",
    )
    source = campaign.add_mutually_exclusive_group(required=True)
    source.add_argument("--spec", metavar="PATH",
                        help="campaign spec as a JSON file")
    source.add_argument("--preset", choices=sorted(_campaign_presets()),
                        help="a built-in campaign")
    campaign.add_argument("--store", metavar="PATH",
                          help="JSONL result store (default: "
                          "campaign-<name>.jsonl; completed points in it "
                          "are skipped)")
    campaign.add_argument("--no-store", action="store_true",
                          help="keep results in memory only")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (results are identical "
                          "for any worker count)")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress per-point progress lines")
    campaign.add_argument("--list", action="store_true",
                          help="print the expanded points and exit")
    campaign.add_argument("--trace-out", metavar="DIR",
                          help="save every executed point's full trace as "
                          "DIR/<point_hash>.jsonl")
    campaign.add_argument("--snapshot-dir", metavar="DIR",
                          help="periodically snapshot in-progress points "
                          "under DIR/<point_hash>/; a killed campaign "
                          "resumes them mid-run instead of restarting")
    campaign.add_argument("--snapshot-every", type=int, metavar="N",
                          default=None,
                          help="events between point snapshots "
                          "(default: 2000; needs --snapshot-dir)")

    explore = sub.add_parser(
        "explore",
        help="adversarial schedule exploration: seeded fuzz batches with "
        "invariant checking and counterexample shrinking",
    )
    explore.add_argument("--preset", choices=sorted(_explore_presets()),
                         default="quick", help="a built-in explore batch")
    explore.add_argument("--seeds", type=int, default=None,
                         help="number of seeds (overrides the preset)")
    explore.add_argument("--seed", type=int, default=None,
                         help="master seed (overrides the preset)")
    explore.add_argument("--mutation", metavar="NAME",
                         help="plant a protocol mutation (self-test mode); "
                         "see repro.explore.mutations")
    explore.add_argument("--no-shrink", action="store_true",
                         help="report violations without minimizing them")
    explore.add_argument("--workers", type=int, default=1,
                         help="worker processes (verdicts are identical "
                         "for any worker count)")
    explore.add_argument("--store", metavar="PATH",
                         help="JSONL result store (default: in-memory; "
                         "completed seeds in it are skipped)")
    explore.add_argument("--out", metavar="DIR", default="explore-out",
                         help="where violation counterexamples and their "
                         "replayed traces are written")
    explore.add_argument("--quiet", action="store_true",
                         help="suppress per-seed progress lines")

    profile = sub.add_parser(
        "profile",
        help="run one experiment under the kernel profiler and print "
        "per-event-kind timing, heap stats, and the metrics snapshot",
    )
    profile.add_argument("--protocol", default="mutable",
                         choices=available_protocols())
    profile.add_argument("--processes", type=int, default=16)
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument("--rate", type=float, default=0.01,
                         help="messages per second per process")
    profile.add_argument("--initiations", type=int, default=10)
    profile.add_argument("--trace-messages", action="store_true",
                         help="profile with DEBUG message tracing on "
                         "(default: off, the throughput configuration)")
    profile.add_argument("--top", type=int, default=15,
                         help="event kinds to show (by total time)")
    profile.add_argument("--json", metavar="PATH",
                         help="also dump profile + metrics as JSON")
    profile.add_argument("--flamegraph", metavar="PATH",
                         help="also write the event timings in collapsed-"
                         "stack format (flamegraph.pl / speedscope input)")

    inspect = sub.add_parser(
        "inspect",
        help="causal wave forensics on an exported trace: per-wave "
        "reports, causal chains back to the initiator, Mermaid/DOT "
        "diagrams",
    )
    inspect.add_argument("path", nargs="?", default=None,
                         help="trace file (JSON lines, e.g. from "
                         "run --export-trace); optional with "
                         "--from-snapshot")
    inspect.add_argument("--wave", type=int, metavar="N", default=None,
                         help="restrict to one wave (0-based index)")
    inspect.add_argument("--explain", type=int, metavar="PID", default=None,
                         help="print the causal chain explaining why PID "
                         "checkpointed")
    inspect.add_argument("--processes", type=int, default=None,
                         help="process count (default: inferred from the "
                         "trace)")
    inspect.add_argument("--from-snapshot", metavar="DIR", default=None,
                         help="time-travel: instead of trusting the trace "
                         "file (which a flight recorder may have truncated), "
                         "resume the nearest .rsnap in DIR and regenerate "
                         "the records at full DEBUG fidelity, then inspect "
                         "the replayed trace")
    inspect.add_argument("--window-start", type=float, metavar="T",
                         default=None,
                         help="sim time the window of interest starts at; "
                         "picks the nearest snapshot at or before T "
                         "(default: the earliest snapshot)")
    fmt = inspect.add_mutually_exclusive_group()
    fmt.add_argument("--mermaid", action="store_true",
                     help="emit a Mermaid sequence diagram (needs --wave)")
    fmt.add_argument("--dot", action="store_true",
                     help="emit a Graphviz digraph (needs --wave)")
    fmt.add_argument("--json", dest="as_json", action="store_true",
                     help="emit the full report as JSON")

    serve = sub.add_parser(
        "serve",
        help="run the always-on campaign service: an HTTP front end over "
        "a durable SQLite result store with a global dedup cache, async "
        "job queue, and crash-durable jobs",
    )
    serve.add_argument("--data-dir", metavar="DIR", default="service-data",
                       help="where results.sqlite and point snapshots live "
                       "(default: service-data/)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (default: 8765; 0 picks a free one)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes shared across jobs")
    serve.add_argument("--snapshot-every", type=int, metavar="N",
                       default=None,
                       help="events between in-progress point snapshots "
                       "(default: 2000)")
    serve.add_argument("--import", dest="import_jsonl", metavar="PATH",
                       action="append", default=[],
                       help="seed the cache from a JSONL campaign store "
                       "before serving (repeatable)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    submit = sub.add_parser(
        "submit",
        help="submit a grid to a running campaign service and (by "
        "default) wait for the results",
    )
    what = submit.add_mutually_exclusive_group(required=True)
    what.add_argument("--preset", choices=sorted(_campaign_presets()),
                      help="a built-in campaign")
    what.add_argument("--spec", metavar="PATH",
                      help="campaign spec as a JSON file")
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service base URL (default: "
                        "http://127.0.0.1:8765)")
    submit.add_argument("--name", default=None,
                        help="job name shown in listings (default: the "
                        "spec name)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id and return immediately")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up waiting after this many seconds")
    submit.add_argument("--tolerate-outages", action="store_true",
                        help="keep polling through service restarts "
                        "(crash-durable jobs finish on their own)")
    submit.add_argument("--results-json", metavar="PATH", default=None,
                        help="write the job's canonical results document "
                        "(sorted-key JSON, byte-stable across identical "
                        "resubmissions) to PATH")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress per-point result lines")

    top = sub.add_parser(
        "top",
        help="live terminal view of a running campaign service: jobs, "
        "rates, and per-job activity sparklines, refreshed in place",
    )
    top.add_argument("--url", default="http://127.0.0.1:8765",
                     help="service base URL (default: "
                     "http://127.0.0.1:8765)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between refreshes (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no ANSI "
                     "clearing; what CI's metrics-smoke job uses)")

    snapshots = sub.add_parser(
        "snapshots",
        help="inspect simulator snapshots: list a directory, show one "
        "snapshot's header and protocol state, verify integrity",
    )
    snapshots.add_argument("target",
                           help="a .rsnap file or a directory of them")
    snapshots.add_argument("--show", action="store_true",
                           help="also print each snapshot's full header "
                           "and, for a single file, the per-process "
                           "protocol state")
    snapshots.add_argument("--verify", action="store_true",
                           help="read each payload, check its hash, and "
                           "test that it restores to a live simulation")
    return parser


def _explore_presets() -> List[str]:
    from repro.explore.fuzz import EXPLORE_PRESETS

    return list(EXPLORE_PRESETS)


def _cmd_explore(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.campaign.store import ResultStore
    from repro.errors import ReproError
    from repro.explore import (
        explore_preset,
        replay_counterexample,
        run_explore_batch,
    )
    from repro.sim.export import save_trace

    try:
        spec = explore_preset(args.preset)
        overrides = {}
        if args.seeds is not None:
            overrides["n_seeds"] = args.seeds
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.mutation is not None:
            overrides["mutation"] = args.mutation
        if args.no_shrink:
            overrides["shrink"] = False
        if overrides:
            spec = type(spec).from_dict({**spec.to_dict(), **overrides})
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    store = ResultStore(args.store)
    with store:
        report = run_explore_batch(
            spec, store=store, workers=args.workers, quiet=args.quiet
        )

    for record in report.failed:
        print(f"{record.point_hash}  CRASHED: {record.error}")
    for point, result in report.violations:
        names = sorted({v["invariant"] for v in result["violations"]})
        line = (
            f"seed {result['seed_index']:4d}  VIOLATION  {', '.join(names)}"
        )
        counterexample = result.get("counterexample")
        if counterexample is not None:
            os.makedirs(args.out, exist_ok=True)
            stem = os.path.join(
                args.out, f"counterexample-seed{result['seed_index']}"
            )
            with open(f"{stem}.json", "w", encoding="utf-8") as fh:
                json.dump(counterexample, fh, indent=2, sort_keys=True)
            replayed = replay_counterexample(counterexample)
            save_trace(replayed.trace, f"{stem}.trace.jsonl")
            # Forensic narrative: what the waves looked like causally
            # at the violation, next to the machine-readable artifacts.
            from repro.obs.forensics import build_forensics

            with open(f"{stem}.narrative.txt", "w", encoding="utf-8") as fh:
                fh.write(build_forensics(replayed.trace).narrative())
            line += (
                f"  shrunk {counterexample['original_decisions']}->"
                f"{counterexample['shrunk_decisions']} perturbations, "
                f"{counterexample['original_injections']}->"
                f"{counterexample['shrunk_injections']} injections "
                f"-> {stem}.json"
            )
        print(line)
    print(report.summary())
    return 0 if report.clean else 1


def _campaign_presets() -> List[str]:
    from repro.campaign.spec import PRESETS

    return list(PRESETS)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignEngine, CampaignSpec, ResultStore, preset_spec

    import json

    from repro.errors import ReproError

    try:
        if args.spec:
            spec = CampaignSpec.from_json_file(args.spec)
        else:
            spec = preset_spec(args.preset)
        points = spec.expand()
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
    except (ReproError, ValueError, OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.list:
        for point in points:
            print(f"{point.point_hash}  {point.label()}")
        return 0

    store_path = None if args.no_store else (
        args.store or f"campaign-{spec.name}.jsonl"
    )
    if args.snapshot_every is not None and not args.snapshot_dir:
        print("error: --snapshot-every needs --snapshot-dir", file=sys.stderr)
        return 2
    executor = None
    if args.trace_out or args.snapshot_dir:
        import functools

        from repro.campaign.engine import execute_point

        executor = functools.partial(
            execute_point,
            trace_dir=args.trace_out,
            snapshot_dir=args.snapshot_dir,
            snapshot_every=args.snapshot_every,
        )
    with ResultStore(store_path) as store:
        engine = CampaignEngine(
            spec, store=store, workers=args.workers, quiet=args.quiet,
            executor=executor,
        )
        report = engine.run()

    for row in report.rows():
        ident = f"{row['hash']}  {row['label']:40s}"
        if row["status"] == "ok":
            metrics = "  ".join(
                f"{key}={row[key]}"
                for key in ("tentative_mean", "redundant_mutable_mean",
                            "redundant_ratio", "duration_s", "initiations")
            )
            print(f"{ident} {metrics}")
        else:
            print(f"{ident} FAILED: {row['error']}")
    print(
        f"campaign {report.name}: {report.total} points "
        f"({report.executed} run, {report.skipped} resumed, "
        f"{len(report.failed)} failed) in {report.wall_time:.2f}s"
        + (f" -> {store_path}" if store_path else "")
    )
    return 0 if report.ok else 1


def _cmd_protocols() -> int:
    for name in available_protocols():
        protocol = build_protocol(name)
        flags = []
        flags.append("blocking" if protocol.blocking else "nonblocking")
        flags.append("distributed" if protocol.distributed else "centralized")
        print(f"{name:16s} {', '.join(flags)}")
    return 0


def _write_run_artifacts(args: argparse.Namespace, result: Any) -> None:
    """Write ``run``'s optional --metrics-out / --timeseries-out files."""
    import json

    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            json.dump(result.metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"metrics written         : {args.metrics_out}")
    if args.timeseries_out:
        from repro.obs.timeseries import save_timeseries

        save_timeseries(result.timeseries, args.timeseries_out)
        rows = len(result.timeseries.get("rows", []))
        print(
            f"timeseries written      : {rows} windows "
            f"-> {args.timeseries_out}"
        )


def _cmd_run_resume(args: argparse.Namespace) -> int:
    import os

    from repro.errors import SnapshotError
    from repro.snapshot import SnapshotStore, read_meta, resume_run

    path = args.resume_from
    if os.path.isdir(path):
        latest = SnapshotStore(path).latest()
        if latest is None:
            print(f"error: no snapshots in {path}", file=sys.stderr)
            return 2
        path = latest.path
    try:
        meta = read_meta(path)
        image = resume_run(path)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"resumed from            : {path} "
        f"(event {meta.events_processed}, t={meta.sim_time:.1f}s)"
    )
    result = image.runner.resume()
    system = image.system
    print(f"protocol                : {result.protocol}")
    print(f"initiations (measured)  : {result.n_initiations}")
    print(f"tentative / initiation  : {result.tentative_summary()}")
    print(f"redundant mutable       : {result.redundant_mutable_summary()}")
    print(f"checkpointing time      : {result.duration_summary()} s")
    print(f"blocked process-seconds : {result.total_blocked_time:.1f}")
    print(f"system messages         : {result.counters.get('system_messages', 0):.0f}")
    if image.snapshotter is not None and image.snapshotter.taken:
        print(f"snapshots written       : {len(image.snapshotter.taken)}")
    if args.verify:
        line = latest_permanent_line(system.all_stable_storages(), system.processes)
        assert_line_consistent(system.sim.trace, line)
        print("recovery line           : consistent")
    if args.export_trace:
        from repro.sim.export import save_trace

        count = save_trace(system.sim.trace, args.export_trace)
        print(f"trace exported          : {count} records -> {args.export_trace}")
    _write_run_artifacts(args, result)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.resume_from:
        return _cmd_run_resume(args)
    if args.timeseries_out and args.timeseries_window is None:
        print("error: --timeseries-out needs --timeseries-window",
              file=sys.stderr)
        return 2
    config = SystemConfig(
        n_processes=args.processes,
        n_mss=args.cells,
        seed=args.seed,
        checkpoint_interval=args.interval,
        trace_messages=bool(args.verify or args.export_trace),
        trace_debug_capacity=args.flight_recorder,
        timeseries_window=args.timeseries_window,
        shards=args.shards,
    )
    system = MobileSystem(config, build_protocol(args.protocol))
    sink = None
    if args.export_trace and args.flight_recorder is not None:
        # A bounded ring would lose early DEBUG records from an offline
        # dump, so stream every record to disk as it is recorded
        # (backfilling what system setup already traced).
        from repro.sim.export import JsonlTraceSink

        sink = JsonlTraceSink(args.export_trace)
        for record in system.sim.trace:
            sink(record)
        sink.attach(system.sim.trace)
    if args.workload == "p2p":
        workload = PointToPointWorkload(
            system, PointToPointWorkloadConfig(1.0 / args.rate)
        )
    else:
        workload = GroupWorkload(
            system,
            GroupWorkloadConfig(
                mean_send_interval=1.0 / args.rate,
                intra_inter_ratio=args.group_ratio,
            ),
        )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=args.initiations)
    )
    snapshotter = None
    if args.snapshot_every is not None or args.snapshot_interval is not None:
        from repro.snapshot import SnapshotPolicy, Snapshotter

        snapshotter = Snapshotter(
            runner,
            SnapshotPolicy(
                every_events=args.snapshot_every,
                every_sim_seconds=args.snapshot_interval,
                keep=args.snapshot_keep,
            ),
            args.snapshot_dir,
        )
        snapshotter.install()
    result = runner.run()
    print(f"protocol                : {result.protocol}")
    print(f"initiations (measured)  : {result.n_initiations}")
    print(f"tentative / initiation  : {result.tentative_summary()}")
    print(f"redundant mutable       : {result.redundant_mutable_summary()}")
    print(f"checkpointing time      : {result.duration_summary()} s")
    print(f"blocked process-seconds : {result.total_blocked_time:.1f}")
    print(f"system messages         : {result.counters.get('system_messages', 0):.0f}")
    if result.shard_stats:
        stats = result.shard_stats
        print(
            f"shards                  : {stats['shards']} "
            f"({stats.get('effective_shards', stats['shards'])} effective, "
            f"{stats['windows']} windows, {stats['envelopes']} envelopes, "
            f"{stats['lookahead_violations']} violations, "
            f"{stats['stall_seconds']:.1f} stall-s)"
        )
    if args.flight_recorder is not None:
        trace = system.sim.trace
        print(
            f"flight recorder         : {trace.debug_held} DEBUG records "
            f"held (cap {trace.debug_capacity}), "
            f"{trace.debug_evicted} evicted"
        )
    if args.verify:
        line = latest_permanent_line(system.all_stable_storages(), system.processes)
        assert_line_consistent(system.sim.trace, line)
        print("recovery line           : consistent")
    if sink is not None:
        sink.close()
        print(
            f"trace exported          : {sink.records_written} records "
            f"-> {args.export_trace} (streamed, full fidelity)"
        )
    elif args.export_trace:
        from repro.sim.export import save_trace

        count = save_trace(system.sim.trace, args.export_trace)
        print(f"trace exported          : {count} records -> {args.export_trace}")
    if snapshotter is not None:
        print(
            f"snapshots written       : {len(snapshotter.taken)} "
            f"-> {args.snapshot_dir}/"
        )
    _write_run_artifacts(args, result)
    return 0


def _cmd_snapshots(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.errors import SnapshotError
    from repro.snapshot import (
        SnapshotStore,
        read_meta,
        read_snapshot,
        restore,
    )

    def verify(path: str) -> str:
        try:
            _, payload = read_snapshot(path)  # magic/version/sha256 checks
            restore(payload)
        except SnapshotError as exc:
            return f"BAD ({exc})"
        return "ok (payload hash verified, restores)"

    if os.path.isdir(args.target):
        infos = SnapshotStore(args.target).list()
        if not infos:
            print(f"no snapshots in {args.target}")
            return 1
        for info in infos:
            meta = info.meta
            line = (
                f"{os.path.basename(info.path):32s} seq={meta.seq:<4d} "
                f"ev={meta.events_processed:<9d} t={meta.sim_time:<10.2f} "
                f"{meta.protocol} n={meta.n_processes} seed={meta.seed} "
                f"[{meta.reason}]"
            )
            if args.verify:
                line += f"  {verify(info.path)}"
            print(line)
            if args.show:
                print(json.dumps(meta.to_dict(), indent=2, sort_keys=True))
        return 0

    try:
        meta = read_meta(args.target)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(meta.to_dict(), indent=2, sort_keys=True))
    if args.verify:
        print(f"integrity: {verify(args.target)}")
    if args.show:
        _, payload = read_snapshot(args.target)
        image = restore(payload)
        sim = image.system.sim
        print(
            f"kernel: t={sim.now:.4f} events={sim.events_processed} "
            f"pending={sim.pending_events}"
        )
        def jsonable(value):
            # state_dict values are arbitrary protocol state (records,
            # Trigger keys, frozensets) — render anything json can't.
            if isinstance(value, dict):
                return {
                    k if isinstance(k, str) else repr(k): jsonable(v)
                    for k, v in value.items()
                }
            if isinstance(value, (list, tuple, set, frozenset)):
                return [jsonable(v) for v in value]
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return repr(value)

        state = jsonable(image.system.protocol.state_dict())
        print(json.dumps(state, indent=2, sort_keys=True))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profiler import KernelProfiler

    config = SystemConfig(
        n_processes=args.processes,
        seed=args.seed,
        trace_messages=args.trace_messages,
    )
    system = MobileSystem(config, build_protocol(args.protocol))
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(1.0 / args.rate)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=args.initiations)
    )
    profiler = KernelProfiler()
    system.sim.set_profiler(profiler)
    with profiler.span("run"):
        runner.run()
    system.sim.flush_metrics()
    print(profiler.table(limit=args.top))
    print()
    snapshot = system.metrics.snapshot()
    print("metrics (counters):")
    for name, value in snapshot["counters"].items():
        print(f"  {name:40s} {value:g}")
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {"profile": profiler.to_dict(), "metrics": snapshot},
                fh, indent=2, sort_keys=True,
            )
        print(f"\nprofile written to {args.json}")
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as fh:
            fh.write(profiler.collapsed_stacks())
        print(f"collapsed stacks written to {args.flamegraph}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs.forensics import build_forensics
    from repro.sim.export import read_trace

    if args.from_snapshot is not None:
        from repro.errors import SnapshotError
        from repro.snapshot import replay_window

        try:
            replayed = replay_window(args.from_snapshot, args.window_start)
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        trace = replayed.trace
        print(
            f"# time-travel: resumed {replayed.snapshot.path} "
            f"(t={replayed.start_time:.2f}s); records from there on are "
            f"regenerated at full DEBUG fidelity"
        )
    elif args.path is None:
        print("error: need a trace file or --from-snapshot", file=sys.stderr)
        return 2
    else:
        try:
            trace = read_trace(args.path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
            return 2
    if (args.mermaid or args.dot) and args.wave is None:
        print("error: --mermaid/--dot need --wave", file=sys.stderr)
        return 2
    report = build_forensics(trace, n_processes=args.processes)
    try:
        if args.mermaid:
            print(report.to_mermaid(args.wave), end="")
        elif args.dot:
            print(report.to_dot(args.wave), end="")
        elif args.as_json:
            print(report.to_json())
        elif args.explain is not None:
            print(report.narrative(wave_index=args.wave, explain=args.explain),
                  end="")
        elif args.wave is not None:
            print(report.wave_narrative(args.wave), end="")
        else:
            print(report.narrative(), end="")
    except IndexError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.service import serve

    try:
        if args.workers < 1:
            raise ValueError("--workers must be at least 1")
        serve(
            data_dir=args.data_dir,
            host=args.host,
            port=args.port,
            workers=args.workers,
            snapshot_every=args.snapshot_every,
            import_jsonl=args.import_jsonl,
            verbose=args.verbose,
        )
    except (ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.spec:
            with open(args.spec, encoding="utf-8") as fh:
                job = client.submit(spec=json.load(fh), name=args.name)
        else:
            job = client.submit(preset=args.preset, name=args.name)
    except (ServiceError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    job_id = job["job_id"]
    print(
        f"job {job_id} submitted: {job['total']} points, "
        f"{job['cache_hits']} cache hits, {job['queued']} queued"
    )
    if args.no_wait:
        return 0

    try:
        status = client.wait(
            job_id,
            timeout=args.timeout,
            tolerate_outages=args.tolerate_outages,
        )
        results = client.results(job_id)
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        for row in results["rows"]:
            ident = f"{row['hash']}  {row['label']:40s}"
            if row["status"] == "ok":
                metrics = "  ".join(
                    f"{key}={row[key]}"
                    for key in ("tentative_mean", "redundant_mutable_mean",
                                "redundant_ratio", "duration_s",
                                "initiations")
                )
                print(f"{ident} {metrics}")
            else:
                print(f"{ident} FAILED: {row['error']}")
    print(
        f"job {job_id} {status['status']}: {status['executed']} executed, "
        f"{status['cache_hits']} cache hits, "
        f"{len(status.get('failed_points') or [])} failed "
        f"in {status['wall_time']:.2f}s"
    )
    if args.results_json:
        # Drop the submission-scoped fields (which job computed what):
        # what remains depends only on the grid's content, so identical
        # resubmissions produce byte-identical files (cmp-able in CI).
        document = {
            key: value
            for key, value in results.items()
            if key not in ("job_id", "cache_hits", "executed")
        }
        with open(args.results_json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"results written to {args.results_json}")
    return 0 if status["status"] == "done" else 1


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.analysis.ascii_chart import sparkline
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=10.0)
    prev_counters: dict = {}
    prev_wall: Optional[float] = None

    def frame() -> str:
        nonlocal prev_counters, prev_wall
        status = client.metrics()
        now = _time.monotonic()
        counters = status["metrics"]["counters"]
        gauges = status["metrics"].get("gauges", {})
        rate = ""
        if prev_wall is not None and now > prev_wall:
            done = (counters.get("service.points.executed", 0)
                    - prev_counters.get("service.points.executed", 0))
            rate = f" · {done / (now - prev_wall):.2f} points/s"
        prev_counters, prev_wall = dict(counters), now
        cache = status["cache"]
        lookups = cache["hits"] + cache["misses"]
        hit_pct = 100.0 * cache["hits"] / lookups if lookups else 0.0
        lines = [
            f"repro-sim top — {args.url}",
            f"uptime {status['uptime_seconds']:.0f}s · "
            f"{status['workers']} worker(s) · "
            f"queue {gauges.get('service.queue.depth', 0):g} · "
            f"active {gauges.get('service.jobs.active', 0):g} · "
            f"cache {cache['hits']:g}/{lookups:g} ({hit_pct:.1f}% hits)"
            + rate,
            "",
            f"{'job':12s} {'name':20s} {'status':9s} {'points':>9s} "
            f"{'eta':>7s} {'shards':>6s} {'stall':>8s}  "
            "activity (events/window)",
        ]
        for job in status["jobs"]:
            try:
                rows = client.timeseries(job["job_id"])["rows"]
            except ServiceError:
                rows = []
            spark = sparkline([row["events"] for row in rows]) or "-"
            eta = (f"{job['eta_seconds']:.0f}s"
                   if job["status"] == "running" else "-")
            points = f"{job['done']}/{job['total']}"
            n_shards = job.get("shards", 1)
            shards = str(n_shards) if n_shards > 1 else "-"
            stall = (f"{job.get('shard_stall_seconds', 0.0):.1f}s"
                     if n_shards > 1 else "-")
            lines.append(
                f"{job['job_id']:12s} {job['name'][:20]:20s} "
                f"{job['status']:9s} {points:>9s} {eta:>7s} "
                f"{shards:>6s} {stall:>8s}  {spark}"
            )
        if not status["jobs"]:
            lines.append("(no jobs yet)")
        return "\n".join(lines)

    try:
        if args.once:
            print(frame())
            return 0
        while True:
            text = frame()
            # Home + clear-to-end redraws in place instead of scrolling
            # the terminal history away on every refresh.
            sys.stdout.write("\x1b[H\x1b[J" + text + "\n")
            sys.stdout.flush()
            _time.sleep(args.interval)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def _cmd_figures() -> int:
    from repro.scenarios.figures import all_figures

    for result in all_figures():
        status = "consistent" if result.consistent else "INCONSISTENT (as intended)"
        print(f"{result.figure:16s} {status:28s} {result.notes}")
    return 0


def _cmd_table1() -> int:
    rows = []
    for name in ("koo-toueg", "elnozahy", "mutable"):
        config = SystemConfig(n_processes=16, seed=21, trace_messages=False)
        system = MobileSystem(config, build_protocol(name))
        workload = PointToPointWorkload(system, PointToPointWorkloadConfig(220.0))
        runner = ExperimentRunner(
            system, workload, RunConfig(max_initiations=12, warmup_initiations=2)
        )
        rows.append(measured_row(runner.run()))
    print(format_table(rows, "Table 1 (measured)"))
    n_min = rows[-1].checkpoints
    print()
    print(
        format_table(
            analytic_table(CostParameters(n=16, n_min=n_min, n_dep=4.0)),
            f"Table 1 (paper formulas, N_min={n_min:.1f})",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "protocols":
        return _cmd_protocols()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "explore":
        return _cmd_explore(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "snapshots":
        return _cmd_snapshots(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "report":
        from repro.reporting import ReportScale, write_report

        scale = {
            "quick": ReportScale.quick(),
            "default": ReportScale(),
            "full": ReportScale.full(),
        }[args.scale]
        write_report(args.output, scale)
        print(f"report written to {args.output}")
        return 0
    if args.command == "verify-trace":
        from repro.analysis.offline import verify_trace_file

        verdict = verify_trace_file(args.path)
        print(verdict)
        for orphan in verdict.orphans[:10]:
            print(f"  {orphan}")
        return 0 if verdict.consistent else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
