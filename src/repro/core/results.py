"""Run results and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.metrics import InitiationStats
from repro.analysis.stats import Summary, summarize


@dataclass
class RunResult:
    """Everything measured in one experiment run.

    ``initiations`` excludes warmup initiations; aggregate properties are
    computed over the measured ones only.
    """

    protocol: str
    n_processes: int
    seed: int
    initiations: List[InitiationStats] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    total_blocked_time: float = 0.0
    sim_time: float = 0.0
    wall_events: int = 0
    #: full :meth:`repro.obs.registry.MetricsRegistry.snapshot` of the
    #: run — counters (same values as ``counters``), gauges, histograms.
    #: Empty for results recorded before the observability layer.
    metrics: Dict = field(default_factory=dict)
    #: windowed telemetry document from
    #: :meth:`repro.obs.timeseries.TimeseriesSampler.export`. Empty when
    #: sampling was disabled (``SystemConfig.timeseries_window`` unset)
    #: or for results recorded before the timeseries layer.
    timeseries: Dict = field(default_factory=dict)
    #: window/envelope/stall accounting from
    #: :meth:`repro.sim.shard.ShardedSimulator.shard_report`. Empty on
    #: sequential (``shards=1``) runs; omitted from :meth:`to_dict` when
    #: empty so sequential result documents are byte-identical to those
    #: written before sharding existed.
    shard_stats: Dict = field(default_factory=dict)

    @property
    def n_initiations(self) -> int:
        return len(self.initiations)

    def tentative_summary(self) -> Summary:
        """Tentative checkpoints per initiation (Fig. 5/6 upper curves)."""
        return summarize([s.tentative_count for s in self.initiations])

    def redundant_mutable_summary(self) -> Summary:
        """Redundant mutable checkpoints per initiation (lower curves)."""
        return summarize([s.redundant_mutables for s in self.initiations])

    def mutable_summary(self) -> Summary:
        """All mutable checkpoints taken per initiation."""
        return summarize([s.mutable_count for s in self.initiations])

    def duration_summary(self) -> Summary:
        """Checkpointing time per initiation (initiation -> commit)."""
        return summarize([s.duration for s in self.initiations if s.duration is not None])

    @property
    def redundant_ratio(self) -> float:
        """Redundant mutables as a fraction of tentatives (paper: < 4 %)."""
        tentatives = sum(s.tentative_count for s in self.initiations)
        if tentatives == 0:
            return 0.0
        redundant = sum(s.redundant_mutables for s in self.initiations)
        return redundant / tentatives

    def to_dict(self) -> Dict:
        """A JSON-serializable representation.

        Lossless: ``RunResult.from_dict(r.to_dict()) == r`` and the dict
        survives a JSON round-trip unchanged. This is the wire/storage
        format of the campaign :class:`~repro.campaign.store.ResultStore`.
        """
        data = {
            "protocol": self.protocol,
            "n_processes": self.n_processes,
            "seed": self.seed,
            "initiations": [s.to_dict() for s in self.initiations],
            "counters": dict(self.counters),
            "total_blocked_time": self.total_blocked_time,
            "sim_time": self.sim_time,
            "wall_events": self.wall_events,
            "metrics": self.metrics,
            "timeseries": self.timeseries,
        }
        if self.shard_stats:
            data["shard_stats"] = self.shard_stats
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            protocol=data["protocol"],
            n_processes=data["n_processes"],
            seed=data["seed"],
            initiations=[
                InitiationStats.from_dict(s) for s in data["initiations"]
            ],
            counters=dict(data["counters"]),
            total_blocked_time=data["total_blocked_time"],
            sim_time=data["sim_time"],
            wall_events=data["wall_events"],
            metrics=data.get("metrics", {}),
            timeseries=data.get("timeseries", {}),
            shard_stats=data.get("shard_stats", {}),
        )

    def row(self) -> Dict[str, float]:
        """A flat dict suitable for tabulation."""
        return {
            "initiations": self.n_initiations,
            "tentative_mean": self.tentative_summary().mean,
            "redundant_mutable_mean": self.redundant_mutable_summary().mean,
            "mutable_mean": self.mutable_summary().mean,
            "redundant_ratio": self.redundant_ratio,
            "duration_mean": self.duration_summary().mean,
            "system_messages": self.counters.get("system_messages", 0.0),
            "broadcasts": self.counters.get("broadcasts", 0.0),
            "computation_messages": self.counters.get("computation_messages", 0.0),
            "blocked_time": self.total_blocked_time,
        }
