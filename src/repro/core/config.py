"""Experiment configuration.

Defaults reproduce the paper's simulation model (§5.1): N = 16 processes,
one per MH, a single-cell 2 Mbps wireless LAN, 1 KB computation messages,
50 B system messages, 512 KB incremental checkpoints, and a 900 s
checkpoint interval per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.params import NetworkParams


@dataclass(frozen=True)
class SystemConfig:
    """Static description of one simulated system.

    Attributes
    ----------
    n_processes:
        Number of application processes; one per mobile host unless
        ``processes_on_mss`` places some on support stations.
    n_mss:
        Number of support stations (cells). The paper's evaluation uses a
        single wireless LAN, i.e. one cell.
    processes_on_mss:
        Of the ``n_processes``, how many run on support stations instead
        of mobile hosts (static hosts need no wireless transfer for
        their checkpoints). The paper's evaluation uses zero.
    seed:
        Master seed for all random streams.
    checkpoint_interval:
        Per-process initiation period in seconds (paper: 900 s).
    checkpoint_size_bytes:
        Incremental checkpoint size shipped to stable storage
        (paper: 512 KB of a 1 MB full state).
    network:
        Physical-layer constants.
    trace_messages:
        Record every computation send/receive in the trace. Required by
        the consistency checkers; can be disabled for very long runs.
    trace_debug_capacity:
        Flight-recorder mode: keep message-level (DEBUG) tracing on but
        retain only the most recent this-many DEBUG records in a ring
        buffer (INFO lifecycle records are always kept in full). Bounds
        trace memory for long runs while the final waves stay fully
        explainable; implies DEBUG-level tracing regardless of
        ``trace_messages``.
    track_weight_invariant:
        Attach a weight ledger asserting Lemma 2 continuously (protocols
        that support it).
    piggyback_mode:
        How computation messages carry the sender's vector clock:
        ``"delta"`` (default) sends only the entries changed since the
        last message on the same channel (Singhal-Kshemkalyani; O(changes)
        per message), ``"full"`` sends the complete N-entry stamp (the
        O(N) reference path kept for equivalence testing — see
        ``tests/integration/test_scale_equivalence.py``).
    timeseries_window:
        Sim-time window (seconds) of the telemetry sampler
        (:class:`repro.obs.timeseries.TimeseriesSampler`): selected
        metric series are snapshotted once per window into a bounded
        ring carried on the RunResult. ``None`` (the default) disables
        sampling entirely — no sampler is built and the kernel runs the
        plain fast loop.
    shards:
        Partition the simulation by cell/MSS into this many shards and
        run it on the conservative windowed kernel
        (:class:`repro.sim.shard.ShardedSimulator`). ``1`` (the
        default) keeps the plain fused-loop kernel — the sequential
        fast path is untouched. Any ``shards >= 2`` must produce
        bit-identical results to ``shards=1``; the windowed kernel
        only adds barrier/envelope accounting (see docs/DESIGN.md).
    """

    n_processes: int = 16
    n_mss: int = 1
    #: how many of the processes run directly on support stations (the
    #: §2.1 model allows both); the rest run on mobile hosts
    processes_on_mss: int = 0
    seed: int = 42
    checkpoint_interval: float = 900.0
    checkpoint_size_bytes: int = 512 * 1024
    network: NetworkParams = field(default_factory=NetworkParams)
    trace_messages: bool = True
    trace_debug_capacity: Optional[int] = None
    track_weight_invariant: bool = False
    piggyback_mode: str = "delta"
    timeseries_window: Optional[float] = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.piggyback_mode not in ("delta", "full"):
            raise ConfigurationError(
                "piggyback_mode must be 'delta' or 'full'"
            )
        if self.n_processes < 1:
            raise ConfigurationError("need at least one process")
        if self.n_mss < 1:
            raise ConfigurationError("need at least one MSS")
        if not 0 <= self.processes_on_mss <= self.n_processes:
            raise ConfigurationError(
                "processes_on_mss must be between 0 and n_processes"
            )
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint interval must be positive")
        if self.checkpoint_size_bytes <= 0:
            raise ConfigurationError("checkpoint size must be positive")
        if self.trace_debug_capacity is not None and self.trace_debug_capacity < 1:
            raise ConfigurationError(
                "trace_debug_capacity must be >= 1 (or None for unbounded)"
            )
        if self.timeseries_window is not None and self.timeseries_window <= 0:
            raise ConfigurationError(
                "timeseries_window must be positive (or None to disable)"
            )
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")

    def with_changes(self, **kwargs) -> "SystemConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def from_params(cls, params: dict, seed: Optional[int] = None) -> "SystemConfig":
        """Build from a plain-data override dict (campaign run points).

        A nested ``"network"`` dict becomes :class:`NetworkParams`, so a
        fully JSON-serializable spec can cross a process boundary and be
        content-hashed, then rebuilt here inside a worker.
        """
        params = dict(params)
        network = params.get("network")
        if isinstance(network, dict):
            params["network"] = NetworkParams(**network)
        if seed is not None:
            params["seed"] = seed
        return cls(**params)


@dataclass(frozen=True)
class PointToPointWorkloadConfig:
    """Uniform point-to-point traffic (paper §5.1).

    ``mean_send_interval`` is the mean of the exponential inter-send time
    at each process; the destination of each message is uniform over all
    other processes.
    """

    mean_send_interval: float = 10.0

    def __post_init__(self) -> None:
        if self.mean_send_interval <= 0:
            raise ConfigurationError("mean send interval must be positive")

    @property
    def rate(self) -> float:
        """Messages per second per process."""
        return 1.0 / self.mean_send_interval


@dataclass(frozen=True)
class GroupWorkloadConfig:
    """Group communication (paper §5.1).

    Processes are partitioned into ``n_groups`` equal groups, each with a
    leader (the lowest pid in the group). Intragroup destinations are
    uniform over group members; only leaders send intergroup, to a
    uniformly random other leader, at ``intra_inter_ratio`` times lower
    rate than their intragroup traffic.
    """

    mean_send_interval: float = 10.0
    n_groups: int = 4
    intra_inter_ratio: float = 1000.0

    def __post_init__(self) -> None:
        if self.mean_send_interval <= 0:
            raise ConfigurationError("mean send interval must be positive")
        if self.n_groups < 1:
            raise ConfigurationError("need at least one group")
        if self.intra_inter_ratio < 1:
            raise ConfigurationError("intra:inter ratio must be >= 1")


@dataclass(frozen=True)
class RunConfig:
    """How long to run and what to collect.

    ``max_initiations`` counts *committed* checkpointing processes; the
    run stops once that many have committed (or ``time_limit`` elapses,
    whichever is first).
    """

    max_initiations: int = 10
    time_limit: Optional[float] = None
    warmup_initiations: int = 1

    def __post_init__(self) -> None:
        if self.max_initiations < 1:
            raise ConfigurationError("need at least one initiation")
        if self.warmup_initiations < 0:
            raise ConfigurationError("warmup cannot be negative")
        if self.warmup_initiations >= self.max_initiations:
            raise ConfigurationError("warmup must leave at least one measured initiation")
