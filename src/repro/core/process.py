"""Application process runtime.

An :class:`AppProcess` glues together one application process: it owns
the (simulated) application state and vector clock, feeds incoming
messages through the checkpointing protocol, applies blocking for
blocking protocols, and exposes the :class:`RuntimeEnv` through which the
protocol acts on the world.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.analysis.vector_clock import VectorClock
from repro.checkpointing.protocol import ProcessEnv
from repro.checkpointing.storage import LocalStore
from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import ProtocolError, StorageError
from repro.net.message import (
    CheckpointDataMessage,
    ComputationMessage,
    Message,
    SystemMessage,
)
from repro.net.mh import MobileHost
from repro.net.node import Host

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


class _DeliverCall:
    """Zero-arg deliver thunk handed to the protocol with each message.

    Blocking protocols (e.g. mutable checkpointing) retain the thunk in
    their delivery queues across events, so it must survive snapshot
    pickling — a plain slotted class does, a per-message lambda would
    not.
    """

    __slots__ = ("process", "message")

    def __init__(self, process: "AppProcess", message: ComputationMessage) -> None:
        self.process = process
        self.message = message

    def __call__(self) -> None:
        self.process._deliver(self.message)


class AppProcess:
    """One application process with its protocol instance and state."""

    def __init__(self, system: "MobileSystem", pid: int, host: Host) -> None:
        self.system = system
        self.pid = pid
        self.host = host
        self.vc = VectorClock(
            pid,
            system.config.n_processes,
            delta=(getattr(system.config, "piggyback_mode", "full") == "delta"),
        )
        self.app_state: Dict[str, Any] = {
            "messages_sent": 0,
            "messages_received": 0,
            "steps": 0,
        }
        self.local_store = LocalStore(name=f"local-p{pid}")
        #: recovery incarnation: computation messages from older
        #: incarnations (in flight across a rollback) are discarded
        self.incarnation = 0
        #: out-of-band system-message handlers (e.g. distributed
        #: recovery), dispatched by subkind before the protocol sees them
        self._system_handlers: Dict[str, Callable[[SystemMessage], None]] = {}
        self.env = RuntimeEnv(self)
        self.protocol_process = system.protocol.create_process(self.env)
        # blocking support (used by blocking baselines)
        self.blocked = False
        self.blocked_since: Optional[float] = None
        self.total_blocked_time = 0.0
        self._deferred_sends: List[Tuple[int, Any]] = []
        self._deferred_receives: List[ComputationMessage] = []
        # Hot-path instruments resolved once (send/deliver run per message).
        metrics = system.metrics
        self._m_comp_messages = metrics.counter("computation_messages")
        self._m_stale_dropped = metrics.counter("stale_incarnation_dropped")
        self._m_blocking_time = metrics.histogram("blocking_time")
        self._next_msg_id = system.message_ids.__next__
        host.attach_process(pid, self.on_message)

    # -- application actions ------------------------------------------------
    def send_computation(self, dst_pid: int, payload: Any = None) -> None:
        """Send an application message (deferred while blocked)."""
        if self.blocked:
            self._deferred_sends.append((dst_pid, payload))
            return
        self._do_send(dst_pid, payload)

    def _do_send(self, dst_pid: int, payload: Any) -> None:
        self.vc.tick()
        message = ComputationMessage(
            src_pid=self.pid,
            dst_pid=dst_pid,
            payload=payload,
            msg_id=self._next_msg_id(),
        )
        message.vc = self.vc.stamp_for(dst_pid)
        if self.incarnation:
            message.piggyback["inc"] = self.incarnation
        self.protocol_process.on_send_computation(message)
        self.app_state["messages_sent"] += 1
        trace = self.system.sim.trace
        if trace.debug_on:
            trace.debug(
                self.system.sim._now,
                "comp_send",
                src=self.pid,
                dst=dst_pid,
                msg_id=message.msg_id,
            )
        self._m_comp_messages.inc()
        self.system.workload_send(self, message)
        self.system.network.send_from_process(self.pid, message)

    # -- message reception ----------------------------------------------------
    def register_system_handler(
        self, subkind: str, handler: Callable[[SystemMessage], None]
    ) -> None:
        """Intercept system messages of ``subkind`` before the protocol
        (used by the distributed recovery layer)."""
        self._system_handlers[subkind] = handler

    def on_message(self, message: Message) -> None:
        """Entry point for every message the host delivers to this pid."""
        if isinstance(message, SystemMessage):
            handler = self._system_handlers.get(message.subkind)
            if handler is not None:
                handler(message)
                return
            self.protocol_process.on_system_message(message)
        elif isinstance(message, ComputationMessage):
            if self.incarnation and message.piggyback_get("inc", 0) < self.incarnation:
                # A ghost from a rolled-back incarnation: drop it.
                self._m_stale_dropped.inc()
                return
            if self.blocked:
                self._deferred_receives.append(message)
                return
            self.protocol_process.on_receive_computation(
                message, _DeliverCall(self, message)
            )
        else:
            raise ProtocolError(
                f"process {self.pid} received unroutable message kind {message.kind}"
            )

    def _deliver(self, message: ComputationMessage) -> None:
        """Hand a computation message to the application."""
        vc_stamp = message.vc_stamp()
        if vc_stamp is not None:
            self.vc.merge_stamp(vc_stamp)
        self.vc.tick()
        app_state = self.app_state
        app_state["messages_received"] += 1
        app_state["steps"] += 1
        trace = self.system.sim.trace
        if trace.debug_on:
            trace.debug(
                self.system.sim._now,
                "comp_recv",
                src=message.src_pid,
                dst=self.pid,
                msg_id=message.msg_id,
            )
        self.system.workload_deliver(self, message)

    # -- blocking (for blocking protocols) -----------------------------------------
    def block(self) -> None:
        """Suspend the underlying computation."""
        if self.blocked:
            return
        self.blocked = True
        self.blocked_since = self.system.sim.now
        self.system.sim.trace.record(self.system.sim.now, "blocked", pid=self.pid)

    def unblock(self) -> None:
        """Resume the computation and replay deferred activity in order."""
        if not self.blocked:
            return
        self.blocked = False
        assert self.blocked_since is not None
        duration = self.system.sim.now - self.blocked_since
        self.total_blocked_time += duration
        self._m_blocking_time.observe(duration)
        self.blocked_since = None
        self.system.sim.trace.record(self.system.sim.now, "unblocked", pid=self.pid)
        receives, self._deferred_receives = self._deferred_receives, []
        for message in receives:
            self.protocol_process.on_receive_computation(
                message, _DeliverCall(self, message)
            )
        sends, self._deferred_sends = self._deferred_sends, []
        for dst_pid, payload in sends:
            self.send_computation(dst_pid, payload)

    # -- state capture / restore (checkpointing and recovery) ------------------------
    def capture_state(self) -> Dict[str, Any]:
        """Deep-enough copy of the application state."""
        return dict(self.app_state)

    def restore_state(self, state: Dict[str, Any], vc: Tuple[int, ...]) -> None:
        """Roll the application back to a checkpointed state."""
        self.app_state = dict(state)
        self.vc.restore(vc)

    def discard_deferred(self) -> None:
        """Drop buffered activity (a rollback invalidates it)."""
        self._deferred_sends.clear()
        self._deferred_receives.clear()

    # -- snapshot (pickle) support ---------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        # Bound method-wrapper on the shared itertools.count — not
        # picklable; _reattach() rebinds it after a snapshot restore.
        state.pop("_next_msg_id", None)
        return state

    def _reattach(self) -> None:
        """Rebind hot-path handles dropped by :meth:`__getstate__`."""
        self._next_msg_id = self.system.message_ids.__next__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AppProcess p{self.pid} on {self.host.name}>"


class RuntimeEnv(ProcessEnv):
    """The :class:`ProcessEnv` implementation backed by the full system."""

    def __init__(self, process: AppProcess) -> None:
        self.process = process
        self.system = process.system
        self.pid = process.pid
        self.n = self.system.config.n_processes
        metrics = self.system.metrics
        self._m_sys_messages = metrics.counter("system_messages")
        self._m_broadcasts = metrics.counter("broadcasts")
        self._next_msg_id = self.system.message_ids.__next__

    def now(self) -> float:
        return self.system.sim.now

    def send_system(self, dst_pid: int, subkind: str, fields: Dict[str, Any]) -> None:
        message = SystemMessage(
            src_pid=self.pid,
            dst_pid=dst_pid,
            subkind=subkind,
            fields=fields,
            msg_id=self._next_msg_id(),
        )
        self._m_sys_messages.inc()
        self.system.metrics.counter(f"system_messages_{subkind}").inc()
        trace = self.system.sim.trace
        if trace.debug_on:
            # The wave tag (a Trigger for request/reply/commit/abort)
            # lets forensics attribute control messages to their wave.
            trace.debug(
                self.system.sim.now, "sys_send",
                src=self.pid, dst=dst_pid, subkind=subkind,
                trigger=fields.get("trigger"),
            )
        self.system.network.send_from_process(self.pid, message)

    def broadcast_system(self, subkind: str, fields: Dict[str, Any]) -> int:
        self._m_broadcasts.inc()
        trace = self.system.sim.trace
        if trace.debug_on:
            trace.debug(
                self.system.sim.now, "sys_broadcast", src=self.pid, subkind=subkind,
                trigger=fields.get("trigger"),
            )
        return self.system.network.broadcast_system(
            self.pid,
            lambda pid: SystemMessage(
                src_pid=self.pid,
                dst_pid=pid,
                subkind=subkind,
                fields=dict(fields),
                msg_id=self._next_msg_id(),
            ),
        )

    def capture_state(self) -> Dict[str, Any]:
        return self.process.capture_state()

    def capture_vector_clock(self) -> Tuple[int, ...]:
        return self.process.vc.snapshot()

    def save_mutable(self, record: CheckpointRecord) -> None:
        self.process.local_store.save(record)
        self.system.metrics.counter("mutable_checkpoints").inc()

    def transfer_to_stable(
        self, record: CheckpointRecord, on_saved: Callable[[], None]
    ) -> None:
        record.size_bytes = self.system.config.checkpoint_size_bytes
        self.system.metrics.counter("stable_transfers").inc()
        host = self.process.host
        if isinstance(host, MobileHost):
            data = CheckpointDataMessage(
                src_pid=self.pid,
                dst_pid=None,
                checkpoint_ref=record,
                size_bytes=record.size_bytes,
                msg_id=self._next_msg_id(),
            )
            data.on_stored = on_saved  # consumed by the MSS, see mss hook
            host.transfer_checkpoint_data(data)
        else:
            # Process runs on an MSS: only the disk write is charged.
            storage = self.system.stable_storage_for(self.pid)
            storage.store(record)
            delay = self.system.config.network.stable_write_time
            self.system.sim.schedule(delay, on_saved)

    def discard_mutable(self, record: CheckpointRecord) -> None:
        self.process.local_store.remove(record)

    def make_permanent(self, record: CheckpointRecord) -> None:
        record.kind = CheckpointKind.PERMANENT
        if self.system.protocol.gc_permanents:
            storage = self.system.stable_storage_for(self.pid)
            storage.garbage_collect(self.pid, keep_latest_permanent=1)

    def discard_stable(self, record: CheckpointRecord) -> None:
        storage = self.system.stable_storage_for(self.pid)
        try:
            storage.discard(record)
        except StorageError:
            # The transfer may still be in flight when an abort arrives;
            # the MSS-side hook drops such records on arrival.
            record.kind = CheckpointKind.MUTABLE  # poisoned: never store

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self.system.sim.schedule(delay, fn)

    def trace(self, kind: str, **fields: Any) -> None:
        self.system.sim.trace.record(self.system.sim.now, kind, **fields)

    def block_computation(self) -> None:
        self.process.block()

    def unblock_computation(self) -> None:
        self.process.unblock()

    @property
    def mutable_save_time(self) -> float:
        return self.system.config.network.mutable_save_time

    # -- snapshot (pickle) support ---------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_next_msg_id", None)
        return state

    def _reattach(self) -> None:
        """Rebind hot-path handles dropped by :meth:`__getstate__`."""
        self._next_msg_id = self.system.message_ids.__next__
