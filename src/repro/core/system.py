"""System builder: wires kernel, network, storage, processes, protocol.

:class:`MobileSystem` is the main entry point of the library::

    from repro import MobileSystem, SystemConfig
    from repro.checkpointing.mutable import MutableCheckpointProtocol

    system = MobileSystem(SystemConfig(n_processes=16),
                          MutableCheckpointProtocol())
    ...
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Union

from repro.checkpointing.protocol import CheckpointProtocol
from repro.checkpointing.storage import StableStorage
from repro.checkpointing.types import (
    CheckpointKind,
    CheckpointRecord,
    reset_checkpoint_ids,
)
from itertools import count

from repro.core.config import SystemConfig
from repro.core.process import AppProcess
from repro.errors import ConfigurationError
from repro.net.message import ComputationMessage
from repro.net.mh import MobileHost
from repro.net.mss import MobileSupportStation
from repro.net.network import MobileNetwork
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import TimeseriesSampler
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceLevel, TraceLog

DeliverHook = Callable[[AppProcess, ComputationMessage], None]


class MobileSystem:
    """A fully wired simulated mobile computing system.

    Construction builds the topology (``n_mss`` cells, one MH per
    process round-robin across cells), attaches the protocol to every
    process, and stores an initial permanent checkpoint (csn 0) for each
    process so a recovery line exists from time zero.
    """

    def __init__(
        self,
        config: SystemConfig,
        protocol: CheckpointProtocol,
    ) -> None:
        self.config = config
        self.protocol = protocol
        # Fresh id spaces per system: ids only need uniqueness within a
        # run, and restarting them makes identical runs bit-identical
        # even inside one interpreter (replay, digests, worker reuse).
        # Message ids are owned by the system (no module-global reset, so
        # two systems in one interpreter never bleed into each other).
        reset_checkpoint_ids()
        self.message_ids = count()
        # Message-level (DEBUG) records are the bulk of trace volume; the
        # level is fixed at build time so hot-path emitters can check one
        # bool (`trace.debug_on`) instead of re-reading config. A flight
        # recorder (bounded DEBUG ring) implies DEBUG-level tracing.
        if config.trace_debug_capacity is not None:
            trace = TraceLog(
                level=TraceLevel.DEBUG,
                debug_capacity=config.trace_debug_capacity,
            )
        else:
            trace = TraceLog(
                level=TraceLevel.DEBUG if config.trace_messages else TraceLevel.INFO
            )
        if config.shards > 1:
            # Conservative windowed kernel (repro.sim.shard): per-shard
            # heaps merged in canonical order, so results stay
            # bit-identical to the sequential fused loop while window/
            # envelope accounting becomes observable. The lookahead is
            # the minimum cross-cell (wired) link delay.
            from repro.sim.shard import ShardedSimulator

            self.sim: Simulator = ShardedSimulator(
                trace=trace,
                n_shards=config.shards,
                lookahead=config.network.min_cross_shard_delay(),
            )
        else:
            self.sim = Simulator(trace=trace)
        self.streams = RandomStreams(config.seed)
        #: the run's metrics registry, shared with the kernel; every
        #: layer (net, protocol, kernel) publishes named instruments here
        self.metrics: MetricsRegistry = self.sim.metrics
        self.network = MobileNetwork(self.sim, config.network)
        # Net-layer constructors (disconnect transfers) draw from the
        # same id space so msg_ids stay globally ordered within a run.
        self.network.message_ids = self.message_ids
        self._deliver_hooks: List[DeliverHook] = []
        self._send_hooks: List[DeliverHook] = []

        self.mss_list: List[MobileSupportStation] = []
        for i in range(config.n_mss):
            mss = self.network.add_mss(f"mss{i}")
            mss.stable_storage = StableStorage(name=f"stable-{mss.name}")
            self.mss_list.append(mss)

        self.mhs: List[MobileHost] = []
        self.processes: Dict[int, AppProcess] = {}
        for pid in range(config.n_processes):
            mss = self.mss_list[pid % config.n_mss]
            if pid < config.processes_on_mss:
                # Static process: runs directly on the support station
                # (§2.1 allows both; its checkpoints skip the wireless hop).
                self.processes[pid] = AppProcess(self, pid, mss)
            else:
                mh = self.network.add_mh(mss, name=f"mh{pid}")
                self.mhs.append(mh)
                self.processes[pid] = AppProcess(self, pid, mh)

        for pid, process in self.processes.items():
            initial = CheckpointRecord(
                pid=pid,
                csn=0,
                kind=CheckpointKind.PERMANENT,
                time_taken=0.0,
                state=process.capture_state(),
                trigger=None,
                vector_clock=process.vc.snapshot(),
                size_bytes=config.checkpoint_size_bytes,
            )
            self.stable_storage_for(pid).store(initial)
            self.sim.trace.record(0.0, "permanent", pid=pid, trigger=None, ckpt_id=initial.ckpt_id)

        # Cell → shard partition (repro.sim.shard). Applied after the
        # topology exists so every MSS gets its shard tag; the plan is
        # None on sequential runs, which never import the shard module.
        self.shard_plan = None
        if config.shards > 1:
            from repro.sim.shard import ShardPlan

            self.shard_plan = ShardPlan.build(self, config.shards)
            self.shard_plan.apply(self)

        # Windowed telemetry sampler (repro.obs.timeseries). Built last —
        # its wave-lifecycle instruments must only exist when sampling is
        # on, so a default run's metrics snapshot is unchanged. When
        # disabled no hook is armed and the kernel runs the plain fused
        # loop.
        self.timeseries: Optional[TimeseriesSampler] = None
        if config.timeseries_window is not None:
            self.timeseries = TimeseriesSampler(self, config.timeseries_window)
            self.timeseries.install()

    @property
    def monitor(self) -> MetricsRegistry:
        """Back-compat alias for :attr:`metrics` (the old Monitor slot)."""
        return self.metrics

    # -- lookups ---------------------------------------------------------
    def process(self, pid: int) -> AppProcess:
        """The application process with id ``pid``."""
        try:
            return self.processes[pid]
        except KeyError:
            raise ConfigurationError(f"no process with pid {pid}") from None

    def mss_for(self, pid: int) -> MobileSupportStation:
        """The MSS currently serving ``pid``'s host."""
        host = self.network.host_of_process(pid)
        return self.network.mss_serving(host)

    def stable_storage_for(self, pid: int) -> StableStorage:
        """The stable storage where ``pid``'s checkpoints land.

        With a single cell this is unambiguous; with mobility a process's
        checkpoints may be spread over several MSSs, so recovery-oriented
        callers should use :meth:`all_stable_storages` instead.
        """
        try:
            mss = self.mss_for(pid)
        except Exception:
            mss = self.mss_list[0]
        assert mss.stable_storage is not None
        return mss.stable_storage

    def all_stable_storages(self) -> List[StableStorage]:
        """Every stable storage in the system."""
        return [mss.stable_storage for mss in self.mss_list if mss.stable_storage]

    # -- workload integration ---------------------------------------------
    def add_deliver_hook(self, hook: DeliverHook) -> None:
        """Register a callback invoked on every application delivery."""
        self._deliver_hooks.append(hook)

    def add_send_hook(self, hook: DeliverHook) -> None:
        """Register a callback invoked on every application send."""
        self._send_hooks.append(hook)

    def workload_send(self, process: AppProcess, message: ComputationMessage) -> None:
        """Called by the process runtime when the app sends a message."""
        for hook in self._send_hooks:
            hook(process, message)

    def workload_deliver(self, process: AppProcess, message: ComputationMessage) -> None:
        """Called by the process runtime when a message reaches the app."""
        for hook in self._deliver_hooks:
            hook(process, message)

    # -- convenience -------------------------------------------------------------
    def run_until_quiescent(self, extra_time: float = 0.0, max_events: Optional[int] = None) -> None:
        """Drain the event queue (plus ``extra_time`` margin)."""
        self.sim.run_until_idle(max_events=max_events)
        if extra_time:
            self.sim.run(until=self.sim.now + extra_time, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MobileSystem n={self.config.n_processes} cells={self.config.n_mss} "
            f"protocol={self.protocol.name}>"
        )
