"""Public experiment API: configuration, system builder, runner."""

from repro.core.config import (
    GroupWorkloadConfig,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.process import AppProcess, RuntimeEnv
from repro.core.results import RunResult
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem

__all__ = [
    "AppProcess",
    "ExperimentRunner",
    "GroupWorkloadConfig",
    "MobileSystem",
    "PointToPointWorkloadConfig",
    "RunConfig",
    "RunResult",
    "RuntimeEnv",
    "SystemConfig",
]
