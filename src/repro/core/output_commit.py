"""Output commit (paper §5.3).

Messages to the *outside world* — a display, a file, an actuator —
cannot be unsent by rollback, so they must be held until a checkpoint
guaranteeing they will never be orphaned reaches stable storage:
"Generally, if a process needs output commit, it initiates a
checkpointing process. Thus, the output commit delay equals the duration
of the checkpointing process."

:class:`OutputCommitManager` implements exactly that: an output request
buffers the payload, triggers a checkpointing at the requesting process
(or at the coordinator, for centralized protocols), and releases the
output when that initiation commits. The measured request-to-release
latencies are the paper's output-commit column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.analysis.stats import Summary, summarize
from repro.checkpointing.types import Trigger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem

#: retry delay when the initiation is refused (previous one still active)
_RETRY_DELAY = 0.1


@dataclass
class OutputRequest:
    """One pending or released output."""

    pid: int
    payload: Any
    request_time: float
    release_time: Optional[float] = None
    trigger: Optional[Trigger] = None

    @property
    def released(self) -> bool:
        return self.release_time is not None

    @property
    def delay(self) -> Optional[float]:
        if self.release_time is None:
            return None
        return self.release_time - self.request_time


class OutputCommitManager:
    """Gates outside-world output on checkpoint commits."""

    def __init__(self, system: "MobileSystem") -> None:
        self.system = system
        self.pending: List[OutputRequest] = []
        self.released: List[OutputRequest] = []
        self._awaiting_initiation: List[OutputRequest] = []
        system.protocol.add_commit_listener(self._on_commit)
        system.protocol.add_abort_listener(self._on_abort)

    # ------------------------------------------------------------------
    def request_output(self, pid: int, payload: Any = None) -> OutputRequest:
        """Buffer an output and start the checkpointing that releases it."""
        request = OutputRequest(
            pid=pid, payload=payload, request_time=self.system.sim.now
        )
        self.pending.append(request)
        self.system.sim.trace.record(
            self.system.sim.now, "output_requested", pid=pid
        )
        self._initiate_for(request)
        return request

    def _initiator_for(self, pid: int) -> int:
        """Centralized protocols route output commits through the
        coordinator (one of the §5.3.2 drawbacks of [13])."""
        if self.system.protocol.distributed:
            return pid
        return getattr(self.system.protocol, "coordinator", 0)

    def _initiate_for(self, request: OutputRequest) -> None:
        if request.released:
            return
        initiator = self._initiator_for(request.pid)
        process = self.system.protocol.processes[initiator]
        started = process.initiate()
        if started:
            request.trigger = getattr(process, "initiating", None) or Trigger(
                initiator, -1
            )
        else:
            # A checkpointing is already running; if it is one that will
            # release us (same initiator, started after our request) we
            # just wait, otherwise retry shortly.
            self.system.sim.schedule(_RETRY_DELAY, self._initiate_for, request)

    # ------------------------------------------------------------------
    def _on_commit(self, trigger: Trigger) -> None:
        now = self.system.sim.now
        still_pending: List[OutputRequest] = []
        for request in self.pending:
            matches = (
                trigger.pid == self._initiator_for(request.pid)
                and (request.trigger is None or request.trigger == trigger
                     or request.trigger.inum == -1)
            )
            if matches and not request.released:
                request.release_time = now
                request.trigger = trigger
                self.released.append(request)
                self.system.sim.trace.record(
                    now, "output_released", pid=request.pid,
                    delay=request.delay, trigger=trigger,
                )
            else:
                still_pending.append(request)
        self.pending = still_pending

    def _on_abort(self, trigger: Trigger) -> None:
        # The checkpointing that was going to release us died: retry.
        for request in self.pending:
            if request.trigger == trigger:
                request.trigger = None
                self.system.sim.schedule(_RETRY_DELAY, self._initiate_for, request)

    # ------------------------------------------------------------------
    def delay_summary(self) -> Summary:
        """Output-commit delay statistics (the Table 1 column)."""
        return summarize([r.delay for r in self.released if r.delay is not None])

    @property
    def outstanding(self) -> int:
        return len(self.pending)
