"""Experiment runner: schedules initiations and collects results.

Reproduces the paper's experimental procedure (§5.1):

* a checkpoint is scheduled at each process with a fixed interval
  (900 s); the first one is staggered uniformly within one interval;
* if a process takes a checkpoint earlier (because it was forced to by
  someone else's initiation), its next initiation moves to one interval
  after that checkpoint;
* at most one checkpointing is in progress at a time (§3.3's
  presentation assumption): initiations falling due while one is active
  are deferred and fired right after the active one commits.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.analysis.metrics import committed_stats
from repro.checkpointing.types import Trigger
from repro.core.config import RunConfig
from repro.core.results import RunResult
from repro.core.system import MobileSystem
from repro.errors import SimulationError
from repro.sim.events import Event
from repro.workload.base import Workload

#: retry delay when a process refuses to initiate (still finishing the
#: previous checkpointing's commit wave)
_RETRY_DELAY = 0.1


class ExperimentRunner:
    """Drives one simulation run to a target number of initiations."""

    #: tells the sharded kernel that events scheduled on this object
    #: carry the acting pid as their first argument, so they can be
    #: attributed to that process's shard instead of coordinator shard 0
    shard_by_pid = True

    def __init__(
        self,
        system: MobileSystem,
        workload: Workload,
        run_config: RunConfig,
        serialize_initiations: bool = True,
    ) -> None:
        self.system = system
        self.workload = workload
        self.run_config = run_config
        self.serialize_initiations = serialize_initiations
        self.committed: int = 0
        self._busy = False
        self._done = False
        self._deferred: Deque[int] = deque()
        # Centralized protocols (EJZ) only let a coordinator initiate.
        if system.protocol.distributed:
            initiators = list(system.processes)
        else:
            initiators = [getattr(system.protocol, "coordinator", 0)]
        self._timers: Dict[int, Optional[Event]] = {pid: None for pid in initiators}
        system.protocol.add_commit_listener(self._on_commit)
        system.protocol.add_abort_listener(self._on_abort)
        system.sim.trace.subscribe(self._on_trace)

    # -- scheduling ------------------------------------------------------
    def _schedule_first_initiations(self) -> None:
        interval = self.system.config.checkpoint_interval
        for pid in self._timers:
            offset = self.system.streams.stream(f"runner.stagger.{pid}").uniform(
                0.0, interval
            )
            self._arm_timer(pid, offset)

    def _arm_timer(self, pid: int, delay: float) -> None:
        if pid not in self._timers:
            return
        old = self._timers[pid]
        if old is not None:
            old.cancel()
        self._timers[pid] = self.system.sim.schedule(delay, self._initiation_due, pid)

    def _on_trace(self, record) -> None:
        # Paper §5.1: a checkpoint taken early pushes the next scheduled
        # initiation one full interval past it. This also supersedes a
        # pending deferred initiation of the same process.
        if record.kind == "tentative" and not self._done:
            pid = record["pid"]
            if pid in self._timers:
                self._arm_timer(pid, self.system.config.checkpoint_interval)
            try:
                self._deferred.remove(pid)
            except ValueError:
                pass

    def request_initiation(self, pid: int) -> None:
        """Ask for an extra initiation by ``pid`` now (fault injection).

        Goes through the same serialization as timer-driven initiations
        (§3.3's presentation assumption): if a checkpointing is active
        the request is deferred, not run concurrently. Unknown or
        non-initiator pids are ignored.
        """
        if self._done or pid not in self._timers:
            return
        # Unlike _initiation_due this leaves the pid's regular timer
        # armed: the injection is an *extra* initiation, not an early
        # firing of the scheduled one.
        if self.serialize_initiations and self._busy:
            if pid not in self._deferred:
                self._deferred.append(pid)
            return
        self._try_initiate(pid)

    def _initiation_due(self, pid: int) -> None:
        self._timers[pid] = None
        if self._done:
            return
        if self.serialize_initiations and self._busy:
            if pid not in self._deferred:
                self._deferred.append(pid)
            return
        self._try_initiate(pid)

    def _try_initiate(self, pid: int) -> None:
        if self._done:
            return
        # Set busy *before* calling initiate(): protocols that commit
        # synchronously (uncoordinated local checkpoints) fire the commit
        # listener inside initiate(), and that listener clears busy.
        self._busy = True
        started = self.system.protocol.processes[pid].initiate()
        if not started:
            self._busy = False
            # Commit wave from the previous initiation has not reached
            # this process yet; retry shortly.
            self.system.sim.schedule(_RETRY_DELAY, self._try_initiate, pid)

    # -- protocol callbacks ------------------------------------------------
    def _on_commit(self, trigger: Trigger) -> None:
        self.committed += 1
        self._busy = False
        if self.committed >= self.run_config.max_initiations:
            self._finish()
            return
        self._arm_timer(trigger.pid, self.system.config.checkpoint_interval)
        if self._deferred:
            self._try_initiate(self._deferred.popleft())

    def _on_abort(self, trigger: Trigger) -> None:
        self._busy = False
        self._arm_timer(trigger.pid, self.system.config.checkpoint_interval)
        if self._deferred and not self._done:
            self._try_initiate(self._deferred.popleft())

    def _finish(self) -> None:
        # Idempotent: late commits (e.g. an injected concurrent wave
        # finishing after the target count was reached) re-enter via
        # _on_commit; a second stop() here would abort the post-run
        # settle/quiescence drains mid-flight.
        if self._done:
            return
        self._done = True
        self.workload.stop()
        for timer in self._timers.values():
            if timer is not None:
                timer.cancel()
        # Halt the kernel loop after the current event (no-op when the
        # runner is not inside sim.run, e.g. on the time-limit path).
        self.system.sim.stop()

    # -- main loop ---------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> RunResult:
        """Run to completion and return the collected results."""
        self.workload.start()
        self._schedule_first_initiations()
        return self._drive(max_events)

    def resume(self, max_events: Optional[int] = None) -> RunResult:
        """Continue a snapshot-restored run to completion.

        The workload's pending sends and the initiation timers are
        already live inside the restored event heap, so this re-enters
        the drive loop directly — no restart, no re-staggering. Dispatch
        order is fully determined by the heap keys, so a resumed run
        retraces the uninterrupted run event for event.
        """
        return self._drive(max_events)

    def _reattach(self) -> None:
        """Re-subscribe the trace hook after a snapshot restore.

        Trace subscribers are dropped at pickling time (they are live
        callbacks); the restore path calls this to re-establish the §5.1
        reschedule-on-early-checkpoint behaviour. The timeseries sampler
        rides along: its kernel hook and trace subscription are dropped
        the same way.
        """
        self.system.sim.trace.subscribe(self._on_trace)
        if getattr(self.system, "timeseries", None) is not None:
            self.system.timeseries.reattach()

    def _drive(self, max_events: Optional[int]) -> RunResult:
        sim = self.system.sim
        limit = self.run_config.time_limit
        if limit is None:
            # Hot path: hand the whole run to the kernel's fused loop;
            # _finish() stops it from inside the final commit callback.
            if not self._done:
                sim.run(max_events=max_events)
            if not self._done:
                raise SimulationError(
                    "event queue drained before reaching the initiation target"
                )
        else:
            processed = 0
            while not self._done:
                if sim.now >= limit:
                    # Stop scheduling new work so post-run quiescence
                    # drains instead of running the experiment forever.
                    self._finish()
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                if not sim.step():
                    raise SimulationError(
                        "event queue drained before reaching the initiation target"
                    )
                processed += 1
        # Let the final commit broadcast settle so every process's state
        # (cp_state, discarded mutables) is final before measuring.
        sim.run(until=sim.now + 1.0)
        return self._collect()

    def _collect(self) -> RunResult:
        stats = committed_stats(self.system.sim.trace)
        measured = stats[self.run_config.warmup_initiations :]
        total_blocked = sum(
            p.total_blocked_time for p in self.system.processes.values()
        )
        self.system.sim.flush_metrics()
        timeseries = {}
        sampler = getattr(self.system, "timeseries", None)
        if sampler is not None:
            sampler.flush()
            timeseries = sampler.export()
        # Window/envelope accounting from the sharded kernel; {} on the
        # sequential kernel, so sequential result documents are unchanged.
        report = getattr(self.system.sim, "shard_report", None)
        shard_stats = report() if report is not None else {}
        return RunResult(
            protocol=self.system.protocol.name,
            n_processes=self.system.config.n_processes,
            seed=self.system.config.seed,
            initiations=measured,
            counters=self.system.metrics.counters(),
            total_blocked_time=total_blocked,
            sim_time=self.system.sim.now,
            wall_events=self.system.sim.events_processed,
            metrics=self.system.metrics.snapshot(),
            timeseries=timeseries,
            shard_stats=shard_stats,
        )
