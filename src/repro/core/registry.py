"""Protocol registry: build protocols by name.

Used by benchmarks and examples so a protocol choice can be a plain
string (``"mutable"``, ``"koo-toueg"``, ...).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.checkpointing.chandy_lamport import ChandyLamportProtocol
from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.koo_toueg import KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.protocol import CheckpointProtocol
from repro.checkpointing.timer_based import TimerBasedProtocol
from repro.checkpointing.uncoordinated import UncoordinatedProtocol
from repro.checkpointing.simple_schemes import (
    BasicCsnProtocol,
    NoMutableVariantProtocol,
    RevisedCsnProtocol,
)
from repro.errors import ConfigurationError

_FACTORIES: Dict[str, Callable[[], CheckpointProtocol]] = {
    "mutable": MutableCheckpointProtocol,
    "koo-toueg": KooTouegProtocol,
    "elnozahy": ElnozahyProtocol,
    "chandy-lamport": ChandyLamportProtocol,
    "csn-basic": BasicCsnProtocol,
    "csn-revised": RevisedCsnProtocol,
    "no-mutable": NoMutableVariantProtocol,
    "timer-based": TimerBasedProtocol,
    "uncoordinated": UncoordinatedProtocol,
}


def available_protocols() -> List[str]:
    """Names accepted by :func:`build_protocol`."""
    return sorted(_FACTORIES)


def build_protocol(name: str, **kwargs) -> CheckpointProtocol:
    """Instantiate the protocol registered under ``name``."""
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; available: {', '.join(available_protocols())}"
        )
    return factory(**kwargs)


def register_protocol(name: str, factory: Callable[[], CheckpointProtocol]) -> None:
    """Register a custom protocol (for downstream extensions)."""
    if name in _FACTORIES:
        raise ConfigurationError(f"protocol {name!r} already registered")
    _FACTORIES[name] = factory
