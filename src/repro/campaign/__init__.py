"""Experiment-campaign subsystem: declarative sweeps, parallel
execution, durable resumable results.

The paper's whole §5 evaluation is a grid of independent
``(protocol, workload, config, seed)`` simulation runs. This package
turns such a grid into a :class:`CampaignSpec`, expands it into
content-hashed :class:`RunPoint` s, executes them on a
``multiprocessing`` pool (bit-identical to serial execution), and
persists each outcome durably in a :class:`ResultStore` so a crashed or
interrupted campaign resumes where it stopped::

    from repro.campaign import CampaignEngine, CampaignSpec, ResultStore

    spec = CampaignSpec(
        name="rate-sweep",
        protocols=["mutable", "koo-toueg"],
        workloads=[{"kind": "p2p", "mean_send_interval": 1 / r}
                   for r in (0.005, 0.02, 0.05)],
        run={"max_initiations": 22, "warmup_initiations": 2},
    )
    with ResultStore("sweep.jsonl") as store:
        report = CampaignEngine(spec, store=store, workers=4).run()
    for row in report.rows():
        print(row)
"""

from repro.campaign.cache import canonical_json, derive_seed, spec_hash
from repro.campaign.engine import (
    CampaignEngine,
    CampaignReport,
    build_point_runtime,
    execute_point,
    run_point,
)
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import (
    DEFAULT_MAX_EVENTS,
    PRESETS,
    CampaignSpec,
    RunPoint,
    preset_spec,
)
from repro.campaign.store import PointRecord, ResultStore

__all__ = [
    "CampaignEngine",
    "CampaignReport",
    "CampaignSpec",
    "DEFAULT_MAX_EVENTS",
    "PRESETS",
    "PointRecord",
    "ProgressReporter",
    "ResultStore",
    "RunPoint",
    "build_point_runtime",
    "canonical_json",
    "derive_seed",
    "execute_point",
    "preset_spec",
    "run_point",
    "spec_hash",
]
