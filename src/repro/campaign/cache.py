"""Content-addressed identity for campaign points.

A campaign result store never trusts positions: every run point is keyed
by a SHA-256 hash of its canonical JSON spec, so resuming a campaign,
reordering axes, or merging stores can never attach a result to the
wrong point. Per-point seeds are likewise *derived* from the campaign
master seed and the point's identity — not from its position in the
grid — so adding an axis value, shuffling the expansion order, or
splitting the grid across ``workers=N`` processes changes nothing about
any individual point's random streams.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: hex digest length used for point keys; 16 bytes of SHA-256 is far
#: beyond collision risk for any conceivable campaign size
HASH_CHARS = 32


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def spec_hash(obj: Any) -> str:
    """Content hash of a JSON-serializable spec (the store key)."""
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:HASH_CHARS]


def derive_seed(campaign_seed: int, identity: Any) -> int:
    """Deterministic per-point seed from the campaign seed + identity.

    ``identity`` is the point's spec *without* the seed field. The result
    is stable across processes, Python versions, and expansion order, so
    a campaign run with ``workers=N`` is bit-identical to ``workers=1``.
    """
    material = f"{campaign_seed}|{canonical_json(identity)}".encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)
