"""Campaign engine: fan run points out over a worker pool.

Workers receive only the picklable :class:`RunPoint` dict and rebuild
the full :class:`~repro.core.system.MobileSystem` from it, so every
point is hermetic: its result depends only on its own spec (including
its content-derived seed), never on which worker ran it or in what
order. That is what makes ``workers=N`` bit-identical to ``workers=1``.

Failure policy: a crashing point is recorded in the store as ``failed``
and retried exactly once; a second failure stays in the store (with the
error and traceback) and the campaign carries on — one pathological
point cannot sink a thousand-point sweep. Completed points found in the
store are skipped, which is the resume path after a crash or Ctrl-C.
"""

from __future__ import annotations

import functools
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.cache import spec_hash
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import WORKLOAD_KINDS, CampaignSpec, RunPoint
from repro.campaign.store import PointRecord, ResultStore
from repro.checkpointing.protocol import CheckpointProtocol
from repro.core.config import RunConfig, SystemConfig
from repro.core.registry import build_protocol
from repro.core.results import RunResult
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.obs.registry import MetricsRegistry
from repro.obs.timeseries import merge_timeseries
from repro.sim.trace import TraceLevel
from repro.workload.base import Workload


def build_point_runtime(
    point: RunPoint, protocol: Optional[CheckpointProtocol] = None
) -> Tuple[MobileSystem, Workload, ExperimentRunner]:
    """Rebuild system + workload + runner from a point's plain-data spec.

    ``protocol`` overrides the registry lookup with an already-built
    instance — the in-process escape hatch benches use for protocol
    variants that only exist as constructor arguments.
    """
    if protocol is None:
        protocol = build_protocol(point.protocol, **point.protocol_params)
    config = SystemConfig.from_params(point.system_params, seed=point.seed)
    system = MobileSystem(config, protocol)
    workload_config_cls, workload_cls = WORKLOAD_KINDS[point.workload]
    workload = workload_cls(system, workload_config_cls(**point.workload_params))
    runner = ExperimentRunner(system, workload, RunConfig(**point.run_params))
    return system, workload, runner


def run_point(
    point: RunPoint, protocol: Optional[CheckpointProtocol] = None
) -> RunResult:
    """Execute one point in-process and return its :class:`RunResult`."""
    _, _, runner = build_point_runtime(point, protocol=protocol)
    return runner.run(max_events=point.max_events)


#: event-count period used when snapshotting is on but no period given
DEFAULT_SNAPSHOT_EVERY = 2000


def execute_point(
    payload: Dict[str, Any],
    trace_dir: Optional[str] = None,
    snapshot_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    snapshot_keep: Optional[int] = 2,
) -> Dict[str, Any]:
    """Worker entry point: run one point dict, never raise.

    Module-level so it pickles into :mod:`multiprocessing` workers (bind
    ``trace_dir`` with :func:`functools.partial`, which pickles too). The
    returned dict is a :class:`PointRecord` minus the ``attempts`` field,
    which only the engine knows.

    With ``trace_dir`` set, the run records messages regardless of the
    point's ``trace_messages`` setting and its full trace is saved to
    ``<trace_dir>/<point_hash>.jsonl`` (the record's ``meta`` carries the
    path). The trace file is a side output: the record itself is
    identical either way, so cached and traced runs stay comparable.

    With ``snapshot_dir`` set, the run snapshots itself every
    ``snapshot_every`` events into ``<snapshot_dir>/<point_hash>/``, and
    — the crash-resume path — a point whose directory already holds a
    snapshot *continues from it* instead of starting over. Resume is
    exact (the simulation is deterministic and snapshots capture it
    whole), so an interrupted-and-resumed point's result is
    bit-identical to an uninterrupted one and the record's ``meta``
    (``snapshot_dir``, ``resumed_from``) is the only visible difference.
    """
    started = time.perf_counter()
    point_dict = dict(payload)
    point_hash = spec_hash(point_dict)
    try:
        point = RunPoint.from_dict(point_dict)
        meta: Dict[str, Any] = {}
        point_snap_dir = None
        resume_from = None
        if snapshot_dir is not None:
            from repro.snapshot import SnapshotStore

            point_snap_dir = os.path.join(snapshot_dir, point_hash)
            resume_from = SnapshotStore(point_snap_dir).latest()
        if resume_from is not None:
            from repro.snapshot import resume_run

            image = resume_run(resume_from.path)
            system, runner = image.system, image.runner
            if trace_dir is not None:
                system.sim.trace.set_level(TraceLevel.DEBUG)
            meta["resumed_from"] = resume_from.path
            result = runner.resume(max_events=point.max_events)
            snapshotter = image.snapshotter
        else:
            system, _, runner = build_point_runtime(point)
            if trace_dir is not None:
                # The trace level is fixed at build time, so raise it on
                # the live log (mutating config after build won't stick).
                system.sim.trace.set_level(TraceLevel.DEBUG)
            snapshotter = None
            if point_snap_dir is not None:
                from repro.snapshot import SnapshotPolicy, Snapshotter

                snapshotter = Snapshotter(
                    runner,
                    SnapshotPolicy(
                        every_events=snapshot_every or DEFAULT_SNAPSHOT_EVERY,
                        keep=snapshot_keep,
                    ),
                    point_snap_dir,
                    label=point_hash,
                )
                snapshotter.install()
            result = runner.run(max_events=point.max_events)
        if point_snap_dir is not None:
            meta["snapshot_dir"] = point_snap_dir
            if snapshotter is not None and snapshotter.taken:
                meta["snapshots"] = list(snapshotter.taken)
        record = {
            "point_hash": point_hash,
            "status": "ok",
            "point": point.to_dict(),
            "result": result.to_dict(),
            "wall_time": time.perf_counter() - started,
        }
        if trace_dir is not None:
            from repro.sim.export import save_trace

            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(trace_dir, f"{point_hash}.jsonl")
            count = save_trace(system.sim.trace, path)
            meta.update({"trace_path": path, "trace_records": count})
        if meta:
            record["meta"] = meta
        return record
    except Exception as exc:  # noqa: BLE001 — failures become records
        return {
            "point_hash": point_hash,
            "status": "failed",
            "point": point_dict,
            "error": f"{type(exc).__name__}: {exc}",
            "meta": {"traceback": traceback.format_exc()},
            "wall_time": time.perf_counter() - started,
        }


@dataclass
class CampaignReport:
    """What a campaign run did, with records in spec (grid) order."""

    name: str
    points: List[RunPoint] = field(default_factory=list)
    records: List[PointRecord] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    wall_time: float = 0.0
    #: True when a ``should_stop`` callback ended the run early; the
    #: report then covers only the points that finished (still in grid
    #: order), and ``total`` counts only those.
    cancelled: bool = False

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def failed(self) -> List[PointRecord]:
        return [r for r in self.records if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def results(self) -> List[RunResult]:
        """Rehydrated results of the successful points, in grid order."""
        return [r.run_result() for r in self.records if r.ok]

    def merged_metrics(self) -> MetricsRegistry:
        """Campaign-level aggregate of every successful point's metrics.

        Snapshots are merged **in grid order**, never completion order,
        and metric merge is associative — together these make the
        aggregate independent of the worker count (``workers=N`` folds
        to the same registry as ``workers=1``).
        """
        return MetricsRegistry.merged(
            result.metrics for result in self.results() if result.metrics
        )

    def merged_timeseries(self) -> Dict[str, Any]:
        """Campaign-level windowed telemetry, merged in grid order.

        Rows align on ``(dt, w)`` and deltas add (see
        :func:`repro.obs.timeseries.merge_timeseries`), so like
        :meth:`merged_metrics` the result is independent of worker
        count. ``{}`` when no point sampled a timeseries.
        """
        return merge_timeseries(result.timeseries for result in self.results())

    def rows(self) -> List[Dict[str, Any]]:
        """One flat dict per point: identity + the paper's metrics."""
        rows = []
        for point, record in zip(self.points, self.records):
            row: Dict[str, Any] = {
                "hash": record.point_hash,
                "label": point.label(),
                "status": record.status,
                "wall_time": round(record.wall_time, 3),
            }
            if record.ok:
                result = record.run_result()
                row.update(
                    {
                        "tentative_mean": round(
                            result.tentative_summary().mean, 3
                        ),
                        "redundant_mutable_mean": round(
                            result.redundant_mutable_summary().mean, 4
                        ),
                        "redundant_ratio": round(result.redundant_ratio, 4),
                        "duration_s": round(result.duration_summary().mean, 3),
                        "initiations": result.n_initiations,
                    }
                )
            else:
                row["error"] = record.error
            rows.append(row)
        return rows


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    # fork is cheapest and fully deterministic here (workers rebuild all
    # state from the point spec); spawn is the portable fallback.
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class CampaignEngine:
    """Expand a spec, skip completed points, fan the rest out, persist."""

    def __init__(
        self,
        spec: Union[CampaignSpec, Sequence[RunPoint]],
        store: Optional[ResultStore] = None,
        workers: int = 1,
        progress: Optional[ProgressReporter] = None,
        quiet: bool = True,
        executor: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        pool: Optional[Any] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if isinstance(spec, CampaignSpec):
            self.name = spec.name
            self.points = spec.expand()
        else:
            self.name = "adhoc"
            self.points = list(spec)
        if workers < 1:
            raise ValueError("need at least one worker")
        self.store = store if store is not None else ResultStore()
        self.workers = workers
        # A payload -> record callable; must pickle for worker pools
        # (module-level function or functools.partial of one). This is
        # how repro.explore reuses the engine with its own run shape.
        if executor is None:
            if snapshot_dir is not None:
                # Crash-safe campaigns: points snapshot while running and
                # in-progress points found on disk resume mid-run instead
                # of restarting (completed points are skipped as before).
                executor = functools.partial(
                    execute_point,
                    snapshot_dir=snapshot_dir,
                    snapshot_every=snapshot_every,
                )
            else:
                executor = execute_point
        elif snapshot_dir is not None:
            raise ValueError("snapshot_dir requires the default executor")
        self.executor = executor
        # An externally owned multiprocessing pool: the campaign service
        # keeps one pool alive across many jobs so workers fork once,
        # not once per submission. The engine never closes it.
        self.pool = pool
        # Cooperative cancellation: checked after each completed point;
        # when it returns True the engine stops dispatching, records
        # nothing further, and returns a partial (cancelled) report.
        self.should_stop = should_stop
        self.progress = progress or ProgressReporter(
            total=len(self.points), workers=workers, enabled=not quiet
        )

    def run(self) -> CampaignReport:
        """Run every point not already in the store; return the report."""
        completed = self.store.completed_hashes()
        pending = [p for p in self.points if p.point_hash not in completed]
        self.progress.total = len(self.points)
        self.progress.start(skipped=len(self.points) - len(pending))

        outcomes: Dict[str, PointRecord] = {}
        labels = {p.point_hash: p.label() for p in self.points}
        cancelled = self.should_stop is not None and self.should_stop()
        if not cancelled:
            for raw in self._execute(pending):
                record = self._record_outcome(raw, attempts=1)
                if not record.ok:
                    record = self._retry(record)
                outcomes[record.point_hash] = record
                self.progress.point_done(
                    labels.get(record.point_hash, record.point_hash),
                    record.ok,
                    record.wall_time,
                )
                if self.should_stop is not None and self.should_stop():
                    # Between-points cancellation: everything recorded so
                    # far is durable; unstarted points simply never ran.
                    cancelled = True
                    break
        wall_time = self.progress.finish()

        report = CampaignReport(
            name=self.name,
            executed=len(outcomes) if cancelled else len(pending),
            skipped=len(self.points) - len(pending),
            wall_time=wall_time,
            cancelled=cancelled,
        )
        for point in self.points:
            record = outcomes.get(point.point_hash) or self.store.get(
                point.point_hash
            )
            if record is None:
                # Only possible on cancellation; a completed run has a
                # record (fresh or resumed) for every point.
                assert cancelled, f"point {point.point_hash} vanished"
                continue
            report.points.append(point)
            report.records.append(record)
        return report

    # -- internals -------------------------------------------------------
    def _execute(self, pending: List[RunPoint]):
        payloads = [p.to_dict() for p in pending]
        if self.pool is not None and len(pending) > 1:
            # Shared, caller-owned pool (the service): dispatch through
            # it and leave its lifecycle alone. An abandoned iterator
            # (cancellation) may leave queued tasks computing; the owner
            # decides whether to terminate or let them drain.
            for raw in self.pool.imap_unordered(
                self.executor, payloads, chunksize=1
            ):
                yield raw
            return
        if self.workers == 1 or len(pending) <= 1:
            for payload in payloads:
                yield self.executor(payload)
            return
        ctx = _pool_context()
        with ctx.Pool(processes=min(self.workers, len(pending))) as pool:
            # Unordered: progress reflects real completion; determinism
            # is unaffected because the report reassembles in grid order.
            for raw in pool.imap_unordered(self.executor, payloads, chunksize=1):
                yield raw

    def _record_outcome(self, raw: Dict[str, Any], attempts: int) -> PointRecord:
        record = PointRecord.from_dict({**raw, "attempts": attempts})
        self.store.append(record)
        return record

    def _retry(self, failed: PointRecord) -> PointRecord:
        """Re-run a failed point once, in-process, recording the outcome."""
        raw = self.executor(failed.point)
        record = self._record_outcome(raw, attempts=failed.attempts + 1)
        record.wall_time += failed.wall_time
        return record
