"""Declarative campaign specifications.

A :class:`CampaignSpec` is the grid the paper's §5 evaluation sweeps —
protocol × workload × system-config axes, optionally replicated — and
``expand()`` turns it into concrete :class:`RunPoint` s. A point is a
fully self-contained, picklable, JSON-serializable description of one
simulation run: a worker process can rebuild the whole
:class:`~repro.core.system.MobileSystem` from it with no shared state.

Every point carries its own seed, derived from the campaign master seed
and the point's content (see :mod:`repro.campaign.cache`), so results do
not depend on expansion order or on how points are spread over workers.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.campaign.cache import derive_seed, spec_hash
from repro.core.config import (
    GroupWorkloadConfig,
    PointToPointWorkloadConfig,
    RunConfig,
)
from repro.errors import ConfigurationError
from repro.workload.base import Workload
from repro.workload.bursty import BurstyWorkload, BurstyWorkloadConfig
from repro.workload.group import GroupWorkload
from repro.workload.point_to_point import PointToPointWorkload

#: workload kinds a point may name -> (config class, workload class)
WORKLOAD_KINDS: Dict[str, Tuple[Type, Type[Workload]]] = {
    "p2p": (PointToPointWorkloadConfig, PointToPointWorkload),
    "group": (GroupWorkloadConfig, GroupWorkload),
    "bursty": (BurstyWorkloadConfig, BurstyWorkload),
}

#: default runaway guard for campaign points (same bound the benches use)
DEFAULT_MAX_EVENTS = 50_000_000


def _check_workload(kind: str, params: Dict[str, Any]) -> None:
    if kind not in WORKLOAD_KINDS:
        raise ConfigurationError(
            f"unknown workload kind {kind!r}; "
            f"available: {', '.join(sorted(WORKLOAD_KINDS))}"
        )
    # Fail at spec time, not inside a worker: the config dataclasses
    # validate their own fields.
    WORKLOAD_KINDS[kind][0](**params)


@dataclass
class RunPoint:
    """One cell of a campaign grid: everything one run needs.

    ``system_params`` are overrides for :class:`SystemConfig` (a nested
    ``"network"`` dict becomes :class:`NetworkParams`); ``run_params``
    feed :class:`RunConfig`. All fields are plain JSON values, so the
    point can cross a process boundary and be content-hashed.

    ``explore`` is an optional payload for adversarial runs (see
    :mod:`repro.explore`): perturbation seed/config, injection schedule,
    mutation and invariant selection. It is serialized only when set, so
    the hashes of ordinary campaign points are unchanged.
    """

    protocol: str
    workload: str = "p2p"
    protocol_params: Dict[str, Any] = field(default_factory=dict)
    workload_params: Dict[str, Any] = field(default_factory=dict)
    system_params: Dict[str, Any] = field(default_factory=dict)
    run_params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 42
    max_events: Optional[int] = DEFAULT_MAX_EVENTS
    replicate: int = 0
    explore: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        _check_workload(self.workload, self.workload_params)
        RunConfig(**self.run_params)
        if "seed" in self.system_params:
            raise ConfigurationError(
                "put the seed in RunPoint.seed, not system_params"
            )
        network = self.system_params.get("network")
        if network is not None and dataclasses.is_dataclass(network):
            # Accept a NetworkParams instance for convenience; store the
            # JSON form so the point stays hashable and picklable.
            self.system_params = dict(
                self.system_params, network=dataclasses.asdict(network)
            )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "protocol": self.protocol,
            "workload": self.workload,
            "protocol_params": dict(self.protocol_params),
            "workload_params": dict(self.workload_params),
            "system_params": dict(self.system_params),
            "run_params": dict(self.run_params),
            "seed": self.seed,
            "max_events": self.max_events,
            "replicate": self.replicate,
        }
        if self.explore is not None:
            data["explore"] = dict(self.explore)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunPoint":
        return cls(**data)

    @property
    def point_hash(self) -> str:
        """Content hash of the full point spec (the store key)."""
        return spec_hash(self.to_dict())

    def label(self) -> str:
        """Short human-readable identity for progress lines and rows."""
        parts = [self.protocol, self.workload]
        for params in (self.protocol_params, self.workload_params):
            parts.extend(f"{k}={v}" for k, v in sorted(params.items()))
        if self.replicate:
            parts.append(f"rep={self.replicate}")
        return " ".join(parts)


@dataclass
class CampaignSpec:
    """A declarative grid of runs: the §5 sweep shape.

    ``protocols`` entries are either a registry name (``"mutable"``) or
    ``{"name": ..., "params": {...}}``. ``workloads`` entries are
    ``{"kind": "p2p"|"group"|"bursty", **config}``. ``configs`` is an
    axis of :class:`SystemConfig` override dicts (default: one empty
    override). ``replicates`` repeats every cell with independent seeds.
    """

    name: str
    protocols: List[Any] = field(default_factory=lambda: ["mutable"])
    workloads: List[Dict[str, Any]] = field(
        default_factory=lambda: [{"kind": "p2p"}]
    )
    configs: List[Dict[str, Any]] = field(default_factory=lambda: [{}])
    replicates: int = 1
    seed: int = 11
    run: Dict[str, Any] = field(default_factory=dict)
    max_events: Optional[int] = DEFAULT_MAX_EVENTS

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if self.replicates < 1:
            raise ConfigurationError("need at least one replicate")
        if not self.protocols or not self.workloads or not self.configs:
            raise ConfigurationError("every campaign axis needs at least one value")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "protocols": list(self.protocols),
            "workloads": [dict(w) for w in self.workloads],
            "configs": [dict(c) for c in self.configs],
            "replicates": self.replicates,
            "seed": self.seed,
            "run": dict(self.run),
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        return cls(**data)

    @classmethod
    def from_json_file(cls, path: str) -> "CampaignSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @property
    def campaign_hash(self) -> str:
        return spec_hash(self.to_dict())

    def expand(self) -> List[RunPoint]:
        """The grid as concrete points, with content-derived seeds."""
        points: List[RunPoint] = []
        for replicate in range(self.replicates):
            for protocol in self.protocols:
                if isinstance(protocol, str):
                    proto_name, proto_params = protocol, {}
                else:
                    proto_name = protocol["name"]
                    proto_params = dict(protocol.get("params", {}))
                for workload in self.workloads:
                    workload = dict(workload)
                    kind = workload.pop("kind", "p2p")
                    for config in self.configs:
                        identity = {
                            "protocol": proto_name,
                            "protocol_params": proto_params,
                            "workload": kind,
                            "workload_params": workload,
                            "system_params": config,
                            "run_params": self.run,
                            "replicate": replicate,
                        }
                        points.append(
                            RunPoint(
                                protocol=proto_name,
                                protocol_params=dict(proto_params),
                                workload=kind,
                                workload_params=dict(workload),
                                system_params=dict(config),
                                run_params=dict(self.run),
                                seed=derive_seed(self.seed, identity),
                                max_events=self.max_events,
                                replicate=replicate,
                            )
                        )
        return points


# -- presets ------------------------------------------------------------
def _fig5_spec() -> CampaignSpec:
    """Fig. 5: mutable protocol, point-to-point, rate sweep."""
    return CampaignSpec(
        name="fig5",
        protocols=["mutable"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": 1.0 / rate}
            for rate in (0.002, 0.005, 0.01, 0.02, 0.05, 0.1)
        ],
        run={"max_initiations": 22, "warmup_initiations": 2},
    )


def _fig6_spec() -> CampaignSpec:
    """Fig. 6: group communication, rate × intra:inter-ratio sweep."""
    return CampaignSpec(
        name="fig6",
        protocols=["mutable"],
        workloads=[
            {
                "kind": "group",
                "mean_send_interval": 1.0 / rate,
                "n_groups": 4,
                "intra_inter_ratio": ratio,
            }
            for ratio in (1_000.0, 10_000.0)
            for rate in (0.005, 0.01, 0.02, 0.05)
        ],
        run={"max_initiations": 22, "warmup_initiations": 2},
    )


def _smoke_spec() -> CampaignSpec:
    """4 fast points (2 protocols × 2 rates) for CI smoke runs."""
    return CampaignSpec(
        name="smoke",
        protocols=["mutable", "koo-toueg"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": 100.0},
            {"kind": "p2p", "mean_send_interval": 25.0},
        ],
        configs=[{"n_processes": 8, "trace_messages": True}],
        run={"max_initiations": 5, "warmup_initiations": 1},
    )


PRESETS = {
    "fig5": _fig5_spec,
    "fig6": _fig6_spec,
    "smoke": _smoke_spec,
}


def preset_spec(name: str) -> CampaignSpec:
    """A built-in campaign by name (``fig5``, ``fig6``, ``smoke``)."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
