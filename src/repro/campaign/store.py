"""Durable result store for campaigns.

Append-only JSON lines keyed by each point's content hash. Durability
rules:

* every record is flushed and fsync'd before ``append`` returns, so a
  killed campaign loses at most the point it was writing;
* loading tolerates a torn final line (the classic crash artifact) by
  ignoring it;
* later records for the same hash win, so a retried or re-run point
  simply supersedes its earlier failure.

The store never trusts positions — resuming compares content hashes, so
it is safe to point several related campaigns at one store file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.core.results import RunResult


@dataclass
class PointRecord:
    """Outcome of one campaign point (one store line).

    ``status`` is ``"ok"`` or ``"failed"``; failed records carry the
    error string instead of a result. ``attempts`` counts executions of
    this point so far, including the one recorded here.
    """

    point_hash: str
    status: str
    point: Dict[str, Any]
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 1
    wall_time: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def run_result(self) -> RunResult:
        """The stored result, rehydrated."""
        if self.result is None:
            raise ValueError(f"point {self.point_hash} has no result ({self.status})")
        return RunResult.from_dict(self.result)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point_hash": self.point_hash,
            "status": self.status,
            "point": self.point,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointRecord":
        return cls(**data)


class ResultStore:
    """JSONL-backed store of :class:`PointRecord`; ``path=None`` keeps
    everything in memory (useful for tests and one-shot benches)."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._records: Dict[str, PointRecord] = {}
        self._fh = None
        self._torn_tail = False
        if path is not None:
            self._load(path)
            self._fh = open(path, "a", encoding="utf-8")
            if self._torn_tail:
                # Terminate the torn line so the next record starts on a
                # fresh one instead of concatenating with the fragment.
                self._fh.write("\n")
                self._fh.flush()

    def _load(self, path: str) -> None:
        self._torn_tail = False
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as fh:
            content = fh.read()
        self._torn_tail = bool(content) and not content.endswith("\n")
        for line in content.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                # Torn line from a crash mid-write: the point it
                # described simply reruns on resume.
                continue
            record = PointRecord.from_dict(data)
            self._records[record.point_hash] = record

    # -- writing ---------------------------------------------------------
    def append(self, record: PointRecord) -> None:
        """Record one outcome, durably (flush + fsync before returning)."""
        self._records[record.point_hash] = record
        if self._fh is not None:
            self._fh.write(json.dumps(record.to_dict()) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, point_hash: str) -> bool:
        """True when the point has a *successful* result.

        Membership is the cache-hit question ("can this point's compute
        be reused?"), so failed records do not count — they are visible
        via :meth:`get` and :meth:`failed_records`, but a cache keyed on
        ``in`` must re-run them.
        """
        record = self._records.get(point_hash)
        return record is not None and record.ok

    def get(self, point_hash: str) -> Optional[PointRecord]:
        return self._records.get(point_hash)

    def records(self) -> Iterator[PointRecord]:
        return iter(self._records.values())

    def completed_hashes(self) -> Set[str]:
        """Hashes with a successful result (what resume skips)."""
        return {h for h, r in self._records.items() if r.ok}

    def failed_records(self) -> List[PointRecord]:
        return [r for r in self._records.values() if not r.ok]

    def snapshot_paths(self) -> Dict[str, List[str]]:
        """Snapshot files recorded per point, keyed by point hash.

        Populated by snapshot-enabled campaigns (the executor stamps
        ``meta["snapshots"]``); points run without snapshotting are
        absent. The crash-resume path does not need this index — workers
        look in ``<snapshot_dir>/<point_hash>/`` directly — but reports
        and cleanup tooling do.

        Only files that still exist are reported: a completed point's
        snapshots are dead state and cleanup tooling deletes them, but
        the records listing them are immutable history — without the
        existence guard every later call would keep reporting orphaned
        ``.rsnap`` paths for points that long since completed.
        """
        paths: Dict[str, List[str]] = {}
        for point_hash, record in self._records.items():
            snapshots = (record.meta or {}).get("snapshots")
            if snapshots:
                live = [p for p in snapshots if os.path.exists(p)]
                if live:
                    paths[point_hash] = live
        return paths
