"""Progress and ETA reporting for campaign runs.

One line per finished point plus a summary, written to an arbitrary
stream (stderr by default so result rows on stdout stay machine-
readable). ETA is the mean per-point wall time over finished points,
scaled by the remaining count and divided by the worker count — crude,
but campaigns are embarrassingly parallel so it tracks well.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO


class ProgressReporter:
    """Counts done/total and prints per-point wall-time and ETA."""

    def __init__(
        self,
        total: int,
        workers: int = 1,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
    ) -> None:
        self.total = total
        self.workers = max(1, workers)
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.done = 0
        self.skipped = 0
        self.failed = 0
        self.wall_times: List[float] = []
        self._started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------
    def start(self, skipped: int = 0) -> None:
        self._started_at = time.perf_counter()
        self.skipped = skipped
        self.done = skipped
        if skipped:
            self._emit(
                f"resuming: {skipped}/{self.total} points already in the store"
            )
        self._emit(
            f"running {self.total - skipped} points on "
            f"{self.workers} worker(s)"
        )

    def point_done(self, label: str, ok: bool, wall_time: float) -> None:
        self.done += 1
        if not ok:
            self.failed += 1
        self.wall_times.append(wall_time)
        status = "ok" if ok else "FAILED"
        self._emit(
            f"[{self.done:>{len(str(self.total))}}/{self.total}] "
            f"{label:40s} {status:6s} {wall_time:6.2f}s  eta {self._eta()}"
        )

    def finish(self) -> float:
        """Emit the summary; returns the campaign wall time in seconds."""
        elapsed = self.elapsed()
        ran = self.done - self.skipped
        self._emit(
            f"done: {ran} run, {self.skipped} skipped, "
            f"{self.failed} failed in {elapsed:.2f}s"
            + (
                f" (mean {self.mean_wall_time():.2f}s/point)"
                if self.wall_times
                else ""
            )
        )
        return elapsed

    # -- arithmetic ------------------------------------------------------
    def elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    def mean_wall_time(self) -> float:
        if not self.wall_times:
            return 0.0
        return sum(self.wall_times) / len(self.wall_times)

    def eta_seconds(self) -> float:
        remaining = self.total - self.done
        return self.mean_wall_time() * remaining / self.workers

    def _eta(self) -> str:
        seconds = self.eta_seconds()
        if seconds >= 60.0:
            return f"{seconds / 60.0:.1f}m"
        return f"{seconds:.1f}s"

    def _emit(self, line: str) -> None:
        if self.enabled:
            print(line, file=self.stream)
