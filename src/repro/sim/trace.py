"""Structured trace log for simulation runs.

Every interesting occurrence — message send/receive, checkpoint taken,
commit, handoff — is appended to a :class:`TraceLog` as a
:class:`TraceRecord`. The log is the ground truth used by the
verification layer (:mod:`repro.analysis.consistency`): the consistency
checkers never look at protocol state, only at the trace, so they are
independent witnesses of protocol correctness.

Tracing is leveled. Protocol lifecycle records (initiations, tentative
checkpoints, commits, aborts) are **INFO** and always kept while the log
is on — results collection and the consistency checkers depend on them.
Per-message records (``comp_send``, ``sys_send``, ...) are **DEBUG**:
they dominate trace volume, so hot-path emitters check the
:attr:`TraceLog.debug_on` flag *before* building the record and skip all
work when message tracing is off. ``explore`` and message-level analyses
run at DEBUG for full fidelity; throughput runs stay at INFO.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class TraceLevel:
    """Trace verbosity thresholds (lower is chattier).

    * ``DEBUG`` — per-message records; bulk of trace volume.
    * ``INFO`` — protocol lifecycle records; required by analysis.
    * ``OFF`` — nothing is recorded at all.
    """

    DEBUG = 10
    INFO = 20
    OFF = 100

    _NAMES = {DEBUG: "DEBUG", INFO: "INFO", OFF: "OFF"}

    @classmethod
    def name(cls, level: int) -> str:
        return cls._NAMES.get(level, str(level))


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred.
    kind:
        A short string tag, e.g. ``"comp_send"`` or ``"checkpoint"``.
        The set of kinds in use is documented by the emitting modules.
    fields:
        Event-specific payload. Keys are defined per kind by the emitter.
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """An append-only list of :class:`TraceRecord` with query helpers.

    Parameters
    ----------
    enabled:
        Back-compat master switch; ``False`` is equivalent to
        ``level=TraceLevel.OFF``.
    level:
        Records below this level are skipped. The default ``DEBUG``
        keeps everything (the historical behaviour of a bare
        ``TraceLog()``).
    sample_every:
        Keep only every N-th DEBUG record (deterministic counter-based
        sampling; INFO records are never sampled out). ``1`` keeps all.
    """

    def __init__(
        self,
        enabled: bool = True,
        level: int = TraceLevel.DEBUG,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self.sample_every = sample_every
        self._debug_seen = 0
        self._level = TraceLevel.OFF  # set_level below fixes the flags
        self.set_level(level if enabled else TraceLevel.OFF)

    # -- level management --------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        """Set the verbosity and refresh the hot-path fast flags."""
        self._level = level
        # Emitters read these plain bools instead of comparing levels, so
        # a trace-off (or INFO) run skips record/field construction with
        # a single attribute load.
        self.debug_on = level <= TraceLevel.DEBUG
        self.info_on = level <= TraceLevel.INFO

    @property
    def enabled(self) -> bool:
        """Back-compat view: is anything being recorded?"""
        return self._level < TraceLevel.OFF

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.set_level(TraceLevel.DEBUG if value else TraceLevel.OFF)

    # -- recording ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an INFO-level record (no-op when the log is off)."""
        if not self.info_on:
            return
        rec = TraceRecord(time, kind, fields)
        self._records.append(rec)
        for subscriber in self._subscribers:
            subscriber(rec)

    def debug(self, time: float, kind: str, **fields: Any) -> None:
        """Append a DEBUG-level record (subject to sampling).

        Hot-path emitters should guard the *call itself* with
        :attr:`debug_on` so the record kwargs are never even built when
        message tracing is off; this method re-checks only as a safety
        net for unguarded callers.
        """
        if not self.debug_on:
            return
        self._debug_seen += 1
        if self.sample_every > 1 and self._debug_seen % self.sample_every:
            return
        rec = TraceRecord(time, kind, fields)
        self._records.append(rec)
        for subscriber in self._subscribers:
            subscriber(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded entry."""
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[TraceRecord]:
        """All records whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def where(self, kind: Optional[str] = None, **conditions: Any) -> List[TraceRecord]:
        """Records matching a kind and exact field values."""
        out = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if all(r.fields.get(k) == v for k, v in conditions.items()):
                out.append(r)
        return out

    def count(self, kind: str, **conditions: Any) -> int:
        """Number of records matching ``kind`` and field conditions."""
        return len(self.where(kind, **conditions))

    def last(self, kind: str) -> Optional[TraceRecord]:
        """The most recent record of ``kind``, or None."""
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self._records if start <= r.time <= end]

    def clear(self) -> None:
        """Drop all records (subscribers are retained)."""
        self._records.clear()
        self._debug_seen = 0

    def kinds(self) -> Tuple[str, ...]:
        """The distinct record kinds present, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.kind, None)
        return tuple(seen)

    def content_hash(self) -> str:
        """SHA-256 over a canonical rendering of every record.

        Two logs hash equal iff they hold the same records in the same
        order (fields compared by sorted key) — the determinism tests'
        byte-level witness that two runs traced identically.
        """
        digest = hashlib.sha256()
        for r in self._records:
            fields = ",".join(
                f"{k}={r.fields[k]!r}" for k in sorted(r.fields)
            )
            digest.update(f"{r.time!r}|{r.kind}|{fields}\n".encode())
        return digest.hexdigest()
