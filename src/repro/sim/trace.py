"""Structured trace log for simulation runs.

Every interesting occurrence — message send/receive, checkpoint taken,
commit, handoff — is appended to a :class:`TraceLog` as a
:class:`TraceRecord`. The log is the ground truth used by the
verification layer (:mod:`repro.analysis.consistency`): the consistency
checkers never look at protocol state, only at the trace, so they are
independent witnesses of protocol correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred.
    kind:
        A short string tag, e.g. ``"comp_send"`` or ``"checkpoint"``.
        The set of kinds in use is documented by the emitting modules.
    fields:
        Event-specific payload. Keys are defined per kind by the emitter.
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """An append-only list of :class:`TraceRecord` with query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append a record (no-op when the log is disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time, kind, fields)
        self._records.append(rec)
        for subscriber in self._subscribers:
            subscriber(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded entry."""
        self._subscribers.append(callback)

    def of_kind(self, *kinds: str) -> List[TraceRecord]:
        """All records whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def where(self, kind: Optional[str] = None, **conditions: Any) -> List[TraceRecord]:
        """Records matching a kind and exact field values."""
        out = []
        for r in self._records:
            if kind is not None and r.kind != kind:
                continue
            if all(r.fields.get(k) == v for k, v in conditions.items()):
                out.append(r)
        return out

    def count(self, kind: str, **conditions: Any) -> int:
        """Number of records matching ``kind`` and field conditions."""
        return len(self.where(kind, **conditions))

    def last(self, kind: str) -> Optional[TraceRecord]:
        """The most recent record of ``kind``, or None."""
        for r in reversed(self._records):
            if r.kind == kind:
                return r
        return None

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self._records if start <= r.time <= end]

    def clear(self) -> None:
        """Drop all records (subscribers are retained)."""
        self._records.clear()

    def kinds(self) -> Tuple[str, ...]:
        """The distinct record kinds present, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.kind, None)
        return tuple(seen)
