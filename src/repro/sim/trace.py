"""Structured trace log for simulation runs.

Every interesting occurrence — message send/receive, checkpoint taken,
commit, handoff — is appended to a :class:`TraceLog` as a
:class:`TraceRecord`. The log is the ground truth used by the
verification layer (:mod:`repro.analysis.consistency`): the consistency
checkers never look at protocol state, only at the trace, so they are
independent witnesses of protocol correctness.

Tracing is leveled. Protocol lifecycle records (initiations, tentative
checkpoints, commits, aborts) are **INFO** and always kept while the log
is on — results collection and the consistency checkers depend on them.
Per-message records (``comp_send``, ``sys_send``, ...) are **DEBUG**:
they dominate trace volume, so hot-path emitters check the
:attr:`TraceLog.debug_on` flag *before* building the record and skip all
work when message tracing is off. ``explore`` and message-level analyses
run at DEBUG for full fidelity; throughput runs stay at INFO.

Flight recorder
---------------
Long runs that still need message fidelity *around interesting moments*
can bound DEBUG memory with ``debug_capacity``: INFO records are kept in
full (analysis depends on them) while DEBUG records go into a ring
buffer holding only the most recent ``debug_capacity`` entries — O(1)
memory however long the run. Iteration, queries, and
:meth:`content_hash` transparently present the merged (INFO + retained
DEBUG) view in recording order. Dump-on-demand is just
:func:`repro.sim.export.save_trace` on the log; subscribers (e.g. the
streaming :class:`~repro.sim.export.JsonlTraceSink`) still see *every*
record before eviction, so full fidelity can stream to disk while the
in-memory window stays bounded.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)


class TraceLevel:
    """Trace verbosity thresholds (lower is chattier).

    * ``DEBUG`` — per-message records; bulk of trace volume.
    * ``INFO`` — protocol lifecycle records; required by analysis.
    * ``OFF`` — nothing is recorded at all.
    """

    DEBUG = 10
    INFO = 20
    OFF = 100

    _NAMES = {DEBUG: "DEBUG", INFO: "INFO", OFF: "OFF"}

    @classmethod
    def name(cls, level: int) -> str:
        return cls._NAMES.get(level, str(level))


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time at which the event occurred.
    kind:
        A short string tag, e.g. ``"comp_send"`` or ``"checkpoint"``.
        The set of kinds in use is documented by the emitting modules.
    fields:
        Event-specific payload. Keys are defined per kind by the emitter.
    """

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """An append-only list of :class:`TraceRecord` with query helpers.

    Parameters
    ----------
    enabled:
        Back-compat master switch; ``False`` is equivalent to
        ``level=TraceLevel.OFF``.
    level:
        Records below this level are skipped. The default ``DEBUG``
        keeps everything (the historical behaviour of a bare
        ``TraceLog()``).
    sample_every:
        Keep only every N-th DEBUG record (deterministic counter-based
        sampling; INFO records are never sampled out). ``1`` keeps all.
    debug_capacity:
        Flight-recorder mode: retain at most this many DEBUG records (a
        ring buffer of the most recent ones). INFO records are always
        kept in full. ``None`` (the default) retains everything.
    """

    def __init__(
        self,
        enabled: bool = True,
        level: int = TraceLevel.DEBUG,
        sample_every: int = 1,
        debug_capacity: Optional[int] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if debug_capacity is not None and debug_capacity < 1:
            raise ValueError(
                f"debug_capacity must be >= 1 (or None), got {debug_capacity}"
            )
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self.sample_every = sample_every
        self._debug_seen = 0
        # Flight-recorder state. In normal mode (_debug_ring is None)
        # everything lives in _records and the sequence bookkeeping is
        # dormant; in flight mode _records holds INFO only, the ring
        # holds (seq, record) for the newest DEBUG entries, and _info_seq
        # parallels _records so iteration can merge the two by seq.
        self._seq = 0
        self._info_seq: List[int] = []
        self._debug_ring: Optional[Deque[Tuple[int, TraceRecord]]] = (
            deque(maxlen=debug_capacity) if debug_capacity is not None else None
        )
        self.debug_capacity = debug_capacity
        #: DEBUG records dropped from the ring so far (0 in normal mode)
        self.debug_evicted = 0
        self._level = TraceLevel.OFF  # set_level below fixes the flags
        self.set_level(level if enabled else TraceLevel.OFF)

    # -- level management --------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    def set_level(self, level: int) -> None:
        """Set the verbosity and refresh the hot-path fast flags."""
        self._level = level
        # Emitters read these plain bools instead of comparing levels, so
        # a trace-off (or INFO) run skips record/field construction with
        # a single attribute load.
        self.debug_on = level <= TraceLevel.DEBUG
        self.info_on = level <= TraceLevel.INFO

    @property
    def enabled(self) -> bool:
        """Back-compat view: is anything being recorded?"""
        return self._level < TraceLevel.OFF

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.set_level(TraceLevel.DEBUG if value else TraceLevel.OFF)

    @property
    def debug_held(self) -> int:
        """DEBUG records currently retained in the flight-recorder ring.

        In normal (unbounded) mode this is 0 — DEBUG records live in the
        main list and are not tracked separately.
        """
        return len(self._debug_ring) if self._debug_ring is not None else 0

    # -- recording ---------------------------------------------------------
    def __len__(self) -> int:
        if self._debug_ring is None:
            return len(self._records)
        return len(self._records) + len(self._debug_ring)

    def __iter__(self) -> Iterator[TraceRecord]:
        if self._debug_ring is None:
            return iter(self._records)
        return iter(self._merged())

    def _merged(self) -> List[TraceRecord]:
        """INFO + retained DEBUG records, in recording order (flight mode)."""
        assert self._debug_ring is not None
        merged: List[Tuple[int, TraceRecord]] = list(self._debug_ring)
        merged.extend(zip(self._info_seq, self._records))
        merged.sort(key=lambda pair: pair[0])
        return [record for _, record in merged]

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append an INFO-level record (no-op when the log is off)."""
        if not self.info_on:
            return
        rec = TraceRecord(time, kind, fields)
        self._records.append(rec)
        if self._debug_ring is not None:
            self._info_seq.append(self._seq)
            self._seq += 1
        for subscriber in self._subscribers:
            subscriber(rec)

    def debug(self, time: float, kind: str, **fields: Any) -> None:
        """Append a DEBUG-level record (subject to sampling).

        Hot-path emitters should guard the *call itself* with
        :attr:`debug_on` so the record kwargs are never even built when
        message tracing is off; this method re-checks only as a safety
        net for unguarded callers.
        """
        if not self.debug_on:
            return
        self._debug_seen += 1
        if self.sample_every > 1 and self._debug_seen % self.sample_every:
            return
        rec = TraceRecord(time, kind, fields)
        ring = self._debug_ring
        if ring is None:
            self._records.append(rec)
        else:
            if len(ring) == ring.maxlen:
                self.debug_evicted += 1
            ring.append((self._seq, rec))
            self._seq += 1
        for subscriber in self._subscribers:
            subscriber(rec)

    def release_flight_recorder(self) -> None:
        """Leave flight-recorder mode: retain every record from now on.

        Records currently held (all INFO plus the surviving DEBUG tail)
        are folded into the unbounded list in recording order; already
        evicted ones are gone. Time-travel replay uses this after a
        snapshot restore — a replay exists precisely to regenerate the
        records an original bounded ring would evict.
        """
        if self._debug_ring is not None:
            self._records = self._merged()
            self._debug_ring = None
            self._info_seq = []
        self.debug_capacity = None

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: records and counters travel, subscribers don't.

        Subscribers are live callbacks into harness objects (runners,
        injection drivers, JSONL sinks, flight-recorder taps); a
        restored log starts with none, and the snapshot restore path
        re-attaches the ones it owns (see ``repro.snapshot.state``).
        External sinks must be re-subscribed by their owners.
        """
        state = self.__dict__.copy()
        state["_subscribers"] = []
        return state

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every subsequently recorded entry.

        Subscribers see every record at recording time — in flight-
        recorder mode that includes DEBUG records later evicted from the
        ring, which is how a streaming sink preserves full fidelity.
        """
        self._subscribers.append(callback)

    # -- queries -----------------------------------------------------------
    def of_kind(self, *kinds: str) -> List[TraceRecord]:
        """All records whose kind is one of ``kinds``, in time order."""
        wanted = set(kinds)
        return [r for r in self if r.kind in wanted]

    def where(self, kind: Optional[str] = None, **conditions: Any) -> List[TraceRecord]:
        """Records matching a kind and exact field values."""
        out = []
        for r in self:
            if kind is not None and r.kind != kind:
                continue
            if all(r.fields.get(k) == v for k, v in conditions.items()):
                out.append(r)
        return out

    def count(self, kind: str, **conditions: Any) -> int:
        """Number of records matching ``kind`` and field conditions."""
        return len(self.where(kind, **conditions))

    def last(self, kind: str) -> Optional[TraceRecord]:
        """The most recent record of ``kind``, or None."""
        view = self._records if self._debug_ring is None else self._merged()
        for r in reversed(view):
            if r.kind == kind:
                return r
        return None

    def between(self, start: float, end: float) -> List[TraceRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self if start <= r.time <= end]

    def clear(self) -> None:
        """Drop all records (subscribers are retained)."""
        self._records.clear()
        self._debug_seen = 0
        self._seq = 0
        self._info_seq.clear()
        if self._debug_ring is not None:
            self._debug_ring.clear()
        self.debug_evicted = 0

    def kinds(self) -> Tuple[str, ...]:
        """The distinct record kinds present, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self:
            seen.setdefault(r.kind, None)
        return tuple(seen)

    def content_hash(self) -> str:
        """SHA-256 over a canonical rendering of every record.

        Two logs hash equal iff they hold the same records in the same
        order (fields compared by sorted key) — the determinism tests'
        byte-level witness that two runs traced identically.
        """
        digest = hashlib.sha256()
        for r in self:
            fields = ",".join(
                f"{k}={r.fields[k]!r}" for k in sorted(r.fields)
            )
            digest.update(f"{r.time!r}|{r.kind}|{fields}\n".encode())
        return digest.hexdigest()
