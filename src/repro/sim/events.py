"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a callback scheduled to fire at a simulated time.
Events are totally ordered by ``(time, priority, seq)`` where ``seq`` is
a monotonically increasing insertion counter; the tie-break makes runs
deterministic regardless of heap internals. ``priority`` defaults to 0
and is only ever set by a :class:`~repro.sim.kernel.SchedulePolicy`, so
without a policy the order degenerates to the classic ``(time, seq)``
FIFO-within-a-timestamp order.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.sim.kernel.Simulator.schedule`;
    user code should treat them as opaque handles, using only
    :meth:`cancel` and :attr:`cancelled`.

    ``owner`` is the kernel backref used for cancelled-event accounting
    (so the heap can be compacted when mostly dead) and for freelist
    recycling; it is managed entirely by the :class:`Simulator`.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        priority: int = 0,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self.owner = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.

        Cancelling an event that already fired or was already cancelled is
        a no-op; the kernel lazily discards cancelled events when they
        reach the head of the queue (or earlier, when a compaction sweep
        rebuilds a mostly-cancelled heap).
        """
        if not self._cancelled:
            self._cancelled = True
            owner = self.owner
            if owner is not None:
                owner._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self._cancelled else ""
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} seq={self.seq} {name}{state}>"


class Timer:
    """A restartable one-shot timer built on kernel events.

    Wraps the schedule/cancel dance needed for timeouts: :meth:`restart`
    cancels any pending expiry and schedules a new one.
    """

    def __init__(self, sim: "Simulator", callback: Callable[[], Any]) -> None:  # noqa: F821
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        """Whether the timer is armed and has not yet fired."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm the timer to fire ``delay`` simulated seconds from now.

        Raises if the timer is already pending; use :meth:`restart` to
        rearm unconditionally.
        """
        if self.pending:
            raise RuntimeError("timer already pending; use restart()")
        self._event = self._sim.schedule(delay, self._fire)

    def restart(self, delay: float) -> None:
        """Cancel any pending expiry and arm the timer afresh."""
        self.cancel()
        self._event = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if pending."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
