"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop.
* :class:`~repro.sim.shard.ShardedSimulator` — the barrier-window
  sharded kernel (``SystemConfig.shards > 1``), bit-identical to
  :class:`Simulator` by construction.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timer`.
* :class:`~repro.sim.rng.RandomStreams` — named seeded randomness.
* :class:`~repro.sim.trace.TraceLog` — structured ground-truth log.
* :class:`~repro.sim.monitor.Monitor` — counters and tallies.
"""

from repro.sim.events import Event, Timer
from repro.sim.kernel import Simulator
from repro.sim.monitor import Monitor, Tally
from repro.sim.rng import RandomStreams
from repro.sim.shard import Envelope, ShardPlan, ShardedSimulator
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Envelope",
    "Event",
    "Monitor",
    "RandomStreams",
    "ShardPlan",
    "ShardedSimulator",
    "Simulator",
    "Tally",
    "Timer",
    "TraceLog",
    "TraceRecord",
]
