"""Deterministic discrete-event simulation kernel.

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event loop.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timer`.
* :class:`~repro.sim.rng.RandomStreams` — named seeded randomness.
* :class:`~repro.sim.trace.TraceLog` — structured ground-truth log.
* :class:`~repro.sim.monitor.Monitor` — counters and tallies.
"""

from repro.sim.events import Event, Timer
from repro.sim.kernel import Simulator
from repro.sim.monitor import Monitor, Tally
from repro.sim.rng import RandomStreams
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Event",
    "Monitor",
    "RandomStreams",
    "Simulator",
    "Tally",
    "Timer",
    "TraceLog",
    "TraceRecord",
]
