"""Trace export / import as JSON lines.

A run's trace log is its ground truth; exporting it lets experiments be
archived, diffed across code versions, and re-verified offline (the
consistency and minimality checkers run on imported traces unchanged).

Triggers and checkpoint kinds are encoded as tagged objects so a round
trip preserves the types the checkers rely on. Long integer tuples
(rollback pid sets and other per-process vectors, which grow with the
population) are stored as ``[start, count]`` runs when that is smaller;
decoding reconstructs the exact tuple, so archived traces hash the same
regardless of population size.

Two export paths exist:

* :func:`dump_trace` / :func:`save_trace` — offline, after the run; in
  flight-recorder mode this dumps the merged INFO + retained-DEBUG view.
* :class:`JsonlTraceSink` — online: subscribed to a live
  :class:`~repro.sim.trace.TraceLog`, it streams every record to a file
  as it is recorded, so a bounded flight-recorder log can still leave a
  full-fidelity archive on disk.
"""

from __future__ import annotations

import io
import json
from typing import IO, Any, Iterable, Optional, Union

from repro.checkpointing.types import Trigger
from repro.sim.trace import TraceLog, TraceRecord


#: int tuples at least this long are considered for run-length encoding
_COMPACT_MIN = 16


def _int_runs(values: tuple) -> list:
    """``values`` as ``[start, count]`` runs of consecutive integers."""
    runs = []
    start = prev = values[0]
    for v in values[1:]:
        if v == prev + 1:
            prev = v
            continue
        runs.append([start, prev - start + 1])
        start = prev = v
    runs.append([start, prev - start + 1])
    return runs


def _encode_value(value: Any) -> Any:
    if isinstance(value, Trigger):
        return {"__trigger__": [value.pid, value.inum]}
    if isinstance(value, tuple):
        # Long integer tuples (rollback pid sets, per-process vectors)
        # dominate record size at 1k+ processes; mostly-consecutive
        # ones are stored as [start, count] runs instead. Only applied
        # when it actually wins, so scattered tuples stay plain.
        if len(value) >= _COMPACT_MIN and all(type(v) is int for v in value):
            runs = _int_runs(value)
            if 2 * len(runs) < len(value):
                return {"__iruns__": runs}
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_encode_value(v) for v in value)}
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__trigger__" in value:
            pid, inum = value["__trigger__"]
            return Trigger(pid, inum)
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        if "__iruns__" in value:
            out: list = []
            for start, count in value["__iruns__"]:
                out.extend(range(start, start + count))
            return tuple(out)
        if "__set__" in value:
            return set(_decode_value(v) for v in value["__set__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def dump_trace(trace: Iterable[TraceRecord], stream: IO[str]) -> int:
    """Write the trace as JSON lines; returns the record count."""
    count = 0
    for record in trace:
        stream.write(_record_line(record) + "\n")
        count += 1
    return count


def dumps_trace(trace: Iterable[TraceRecord]) -> str:
    """The trace as one JSON-lines string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: Union[IO[str], str]) -> TraceLog:
    """Read a JSON-lines trace back into a :class:`TraceLog`."""
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    log = TraceLog()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        fields = {key: _decode_value(val) for key, val in data["f"].items()}
        log.record(data["t"], data["k"], **fields)
    return log


def _record_line(record: TraceRecord) -> str:
    line = {
        "t": record.time,
        "k": record.kind,
        "f": {key: _encode_value(val) for key, val in record.fields.items()},
    }
    return json.dumps(line, separators=(",", ":"))


class JsonlTraceSink:
    """A streaming JSONL sink for a live :class:`TraceLog`.

    Subscribe it (``sink.attach(trace)``) and every subsequently recorded
    record — including DEBUG records a flight-recorder ring later evicts
    — is written to the file immediately, in the same tagged encoding
    :func:`dump_trace` uses, so :func:`read_trace` reads it back
    unchanged. Use as a context manager::

        with JsonlTraceSink("run.trace.jsonl") as sink:
            sink.attach(system.sim.trace)
            runner.run()
        print(sink.records_written)
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.records_written = 0
        self._handle: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def __call__(self, record: TraceRecord) -> None:
        if self._handle is None:
            raise ValueError(f"sink {self.path} is closed")
        self._handle.write(_record_line(record) + "\n")
        self.records_written += 1

    def attach(self, trace: TraceLog) -> "JsonlTraceSink":
        """Subscribe this sink to ``trace`` and return self."""
        trace.subscribe(self)
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlTraceSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def save_trace(trace: Iterable[TraceRecord], path: str) -> int:
    """Write the trace to a file; returns the record count."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_trace(trace, handle)


def read_trace(path: str) -> TraceLog:
    """Read a trace file back into a :class:`TraceLog`."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace(handle)
