"""Trace export / import as JSON lines.

A run's trace log is its ground truth; exporting it lets experiments be
archived, diffed across code versions, and re-verified offline (the
consistency and minimality checkers run on imported traces unchanged).

Triggers and checkpoint kinds are encoded as tagged objects so a round
trip preserves the types the checkers rely on.
"""

from __future__ import annotations

import io
import json
from typing import IO, Any, Iterable, Union

from repro.checkpointing.types import Trigger
from repro.sim.trace import TraceLog, TraceRecord


def _encode_value(value: Any) -> Any:
    if isinstance(value, Trigger):
        return {"__trigger__": [value.pid, value.inum]}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(_encode_value(v) for v in value)}
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__trigger__" in value:
            pid, inum = value["__trigger__"]
            return Trigger(pid, inum)
        if "__tuple__" in value:
            return tuple(_decode_value(v) for v in value["__tuple__"])
        if "__set__" in value:
            return set(_decode_value(v) for v in value["__set__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def dump_trace(trace: Iterable[TraceRecord], stream: IO[str]) -> int:
    """Write the trace as JSON lines; returns the record count."""
    count = 0
    for record in trace:
        line = {
            "t": record.time,
            "k": record.kind,
            "f": {key: _encode_value(val) for key, val in record.fields.items()},
        }
        stream.write(json.dumps(line, separators=(",", ":")) + "\n")
        count += 1
    return count


def dumps_trace(trace: Iterable[TraceRecord]) -> str:
    """The trace as one JSON-lines string."""
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: Union[IO[str], str]) -> TraceLog:
    """Read a JSON-lines trace back into a :class:`TraceLog`."""
    if isinstance(stream, str):
        stream = io.StringIO(stream)
    log = TraceLog()
    for line in stream:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        fields = {key: _decode_value(val) for key, val in data["f"].items()}
        log.record(data["t"], data["k"], **fields)
    return log


def save_trace(trace: Iterable[TraceRecord], path: str) -> int:
    """Write the trace to a file; returns the record count."""
    with open(path, "w", encoding="utf-8") as handle:
        return dump_trace(trace, handle)


def read_trace(path: str) -> TraceLog:
    """Read a trace file back into a :class:`TraceLog`."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_trace(handle)
