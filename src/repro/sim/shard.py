"""Conservative windowed sharding of one simulation (ROADMAP item 2).

A :class:`ShardedSimulator` partitions a :class:`~repro.core.system.MobileSystem`
by cell/MSS into N shards, each with its own event heap, and executes
them under a **barrier-window** scheme: at every barrier the kernel
computes the safe horizon

    ``horizon = min(earliest event over nonempty shards) + lookahead``

where ``lookahead`` is the minimum cross-shard link delay (every
cross-cell path traverses a wired MSS↔MSS hop, whose latency is a
static lower bound — contention and transmission time only push
arrivals later; see docs/DESIGN.md). Events strictly before the
horizon are safe to execute without any shard observing a message
from its future; cross-shard schedules are counted as timestamped
*envelopes*, and any envelope landing inside the open window is a
*lookahead violation* (a place where a distributed engine would need
a finer bound).

The engine here is the **inline canonical-merge backend**: all N heaps
live in one process and the window executes them in globally merged
``(time, priority, seq)`` order. That makes a sharded run reproduce
the sequential kernel *bit-identically by construction* — same trace
hashes, metrics, message ids, and vector clocks — while exercising the
real partition, horizon, envelope, and stall machinery. Crucially, a
mis-attributed shard tag can never corrupt a result: shard membership
only feeds the window accounting, never the dispatch order. The
multiprocess backend this was built to host is future work
(docs/DESIGN.md discusses why it cannot pay for itself on a
single-core box); the window/horizon layer is the part whose
correctness is hard, and it is fully observable here via
:meth:`ShardedSimulator.shard_report`.

``SystemConfig(shards=1)`` never touches this module — the sequential
fused loop in :mod:`repro.sim.kernel` runs unchanged.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

from repro.errors import ScheduleInPastError, SimulationError
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event
from repro.sim.kernel import (
    _COMPACT_MIN_CANCELLED,
    _FREELIST_MAX,
    SchedulePolicy,
    Simulator,
)
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem

_heappush = heapq.heappush
_heappop = heapq.heappop

_INF = float("inf")

#: attributes followed (in order) when walking an entity graph towards
#: something that carries a ``shard_id`` tag. Covers the runtime's
#: reference chains: protocol process → env → app process → host → MSS,
#: deliver-thunks (``.process``), and mobile hosts (``.mss``, dynamic so
#: a handed-off MH re-homes to its new cell automatically). ``env`` is
#: tried last: RuntimeEnv and AppProcess reference each other, and the
#: ``process``-first order breaks that cycle towards the host chain.
_ENTITY_HOPS = ("process", "host", "mss", "env")


class Envelope(NamedTuple):
    """A cross-shard event, as a distributed engine would ship it."""

    time: float
    priority: int
    seq: int
    src_shard: int
    dst_shard: int
    violation: bool


def resolve_entity_shard(obj: Any, max_hops: int = 6) -> Optional[int]:
    """Walk ``obj``'s reference chain to a ``shard_id`` tag, if any.

    Follows bound-callback owners (channels store their destination's
    delivery method in ``.deliver``, timers in ``._callback``) and the
    entity attributes in :data:`_ENTITY_HOPS`. Returns ``None`` when no
    tagged entity is reachable (the caller falls back to shard 0, the
    coordinator shard that owns the runner, mobility manager, and other
    global closures).
    """
    hops = 0
    while obj is not None and hops < max_hops:
        shard = getattr(obj, "shard_id", None)
        if shard is not None:
            return shard
        bound = getattr(obj, "deliver", None)
        if bound is None:
            bound = getattr(obj, "_callback", None)
        if bound is not None:
            obj = getattr(bound, "__self__", None)
            hops += 1
            continue
        for attr in _ENTITY_HOPS:
            nxt = getattr(obj, attr, None)
            if nxt is not None and not callable(nxt):
                obj = nxt
                break
        else:
            return None
        hops += 1
    return None


class ShardPlan:
    """Static partition of a system's cells across shards.

    Cells (MSSs) are assigned round-robin: ``mss{i}`` → shard
    ``i % n_shards``. Everything colocated with a cell — its stable
    storage, attached mobile hosts, and the processes they run — lives
    in that cell's shard; shard membership of mobile entities is
    resolved *dynamically* through the ``host → mss`` chain, so a
    handoff re-homes an MH (and its process) to the destination cell's
    shard the moment it reattaches. Global coordination objects (the
    experiment runner, mobility manager, module-level closures) belong
    to shard 0.
    """

    def __init__(
        self,
        n_shards: int,
        mss_shard: Dict[str, int],
        pid_shard: Dict[int, int],
    ) -> None:
        self.n_shards = n_shards
        self.mss_shard = mss_shard
        #: home shard of each pid at build time (reporting only; live
        #: resolution is dynamic and follows mobility)
        self.pid_shard = pid_shard

    @property
    def effective_shards(self) -> int:
        """Shards that can ever own work (bounded by the cell count)."""
        return min(self.n_shards, len(self.mss_shard)) if self.mss_shard else 1

    @classmethod
    def build(cls, system: "MobileSystem", n_shards: int) -> "ShardPlan":
        mss_shard = {
            mss.name: i % n_shards for i, mss in enumerate(system.mss_list)
        }
        pid_shard: Dict[int, int] = {}
        for pid, process in system.processes.items():
            host = process.host
            mss = getattr(host, "mss", None)
            home = mss if mss is not None else host
            pid_shard[pid] = mss_shard.get(getattr(home, "name", ""), 0)
        return cls(n_shards, mss_shard, pid_shard)

    def apply(self, system: "MobileSystem") -> None:
        """Tag the topology and register pid lookups with the kernel."""
        for mss in system.mss_list:
            mss.shard_id = self.mss_shard[mss.name]
        sim = system.sim
        if isinstance(sim, ShardedSimulator):
            sim._pid_entities = dict(system.processes)
            sim._plan = self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "effective_shards": self.effective_shards,
            "mss_shard": dict(self.mss_shard),
            "pid_shard": dict(self.pid_shard),
        }


class ShardedSimulator(Simulator):
    """Barrier-window kernel over N per-shard heaps, merged canonically.

    Drop-in :class:`~repro.sim.kernel.Simulator` replacement built by
    :class:`~repro.core.system.MobileSystem` when
    ``SystemConfig.shards > 1``. Dispatch order is the sequential
    kernel's global ``(time, priority, seq)`` order — bit-identical
    results are structural, not emergent — while every event is
    attributed to the shard that owns its callback, windows are opened
    and closed at conservative horizons, and cross-shard traffic is
    counted as envelopes.

    Observability (kept *out* of the metrics registry so a sharded
    run's metrics snapshot stays byte-identical to its sequential
    control): :attr:`windows`, :attr:`envelopes`,
    :attr:`lookahead_violations`, per-shard event counts and stall
    time, all summarized by :meth:`shard_report`.
    """

    def __init__(
        self,
        trace: Optional[TraceLog] = None,
        policy: Optional[SchedulePolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        n_shards: int = 2,
        lookahead: float = 0.0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        super().__init__(trace=trace, policy=policy, metrics=metrics)
        self._n_shards = n_shards
        self._lookahead = lookahead
        self._shard_queues: List[List[Tuple[float, int, int, Event]]] = [
            [] for _ in range(n_shards)
        ]
        self._pid_entities: Dict[int, Any] = {}
        self._plan: Optional[ShardPlan] = None
        self._current_shard = 0
        self._dispatching = False
        self._window_end = _INF
        # -- window accounting (plain attributes, never registry metrics)
        self.windows = 0
        self.envelopes = 0
        self.lookahead_violations = 0
        self.shard_events: List[int] = [0] * n_shards
        self.shard_stall_time: List[float] = [0.0] * n_shards
        #: set to a list by tests/tools to record Envelope tuples
        self.envelope_log: Optional[List[Envelope]] = None

    # -- introspection ---------------------------------------------------
    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def lookahead(self) -> float:
        """The per-window horizon slack (min cross-shard link delay)."""
        return self._lookahead

    @property
    def pending_events(self) -> int:
        return sum(len(queue) for queue in self._shard_queues)

    def shard_report(self) -> Dict[str, Any]:
        """Window/envelope/stall accounting as a plain dict.

        This is the observable surface of the windowed engine: the
        equivalence tests prove shards change *nothing* in the results,
        so the sync machinery is only visible here (and in the CLI/
        service surfaces that carry it).
        """
        report: Dict[str, Any] = {
            "shards": self._n_shards,
            "lookahead": self._lookahead,
            "windows": self.windows,
            "envelopes": self.envelopes,
            "lookahead_violations": self.lookahead_violations,
            "stall_seconds": sum(self.shard_stall_time),
            "per_shard": [
                {"events": self.shard_events[i],
                 "stall_seconds": self.shard_stall_time[i]}
                for i in range(self._n_shards)
            ],
        }
        if self._plan is not None:
            report["effective_shards"] = self._plan.effective_shards
        return report

    def flush_metrics(self) -> None:
        self.metrics.gauge("kernel.events_processed").set(
            float(self._events_processed)
        )
        self.metrics.gauge("kernel.pending_events").set(
            float(self.pending_events)
        )
        self.metrics.gauge("kernel.now").set(self._now)

    # -- shard resolution ------------------------------------------------
    def _resolve_shard(self, callback: Callable[..., Any], args: Tuple) -> int:
        shard = getattr(callback, "shard_id", None)
        if shard is not None:
            return shard
        owner = getattr(callback, "__self__", callback)
        if owner is not None:
            if getattr(owner, "shard_by_pid", False) and args:
                pid = args[0]
                if isinstance(pid, int):
                    entity = self._pid_entities.get(pid)
                    if entity is not None:
                        shard = resolve_entity_shard(entity)
                        if shard is not None:
                            return shard
            shard = resolve_entity_shard(owner)
            if shard is not None:
                return shard
        for arg in args[:2]:
            if arg is not None and not isinstance(arg, (int, float, str)):
                shard = resolve_entity_shard(arg)
                if shard is not None:
                    return shard
        return 0

    # -- scheduling ------------------------------------------------------
    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        stream: Optional[Hashable] = None,
    ) -> Event:
        if when < self._now:
            raise ScheduleInPastError(self._now, when)
        priority = 0
        if self._policy is not None:
            when, priority = self._policy.on_schedule(self._now, when, stream)
            if when < self._now:
                when = self._now
            if stream is not None:
                floor = self._stream_floors.get(stream)
                if floor is not None and (when, priority) < floor:
                    when, priority = floor
                self._stream_floors[stream] = (when, priority)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event._cancelled = False
        else:
            event = Event(when, seq, callback, args, priority=priority)
        event.owner = self
        shard = self._resolve_shard(callback, args)
        if shard < 0 or shard >= self._n_shards:
            shard = shard % self._n_shards
        if self._dispatching and shard != self._current_shard:
            # Cross-shard schedule: in a distributed engine this is an
            # envelope shipped at the window boundary. One that lands
            # inside the currently open window is a lookahead violation
            # (the destination may already have executed past it).
            self.envelopes += 1
            violation = when < self._window_end
            if violation:
                self.lookahead_violations += 1
            if self.envelope_log is not None:
                self.envelope_log.append(Envelope(
                    when, priority, seq, self._current_shard, shard, violation
                ))
        _heappush(self._shard_queues[shard], (when, priority, seq, event))
        if self._profiler is not None:
            self._profiler.on_push(self.pending_events)
        return event

    # -- cancelled-event accounting --------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > _COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > self.pending_events
        ):
            self._compact()

    def _compact(self) -> None:
        free = self._free
        for queue in self._shard_queues:
            dead = [entry[3] for entry in queue if entry[3]._cancelled]
            queue[:] = [entry for entry in queue if not entry[3]._cancelled]
            heapq.heapify(queue)
            for event in dead:
                event.owner = None
                if len(free) < _FREELIST_MAX and getrefcount(event) == 3:
                    event.callback = None
                    event.args = ()
                    free.append(event)
        self._cancelled_pending = 0

    # -- dispatch --------------------------------------------------------
    def _pop_min_shard(self) -> int:
        """Index of the shard holding the global minimum live event.

        Lazily drops cancelled heads on the way; returns ``-1`` when
        every heap is drained. The merged ``(time, priority, seq)``
        comparison is exactly the sequential kernel's pop order (seq is
        globally unique, so ties never reach the Event field).
        """
        queues = self._shard_queues
        profiler = self._profiler
        best = None
        best_i = -1
        for i in range(self._n_shards):
            queue = queues[i]
            while queue:
                head = queue[0]
                if head[3]._cancelled:
                    event = _heappop(queue)[3]
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    event.owner = None
                    if profiler is not None:
                        profiler.on_cancelled_pop()
                    continue
                if best is None or head < best:
                    best = head
                    best_i = i
                break
        return best_i

    def step(self) -> bool:
        shard = self._pop_min_shard()
        if shard < 0:
            return False
        event = _heappop(self._shard_queues[shard])[3]
        self._now = event.time
        self._events_processed += 1
        self.shard_events[shard] += 1
        self._current_shard = shard
        self._dispatching = True
        try:
            if self._profiler is not None:
                started = perf_counter()
                event.callback(*event.args)
                self._profiler.on_event(
                    event.callback, perf_counter() - started,
                    self.pending_events,
                )
            else:
                event.callback(*event.args)
        finally:
            self._dispatching = False
        if self._snap_hook is not None:
            self._snap_countdown -= 1
            if self._snap_countdown <= 0:
                self._snap_countdown = self._snap_every
                self._snap_hook()
        return True

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> None:
        self._run_windowed(until, max_events)

    def _run_fast_hooked(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        self._run_windowed(until, max_events)

    def _run_instrumented(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        self._run_windowed(until, max_events)

    def _run_windowed(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The barrier-window event loop.

        Outer loop: one iteration per window. The barrier computes the
        horizon from the global minimum; stall time is charged to every
        nonempty shard whose earliest event lies at/after the horizon
        (it would block for the whole window in a distributed engine).
        Inner loop: merged canonical dispatch of every event strictly
        below the horizon — identical order, clock, budget, ``until``,
        stop, hook, and freelist semantics to the sequential fused
        loop. With ``lookahead == 0`` the window degenerates to "all
        events at the minimum timestamp" (inclusive bound, so progress
        is still guaranteed).
        """
        queues = self._shard_queues
        n = self._n_shards
        lookahead = self._lookahead
        strict = lookahead > 0.0
        pop = _heappop
        free = self._free
        free_append = free.append
        refcount = getrefcount
        burn = self._burn
        profiler = self._profiler
        budget = (
            None if max_events is None else self._events_processed + max_events
        )
        self._dispatching = True
        try:
            while True:
                # ---- barrier: horizon + stall accounting ----
                shard = self._pop_min_shard()
                if shard < 0:
                    return
                earliest = queues[shard][0][0]
                if until is not None and earliest > until:
                    return
                cutoff = earliest + lookahead
                self.windows += 1
                self._window_end = cutoff
                if n > 1:
                    stall = self.shard_stall_time
                    for i in range(n):
                        queue = queues[i]
                        if queue and queue[0][0] >= cutoff:
                            stall[i] += cutoff - earliest
                # ---- window: merged canonical dispatch below cutoff ----
                while True:
                    shard = self._pop_min_shard()
                    if shard < 0:
                        return
                    queue = queues[shard]
                    when = queue[0][0]
                    if (when >= cutoff) if strict else (when > cutoff):
                        break  # next barrier
                    if until is not None and when > until:
                        return
                    if budget is not None and self._events_processed >= budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events} "
                            "(runaway simulation?)"
                        )
                    event = pop(queue)[3]
                    self._now = when
                    self._events_processed += 1
                    self.shard_events[shard] += 1
                    self._current_shard = shard
                    if burn is not None:
                        burn()
                    if profiler is not None:
                        started = perf_counter()
                        event.callback(*event.args)
                        profiler.on_event(
                            event.callback, perf_counter() - started,
                            self.pending_events,
                        )
                    else:
                        event.callback(*event.args)
                    if refcount(event) == 2 and len(free) < _FREELIST_MAX:
                        event.callback = None
                        event.args = ()
                        event.owner = None
                        free_append(event)
                    if self._snap_hook is not None:
                        self._snap_countdown -= 1
                        if self._snap_countdown <= 0:
                            self._snap_countdown = self._snap_every
                            self._snap_hook()
                    if self._stop_requested:
                        return
        finally:
            self._dispatching = False
            self._window_end = _INF

    # -- pickle support --------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        state = super().__getstate__()
        state["_dispatching"] = False
        state["_window_end"] = _INF
        state["envelope_log"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedSimulator shards={self._n_shards} t={self._now:.6f} "
            f"pending={self.pending_events} processed={self._events_processed} "
            f"windows={self.windows}>"
        )
