"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`~repro.sim.events.Event` objects. Running the simulator pops
events in ``(time, insertion-order)`` order and invokes their callbacks.
Everything in the reproduction — channels, hosts, protocols, workloads —
is driven by this single queue, which makes every run deterministic and
replayable for a given seed.

The kernel deliberately has no notion of "process" in the simpy sense:
entities are plain objects that schedule callbacks. This keeps the event
loop easy to reason about and trivially deterministic.
"""

from __future__ import annotations

import heapq
from itertools import count
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ScheduleInPastError, SimulationError
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, Timer
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.profiler import KernelProfiler


class SchedulePolicy:
    """Hook deciding *when* and *in what order* scheduled events fire.

    The kernel consults the policy once per ``schedule``/``schedule_at``
    call and uses the returned ``(when, priority)`` for the new event.
    Events are ordered by ``(time, priority, seq)``, so a policy can
    perturb event ordering two ways:

    * **delay jitter** — return a later ``when`` (the kernel clamps the
      result to ``>= now``, so a policy can never schedule into the
      past);
    * **tie-break shuffling** — return a nonzero ``priority`` to reorder
      events that share a timestamp (lower fires first; the default 0
      preserves insertion order).

    Determinism contract: a policy must be a pure function of its own
    seeded state and the sequence of ``on_schedule`` calls. The kernel
    calls it in a deterministic order (the simulation itself is
    deterministic), so a seeded policy yields bit-identical schedules on
    every replay.

    FIFO safety: callers that rely on in-order delivery (e.g. FIFO
    channels) pass a ``stream`` key; the kernel forces ``(when,
    priority)`` to be monotonically non-decreasing per stream, so a
    policy can never reorder events within a stream, only across
    streams. ``stream=None`` (the default) is unconstrained.

    The base class is the identity policy: no jitter, no shuffling.
    """

    def on_schedule(
        self, now: float, when: float, stream: Optional[Hashable]
    ) -> Tuple[float, int]:
        """Return the ``(when, priority)`` to use for a new event.

        Parameters
        ----------
        now:
            Current simulated time.
        when:
            Requested absolute fire time (``>= now``).
        stream:
            FIFO-stream key the caller tagged the event with, or ``None``.
        """
        return when, 0


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.sim.trace.TraceLog` that entities may use
        to record structured events. The kernel itself does not write to
        it; it is carried here so every entity can reach it through the
        simulator it already holds.
    policy:
        Optional :class:`SchedulePolicy` consulted on every schedule
        call. Without one the kernel behaves exactly as before (pure
        ``(time, seq)`` order).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` shared by
        every entity in the simulation (one is created if omitted). The
        kernel keeps its own hot counters as plain ints and publishes
        them via :meth:`flush_metrics`, so the event loop pays nothing
        for metrics until someone asks for a snapshot.
    """

    def __init__(
        self,
        trace: Optional[TraceLog] = None,
        policy: Optional[SchedulePolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._queue: List[Event] = []
        self._seq = count()
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        self._policy = policy
        self._profiler: Optional["KernelProfiler"] = None
        self._stream_floors: Dict[Hashable, Tuple[float, int]] = {}
        self.trace: TraceLog = trace if trace is not None else TraceLog()
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self._now

    @property
    def policy(self) -> Optional[SchedulePolicy]:
        """The active :class:`SchedulePolicy`, if any."""
        return self._policy

    def set_policy(self, policy: Optional[SchedulePolicy]) -> None:
        """Install (or clear) the schedule policy.

        Only affects events scheduled after the call; install the policy
        before the first event for a fully perturbed run. Per-stream
        FIFO floors are reset, since they only constrain policy output.
        """
        self._policy = policy
        self._stream_floors.clear()

    @property
    def profiler(self) -> Optional["KernelProfiler"]:
        """The attached :class:`~repro.obs.profiler.KernelProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler: Optional["KernelProfiler"]) -> None:
        """Attach (or detach) a kernel profiler.

        While attached, every dispatched event is wall-clock timed and
        attributed to its callback's qualified name, and heap pushes /
        cancelled pops are counted. Detached runs pay one ``is not
        None`` check per event.
        """
        self._profiler = profiler

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been invoked."""
        return self._events_processed

    def flush_metrics(self) -> None:
        """Publish the kernel's counters into the metrics registry.

        Sets ``kernel.events_processed`` and ``kernel.pending_events``
        from the kernel's internal tallies. Idempotent — call it right
        before taking a snapshot.
        """
        self.metrics.gauge("kernel.events_processed").set(
            float(self._events_processed)
        )
        self.metrics.gauge("kernel.pending_events").set(float(len(self._queue)))
        self.metrics.gauge("kernel.now").set(self._now)

    @property
    def pending_events(self) -> int:
        """Number of events in the queue, including cancelled ones."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        stream: Optional[Hashable] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle that may be cancelled. A zero
        delay is allowed and fires after all previously scheduled events
        at the current instant (FIFO within a timestamp). ``stream``
        tags the event with a FIFO-stream key for the
        :class:`SchedulePolicy` (ignored without a policy).
        """
        if delay < 0:
            raise ScheduleInPastError(self._now, self._now + delay)
        return self.schedule_at(self._now + delay, callback, *args, stream=stream)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        stream: Optional[Hashable] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ScheduleInPastError(self._now, when)
        priority = 0
        if self._policy is not None:
            when, priority = self._policy.on_schedule(self._now, when, stream)
            if when < self._now:
                when = self._now
            if stream is not None:
                # Per-stream monotone floor: a policy may delay or
                # reprioritize a stream's events but never reorder them.
                floor = self._stream_floors.get(stream)
                if floor is not None and (when, priority) < floor:
                    when, priority = floor
                self._stream_floors[stream] = (when, priority)
        event = Event(when, next(self._seq), callback, args, priority=priority)
        heapq.heappush(self._queue, event)
        if self._profiler is not None:
            self._profiler.on_push(len(self._queue))
        return event

    def timer(self, callback: Callable[[], Any]) -> Timer:
        """Create a restartable :class:`~repro.sim.events.Timer`."""
        return Timer(self, callback)

    def step(self) -> bool:
        """Process the next non-cancelled event.

        Returns ``False`` when the queue is exhausted, ``True`` otherwise.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if self._profiler is not None:
                    self._profiler.on_cancelled_pop()
                continue
            self._now = event.time
            self._events_processed += 1
            if self._profiler is not None:
                started = perf_counter()
                event.callback(*event.args)
                self._profiler.on_event(
                    event.callback, perf_counter() - started, len(self._queue)
                )
            else:
                event.callback(*event.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events scheduled at
            exactly ``until`` are processed; the clock ends at ``until``
            even if the queue drained earlier, so periodic measurements
            spanning the full horizon are well defined.
        max_events:
            Safety valve: raise :class:`SimulationError` if more than this
            many events are processed (catches runaway feedback loops in
            protocol code).
        """
        if self._running:
            raise SimulationError("run() called reentrantly")
        self._running = True
        processed_at_start = self._events_processed
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    if self._profiler is not None:
                        self._profiler.on_cancelled_pop()
                    continue
                if until is not None and head.time > until:
                    break
                if (
                    max_events is not None
                    and self._events_processed - processed_at_start >= max_events
                ):
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                heapq.heappop(self._queue)
                self._now = head.time
                self._events_processed += 1
                if self._profiler is not None:
                    started = perf_counter()
                    head.callback(*head.args)
                    self._profiler.on_event(
                        head.callback, perf_counter() - started, len(self._queue)
                    )
                else:
                    head.callback(*head.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is completely drained."""
        self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
