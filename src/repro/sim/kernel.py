"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of
:class:`~repro.sim.events.Event` objects. Running the simulator pops
events in ``(time, insertion-order)`` order and invokes their callbacks.
Everything in the reproduction — channels, hosts, protocols, workloads —
is driven by this single queue, which makes every run deterministic and
replayable for a given seed.

The kernel deliberately has no notion of "process" in the simpy sense:
entities are plain objects that schedule callbacks. This keeps the event
loop easy to reason about and trivially deterministic.
"""

from __future__ import annotations

import heapq
from sys import getrefcount
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import ScheduleInPastError, SimulationError
from repro.obs.registry import MetricsRegistry
from repro.sim.events import Event, Timer
from repro.sim.trace import TraceLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.profiler import KernelProfiler

_heappush = heapq.heappush
_heappop = heapq.heappop

#: upper bound on recycled Event handles kept per simulator
_FREELIST_MAX = 1024

#: cancelled events tolerated in the heap before a compaction sweep is
#: even considered (tiny queues are cheaper to drain lazily)
_COMPACT_MIN_CANCELLED = 32


def _gcd(values: List[int]) -> int:
    out = values[0]
    for v in values[1:]:
        while v:
            out, v = v, out % v
    return out


class _MultiHook:
    """Dispatches several between-events hooks at their own cadences.

    Installed as the kernel's single hook slot when more than one
    consumer (snapshotter, timeseries sampler, ...) is registered. The
    kernel fires it every gcd-of-cadences events; each sub-hook keeps a
    countdown in units of that stride. Iteration order is registration
    order, so dispatch is deterministic.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: List[Tuple[Callable[[], None], int]]) -> None:
        # mutable [hook, stride, countdown] triples
        self._entries = [[hook, stride, stride] for hook, stride in entries]

    def __call__(self) -> None:
        for entry in self._entries:
            entry[2] -= 1
            if entry[2] <= 0:
                entry[2] = entry[1]
                entry[0]()


class SchedulePolicy:
    """Hook deciding *when* and *in what order* scheduled events fire.

    The kernel consults the policy once per ``schedule``/``schedule_at``
    call and uses the returned ``(when, priority)`` for the new event.
    Events are ordered by ``(time, priority, seq)``, so a policy can
    perturb event ordering two ways:

    * **delay jitter** — return a later ``when`` (the kernel clamps the
      result to ``>= now``, so a policy can never schedule into the
      past);
    * **tie-break shuffling** — return a nonzero ``priority`` to reorder
      events that share a timestamp (lower fires first; the default 0
      preserves insertion order).

    Determinism contract: a policy must be a pure function of its own
    seeded state and the sequence of ``on_schedule`` calls. The kernel
    calls it in a deterministic order (the simulation itself is
    deterministic), so a seeded policy yields bit-identical schedules on
    every replay.

    FIFO safety: callers that rely on in-order delivery (e.g. FIFO
    channels) pass a ``stream`` key; the kernel forces ``(when,
    priority)`` to be monotonically non-decreasing per stream, so a
    policy can never reorder events within a stream, only across
    streams. ``stream=None`` (the default) is unconstrained.

    The base class is the identity policy: no jitter, no shuffling.
    """

    def on_schedule(
        self, now: float, when: float, stream: Optional[Hashable]
    ) -> Tuple[float, int]:
        """Return the ``(when, priority)`` to use for a new event.

        Parameters
        ----------
        now:
            Current simulated time.
        when:
            Requested absolute fire time (``>= now``).
        stream:
            FIFO-stream key the caller tagged the event with, or ``None``.
        """
        return when, 0


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.sim.trace.TraceLog` that entities may use
        to record structured events. The kernel itself does not write to
        it; it is carried here so every entity can reach it through the
        simulator it already holds.
    policy:
        Optional :class:`SchedulePolicy` consulted on every schedule
        call. Without one the kernel behaves exactly as before (pure
        ``(time, seq)`` order).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` shared by
        every entity in the simulation (one is created if omitted). The
        kernel keeps its own hot counters as plain ints and publishes
        them via :meth:`flush_metrics`, so the event loop pays nothing
        for metrics until someone asks for a snapshot.
    """

    def __init__(
        self,
        trace: Optional[TraceLog] = None,
        policy: Optional[SchedulePolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # Heap entries are (time, priority, seq, event) tuples so heapq
        # compares entirely in C; Event.__lt__ never runs on the hot path.
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._now: float = 0.0
        self._events_processed: int = 0
        self._running = False
        self._stop_requested = False
        self._policy = policy
        self._profiler: Optional["KernelProfiler"] = None
        self._burn: Optional[Callable[[], None]] = None
        self._snap_hook: Optional[Callable[[], None]] = None
        self._snap_every = 0
        self._snap_countdown = 0
        self._hooks: Dict[str, Tuple[Callable[[], None], int]] = {}
        self._stream_floors: Dict[Hashable, Tuple[float, int]] = {}
        self._free: List[Event] = []
        self._cancelled_pending = 0
        self.trace: TraceLog = trace if trace is not None else TraceLog()
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )

    @property
    def now(self) -> float:
        """The current simulated time in seconds."""
        return self._now

    @property
    def policy(self) -> Optional[SchedulePolicy]:
        """The active :class:`SchedulePolicy`, if any."""
        return self._policy

    def set_policy(self, policy: Optional[SchedulePolicy]) -> None:
        """Install (or clear) the schedule policy.

        Only affects events scheduled after the call; install the policy
        before the first event for a fully perturbed run. Per-stream
        FIFO floors are reset, since they only constrain policy output.
        """
        self._policy = policy
        self._stream_floors.clear()

    @property
    def profiler(self) -> Optional["KernelProfiler"]:
        """The attached :class:`~repro.obs.profiler.KernelProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler: Optional["KernelProfiler"]) -> None:
        """Attach (or detach) a kernel profiler.

        While attached, every dispatched event is wall-clock timed and
        attributed to its callback's qualified name, and heap pushes /
        cancelled pops are counted. Detached runs pay one ``is not
        None`` check per event.
        """
        self._profiler = profiler

    @property
    def events_processed(self) -> int:
        """Number of events whose callbacks have been invoked."""
        return self._events_processed

    def flush_metrics(self) -> None:
        """Publish the kernel's counters into the metrics registry.

        Sets ``kernel.events_processed`` and ``kernel.pending_events``
        from the kernel's internal tallies. Idempotent — call it right
        before taking a snapshot.
        """
        self.metrics.gauge("kernel.events_processed").set(
            float(self._events_processed)
        )
        self.metrics.gauge("kernel.pending_events").set(float(len(self._queue)))
        self.metrics.gauge("kernel.now").set(self._now)

    @property
    def pending_events(self) -> int:
        """Number of events in the queue, including cancelled ones."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still sitting in the heap.

        Bounded: once more than half the heap is cancelled (and the dead
        fraction is non-trivial in absolute terms), the kernel compacts
        the heap in place, so long runs with many cancelled timers never
        pay O(dead) pop costs.
        """
        return self._cancelled_pending

    def set_burn(self, burn: Optional[Callable[[], None]]) -> None:
        """Install a per-event burn hook (benchmark self-test only).

        While set, :meth:`run` uses the instrumented loop and invokes
        ``burn()`` before every dispatched event — the supported way for
        the bench harness to plant an artificial slowdown.
        """
        self._burn = burn

    def set_snapshot_hook(
        self, hook: Optional[Callable[[], None]], check_every: int = 1
    ) -> None:
        """Install (or clear) the between-events snapshot hook.

        While set, ``hook()`` is invoked every ``check_every`` dispatched
        events, *between* event callbacks — never re-entrantly inside
        one — so the kernel is always at a consistent point when the
        hook observes it. The hook must not schedule events or mutate
        kernel state; :class:`repro.snapshot.Snapshotter` uses it to
        evaluate trigger conditions and serialize the simulation.

        Runs without a hook use the fused fast loop untouched (the
        branch is taken once per :meth:`run` call, not per event), so a
        disabled hook costs nothing.
        """
        self.set_between_events_hook("snapshot", hook, check_every)

    def set_between_events_hook(
        self, key: str, hook: Optional[Callable[[], None]], check_every: int = 1
    ) -> None:
        """Install (or clear, with ``hook=None``) a keyed between-events hook.

        Several consumers may register under distinct keys (the
        snapshotter under ``"snapshot"``, the timeseries sampler under
        ``"timeseries"``); with more than one, the kernel dispatches a
        composed :class:`_MultiHook` every gcd-of-cadences events and
        each hook still fires at its own ``check_every``. With exactly
        one, it is installed directly — identical to the historical
        single-slot behaviour. The same contract applies to every hook:
        it fires *between* event callbacks and must not schedule events
        or mutate kernel state, so hooks are invisible to the simulation.
        """
        if hook is not None and check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every!r}")
        if hook is None:
            self._hooks.pop(key, None)
        else:
            self._hooks[key] = (hook, check_every)
        self._recompose_hooks()

    def _recompose_hooks(self) -> None:
        hooks = list(self._hooks.values())
        if not hooks:
            self._snap_hook = None
            self._snap_every = 0
            self._snap_countdown = 0
        elif len(hooks) == 1:
            hook, every = hooks[0]
            self._snap_hook = hook
            self._snap_every = every
            self._snap_countdown = every
        else:
            stride = _gcd([every for _, every in hooks])
            self._snap_hook = _MultiHook(
                [(hook, every // stride) for hook, every in hooks]
            )
            self._snap_every = stride
            self._snap_countdown = stride

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: the kernel snapshots as *paused*.

        Wall-clock instrumentation (profiler, burn hook) and the
        snapshot hook hold live callbacks into harness objects; they are
        dropped here and re-attached by the restore path — see
        ``repro.snapshot.state``. ``_running``/``_stop_requested`` reset
        so a simulator pickled mid-``run()`` resumes cleanly.
        """
        state = self.__dict__.copy()
        state["_running"] = False
        state["_stop_requested"] = False
        state["_profiler"] = None
        state["_burn"] = None
        state["_snap_hook"] = None
        state["_snap_every"] = 0
        state["_snap_countdown"] = 0
        state["_hooks"] = {}
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        # snapshots written before keyed hooks existed lack the registry
        self.__dict__.setdefault("_hooks", {})

    def stop(self) -> None:
        """Ask the running event loop to halt after the current event.

        Only meaningful from inside an event callback during :meth:`run`;
        the flag is cleared on the next :meth:`run` call.
        """
        self._stop_requested = True

    # -- cancelled-event accounting (called from Event.cancel) ----------
    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > _COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (slice assignment) so a loop that bound ``self._queue``
        to a local keeps operating on the live heap. Pop order is fully
        determined by the (time, priority, seq) keys, so a rebuild never
        changes the dispatch sequence.
        """
        queue = self._queue
        dead = [entry[3] for entry in queue if entry[3]._cancelled]
        queue[:] = [entry for entry in queue if not entry[3]._cancelled]
        heapq.heapify(queue)
        self._cancelled_pending = 0
        free = self._free
        for event in dead:
            event.owner = None
            # dead list + loop variable + getrefcount argument == 3:
            # nobody else holds the handle, so it is safe to recycle.
            if len(free) < _FREELIST_MAX and getrefcount(event) == 3:
                event.callback = None
                event.args = ()
                free.append(event)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        stream: Optional[Hashable] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns an :class:`Event` handle that may be cancelled. A zero
        delay is allowed and fires after all previously scheduled events
        at the current instant (FIFO within a timestamp). ``stream``
        tags the event with a FIFO-stream key for the
        :class:`SchedulePolicy` (ignored without a policy).
        """
        if delay < 0:
            raise ScheduleInPastError(self._now, self._now + delay)
        return self.schedule_at(self._now + delay, callback, *args, stream=stream)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        stream: Optional[Hashable] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ScheduleInPastError(self._now, when)
        priority = 0
        if self._policy is not None:
            when, priority = self._policy.on_schedule(self._now, when, stream)
            if when < self._now:
                when = self._now
            if stream is not None:
                # Per-stream monotone floor: a policy may delay or
                # reprioritize a stream's events but never reorder them.
                floor = self._stream_floors.get(stream)
                if floor is not None and (when, priority) < floor:
                    when, priority = floor
                self._stream_floors[stream] = (when, priority)
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = when
            event.priority = priority
            event.seq = seq
            event.callback = callback
            event.args = args
            event._cancelled = False
        else:
            event = Event(when, seq, callback, args, priority=priority)
        event.owner = self
        _heappush(self._queue, (when, priority, seq, event))
        if self._profiler is not None:
            self._profiler.on_push(len(self._queue))
        return event

    def timer(self, callback: Callable[[], Any]) -> Timer:
        """Create a restartable :class:`~repro.sim.events.Timer`."""
        return Timer(self, callback)

    def step(self) -> bool:
        """Process the next non-cancelled event.

        Returns ``False`` when the queue is exhausted, ``True`` otherwise.
        """
        queue = self._queue
        while queue:
            event = _heappop(queue)[3]
            if event._cancelled:
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                event.owner = None
                if self._profiler is not None:
                    self._profiler.on_cancelled_pop()
                continue
            self._now = event.time
            self._events_processed += 1
            if self._profiler is not None:
                started = perf_counter()
                event.callback(*event.args)
                self._profiler.on_event(
                    event.callback, perf_counter() - started, len(self._queue)
                )
            else:
                event.callback(*event.args)
            if self._snap_hook is not None:
                self._snap_countdown -= 1
                if self._snap_countdown <= 0:
                    self._snap_countdown = self._snap_every
                    self._snap_hook()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events scheduled at
            exactly ``until`` are processed; the clock ends at ``until``
            even if the queue drained earlier, so periodic measurements
            spanning the full horizon are well defined.
        max_events:
            Safety valve: raise :class:`SimulationError` if more than this
            many events are processed (catches runaway feedback loops in
            protocol code).

        Detached runs (no profiler, no burn hook) use a fused fast loop
        with ``heappop``, the queue, and the freelist bound to locals;
        :meth:`set_profiler`/:meth:`set_burn` swap in the instrumented
        loop, so profiled behavior is unchanged.
        """
        if self._running:
            raise SimulationError("run() called reentrantly")
        self._running = True
        self._stop_requested = False
        try:
            if self._profiler is not None or self._burn is not None:
                self._run_instrumented(until, max_events)
            elif self._snap_hook is not None:
                self._run_fast_hooked(until, max_events)
            else:
                self._run_fast(until, max_events)
            if until is not None and self._now < until and not self._stop_requested:
                self._now = until
        finally:
            self._running = False

    def _run_fast(self, until: Optional[float], max_events: Optional[int]) -> None:
        """The detached-mode event loop (everything bound to locals)."""
        queue = self._queue
        pop = _heappop
        free = self._free
        free_append = free.append
        refcount = getrefcount
        budget = (
            None if max_events is None else self._events_processed + max_events
        )
        while queue:
            entry = pop(queue)
            event = entry[3]
            if event._cancelled:
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                event.owner = None
                continue
            when = entry[0]
            if until is not None and when > until:
                _heappush(queue, entry)
                break
            if budget is not None and self._events_processed >= budget:
                _heappush(queue, entry)
                raise SimulationError(
                    f"exceeded max_events={max_events} (runaway simulation?)"
                )
            self._now = when
            entry = None  # release the heap tuple: makes the refcount check exact
            self._events_processed += 1
            event.callback(*event.args)
            # Recycle the handle iff nobody else holds it (local binding
            # + getrefcount argument == 2). Timer clears its handle
            # before invoking the callback, so timer events recycle too.
            if refcount(event) == 2 and len(free) < _FREELIST_MAX:
                event.callback = None
                event.args = ()
                event.owner = None
                free_append(event)
            if self._stop_requested:
                break

    def _run_fast_hooked(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The fast loop plus the snapshot-hook countdown.

        A separate copy of :meth:`_run_fast` so hookless runs never pay
        for the countdown. The hook fires *between* events (after the
        callback and handle recycling), so the heap, clock, and counters
        are consistent whenever it observes them. Dispatch order, seq
        numbers, and ``events_processed`` are identical to the unhooked
        loop — the hook is invisible to the simulation.
        """
        queue = self._queue
        pop = _heappop
        free = self._free
        free_append = free.append
        refcount = getrefcount
        budget = (
            None if max_events is None else self._events_processed + max_events
        )
        countdown = self._snap_countdown
        try:
            while queue:
                entry = pop(queue)
                event = entry[3]
                if event._cancelled:
                    if self._cancelled_pending > 0:
                        self._cancelled_pending -= 1
                    event.owner = None
                    continue
                when = entry[0]
                if until is not None and when > until:
                    _heappush(queue, entry)
                    break
                if budget is not None and self._events_processed >= budget:
                    _heappush(queue, entry)
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)"
                    )
                self._now = when
                entry = None  # release the heap tuple: makes the refcount check exact
                self._events_processed += 1
                event.callback(*event.args)
                if refcount(event) == 2 and len(free) < _FREELIST_MAX:
                    event.callback = None
                    event.args = ()
                    event.owner = None
                    free_append(event)
                countdown -= 1
                if countdown <= 0:
                    countdown = self._snap_every
                    self._snap_hook()
                    if self._snap_hook is None:
                        # hook uninstalled itself: fall back to the plain
                        # loop with the remaining event budget
                        self._snap_countdown = 0
                        remaining = (
                            None
                            if budget is None
                            else budget - self._events_processed
                        )
                        self._run_fast(until, remaining)
                        return
                if self._stop_requested:
                    break
        finally:
            self._snap_countdown = countdown

    def _run_instrumented(
        self, until: Optional[float], max_events: Optional[int]
    ) -> None:
        """The profiled/burn-hooked event loop (per-event instrumentation)."""
        profiler = self._profiler
        burn = self._burn
        processed_at_start = self._events_processed
        queue = self._queue
        while queue:
            entry = queue[0]
            event = entry[3]
            if event._cancelled:
                _heappop(queue)
                if self._cancelled_pending > 0:
                    self._cancelled_pending -= 1
                event.owner = None
                if profiler is not None:
                    profiler.on_cancelled_pop()
                continue
            if until is not None and entry[0] > until:
                break
            if (
                max_events is not None
                and self._events_processed - processed_at_start >= max_events
            ):
                raise SimulationError(
                    f"exceeded max_events={max_events} (runaway simulation?)"
                )
            _heappop(queue)
            self._now = entry[0]
            self._events_processed += 1
            if burn is not None:
                burn()
            if profiler is not None:
                started = perf_counter()
                event.callback(*event.args)
                profiler.on_event(
                    event.callback, perf_counter() - started, len(queue)
                )
            else:
                event.callback(*event.args)
            if self._snap_hook is not None:
                self._snap_countdown -= 1
                if self._snap_countdown <= 0:
                    self._snap_countdown = self._snap_every
                    self._snap_hook()
            if self._stop_requested:
                break

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue is completely drained."""
        self.run(until=None, max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Simulator t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._events_processed}>"
        )
