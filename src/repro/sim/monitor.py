"""Metric collection: counters, tallies, and time series.

A :class:`Monitor` is a bag of named metrics that entities update as the
simulation runs. It is intentionally dumber than the trace log — metrics
are for cheap aggregate accounting (counts, sums, sampled series), while
the trace is for event-level verification.

.. deprecated::
    The simulation itself now publishes through
    :class:`repro.obs.registry.MetricsRegistry` (``sim.metrics``), which
    speaks this class's ``increment``/``observe`` vocabulary and adds
    named instruments, snapshots, and associative merging.
    :class:`Monitor` remains as a standalone utility for scripts that
    want a lightweight tally bag with time series.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple


class Tally:
    """Streaming mean/variance/min/max over observed samples (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Add one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tally n={self.count} mean={self.mean:.4f} sd={self.stdev:.4f}>"


class Monitor:
    """Named counters, tallies, and time series for one simulation run."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._tallies: Dict[str, Tally] = defaultdict(Tally)
        self._series: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    # -- counters ---------------------------------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def counters(self) -> Dict[str, float]:
        """A snapshot copy of all counters."""
        return dict(self._counters)

    # -- tallies ----------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one sample into tally ``name``."""
        self._tallies[name].observe(value)

    def tally(self, name: str) -> Tally:
        """The tally for ``name`` (empty if never observed)."""
        return self._tallies[name]

    def tallies(self) -> Dict[str, Tally]:
        """A snapshot copy of all tallies."""
        return dict(self._tallies)

    # -- time series ------------------------------------------------------
    def sample(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to series ``name``."""
        self._series[name].append((time, value))

    def series(self, name: str) -> List[Tuple[float, float]]:
        """The list of samples for series ``name`` (empty if absent)."""
        return list(self._series.get(name, ()))

    def merge(self, other: "Monitor") -> None:
        """Fold another monitor's counters and tallies into this one.

        Series are concatenated. Used when aggregating per-host monitors
        into a run-level monitor.
        """
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, tally in other._tallies.items():
            mine = self._tallies[name]
            # Merge by replaying summary statistics via Chan et al.'s
            # parallel-variance formula.
            if tally.count == 0:
                continue
            combined = mine.count + tally.count
            delta = tally.mean - mine.mean
            new_mean = mine.mean + delta * tally.count / combined
            mine._m2 = mine._m2 + tally._m2 + delta * delta * mine.count * tally.count / combined
            mine._mean = new_mean
            mine.count = combined
            mine.minimum = min(mine.minimum, tally.minimum)
            mine.maximum = max(mine.maximum, tally.maximum)
        for name, samples in other._series.items():
            self._series[name].extend(samples)
