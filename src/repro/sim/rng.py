"""Seeded, named random-number streams.

Different parts of a simulation (workload at each process, mobility,
failure injection) draw from *independent* named streams derived from a
single master seed. Adding a new consumer of randomness therefore never
perturbs the draws seen by existing consumers, which keeps regression
baselines stable and experiments reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


def raw_rng(seed: int) -> random.Random:
    """A bare seeded generator for consumers that manage their own seed.

    This is the single sanctioned constructor for ``random.Random``
    outside this module: everything stochastic either draws from a
    :class:`RandomStreams` stream or builds its generator here, so
    snapshot capture can account for every generator in the simulation
    (a lint test enforces this). Seed semantics are exactly
    ``random.Random(seed)`` — callers that switched from a direct
    constructor keep byte-identical draw sequences.
    """
    return random.Random(seed)


class RandomStreams:
    """A factory of independent ``random.Random`` streams.

    Each stream is identified by a string name; its seed is derived by
    hashing the master seed together with the name, so streams are stable
    across runs and machines.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean!r}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """One integer uniform on [low, high] from stream ``name``."""
        return self.stream(name).randint(low, high)

    def choice(self, name: str, options: Sequence[T]) -> T:
        """One uniform choice from ``options`` from stream ``name``."""
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(name).choice(options)

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
