"""One-command regeneration of the full paper-vs-measured report.

``repro-sim report`` (or :func:`generate_report`) runs every experiment
— Figs. 1–6, Table 1, and the ablations — and renders a markdown
document in the same shape as ``EXPERIMENTS.md``, so the repository's
results can be refreshed after any change with a single command.

Scale is controlled by ``ReportScale``: ``quick`` finishes in well under
a minute; ``full`` uses the sample sizes the committed EXPERIMENTS.md
was produced with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.ascii_chart import render_histogram
from repro.analysis.comparison import (
    CostParameters,
    analytic_table,
    measured_row,
)
from repro.analysis.minimality import check_minimality
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import (
    GroupWorkloadConfig,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.registry import build_protocol
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.group import GroupWorkload
from repro.workload.point_to_point import PointToPointWorkload


@dataclass(frozen=True)
class ReportScale:
    """Sample sizes for one report run."""

    initiations: int = 12
    seed: int = 11
    fig5_rates: tuple = (0.002, 0.005, 0.01, 0.02, 0.05)
    fig6_rates: tuple = (0.005, 0.01, 0.02)
    table1_interval: float = 220.0

    @classmethod
    def quick(cls) -> "ReportScale":
        return cls(initiations=8, fig5_rates=(0.005, 0.02), fig6_rates=(0.01,))

    @classmethod
    def full(cls) -> "ReportScale":
        return cls(initiations=42)


def _run(protocol, workload_factory, scale: ReportScale, **config_kwargs):
    config = SystemConfig(
        n_processes=16, seed=scale.seed, trace_messages=False, **config_kwargs
    )
    system = MobileSystem(config, protocol)
    workload = workload_factory(system)
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=scale.initiations, warmup_initiations=2),
    )
    result = runner.run(max_events=50_000_000)
    return system, result


def _fig5_section(scale: ReportScale) -> List[str]:
    lines = ["## Figure 5 — point-to-point communication", ""]
    lines.append("| rate (msg/s) | tentative | redundant mutable | ratio |")
    lines.append("|---:|---:|---:|---:|")
    for rate in scale.fig5_rates:
        _, result = _run(
            MutableCheckpointProtocol(),
            lambda s, r=rate: PointToPointWorkload(
                s, PointToPointWorkloadConfig(1.0 / r)
            ),
            scale,
        )
        lines.append(
            f"| {rate:g} | {result.tentative_summary().mean:.2f} "
            f"| {result.redundant_mutable_summary().mean:.3f} "
            f"| {result.redundant_ratio:.4f} |"
        )
    lines.append("")
    return lines


def _fig6_section(scale: ReportScale) -> List[str]:
    lines = ["## Figure 6 — group communication", ""]
    lines.append("| rate | 1000x tentative | 10000x tentative |")
    lines.append("|---:|---:|---:|")
    for rate in scale.fig6_rates:
        row = []
        for ratio in (1_000.0, 10_000.0):
            _, result = _run(
                MutableCheckpointProtocol(),
                lambda s, r=rate, q=ratio: GroupWorkload(
                    s,
                    GroupWorkloadConfig(
                        mean_send_interval=1.0 / r, intra_inter_ratio=q
                    ),
                ),
                scale,
            )
            row.append(result.tentative_summary().mean)
        lines.append(f"| {rate:g} | {row[0]:.2f} | {row[1]:.2f} |")
    lines.append("")
    return lines


def _table1_section(scale: ReportScale) -> List[str]:
    lines = ["## Table 1 — algorithm comparison", ""]
    lines.append(
        "| algorithm | checkpoints | blocking (proc*s) | output commit (s) "
        "| messages | distributed |"
    )
    lines.append("|---|---:|---:|---:|---:|---|")
    rows = {}
    for name in ("koo-toueg", "elnozahy", "mutable"):
        _, result = _run(
            build_protocol(name),
            lambda s: PointToPointWorkload(
                s, PointToPointWorkloadConfig(scale.table1_interval)
            ),
            scale,
        )
        row = measured_row(result)
        rows[name] = row
        lines.append(
            f"| {row.algorithm} | {row.checkpoints:.2f} | {row.blocking_time:.1f} "
            f"| {row.output_commit_delay:.2f} | {row.messages:.1f} "
            f"| {'yes' if row.distributed else 'no'} |"
        )
    lines.append("")
    n_min = rows["mutable"].checkpoints
    lines.append(
        f"Paper formulas at measured N_min = {n_min:.1f}: "
        + "; ".join(
            f"{r.algorithm}: msgs={r.messages:.1f}, commit={r.output_commit_delay:.1f}s"
            for r in analytic_table(CostParameters(n=16, n_min=n_min, n_dep=4.0))
        )
    )
    lines.append("")
    return lines


def _figures_section() -> List[str]:
    from repro.scenarios.figures import all_figures

    lines = ["## Figures 1–4 — deterministic scenarios", ""]
    lines.append("| figure | consistent | orphans | notes |")
    lines.append("|---|---|---:|---|")
    for result in all_figures():
        lines.append(
            f"| {result.figure} | {result.consistent} "
            f"| {len(result.orphan_msg_ids)} | {result.notes} |"
        )
    lines.append("")
    return lines


def _minimality_section(scale: ReportScale) -> List[str]:
    config = SystemConfig(n_processes=16, seed=scale.seed)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(100.0))
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=min(scale.initiations, 8), warmup_initiations=1),
    )
    runner.run(max_events=50_000_000)
    reports = check_minimality(system.sim.trace)
    minimal = sum(1 for r in reports if r.minimal)
    return [
        "## Theorem 3 — minimality (independent z-dependency closure)",
        "",
        f"{minimal}/{len(reports)} committed initiations took exactly the "
        "required process set.",
        "",
    ]


def _observability_section(scale: ReportScale) -> List[str]:
    """Metrics of one representative run, straight from the registry.

    Everything here is read from ``RunResult.metrics`` (the
    :mod:`repro.obs` snapshot carried by every result), never from
    protocol or network internals — the same numbers a campaign or a
    JSON consumer would see.
    """
    # Sampling on: the run also carries windowed telemetry and the
    # wave-lifecycle instruments (latency/blocked-time histograms).
    _, result = _run(
        MutableCheckpointProtocol(),
        lambda s: PointToPointWorkload(
            s, PointToPointWorkloadConfig(scale.table1_interval)
        ),
        scale,
        timeseries_window=60.0,
    )
    snapshot = result.metrics
    lines = ["## Observability — metrics registry snapshot", ""]
    lines.append("| counter | value |")
    lines.append("|---|---:|")
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"| `{name}` | {value:g} |")
    lines.append("")
    histograms = snapshot.get("histograms", {})
    blocking = histograms.get("blocking_time")
    if blocking:
        lines.append("```")
        lines.append(
            render_histogram(blocking, title="blocking_time (seconds)")
        )
        lines.append("```")
        lines.append("")
    latency = histograms.get("wave.latency_seconds")
    if latency:
        lines.append("```")
        lines.append(
            render_histogram(
                latency, title="wave.latency_seconds (initiation -> commit)"
            )
        )
        lines.append("```")
        lines.append("")
    rows = result.timeseries.get("rows", [])
    if rows:
        lines.append(
            f"Windowed telemetry: {len(rows)} active windows of "
            f"{result.timeseries['window']:g} sim-seconds "
            f"(`repro-sim run --timeseries-out` exports these)."
        )
        lines.append("")
    return lines


def generate_report(scale: Optional[ReportScale] = None) -> str:
    """Run everything and return the markdown report."""
    scale = scale if scale is not None else ReportScale()
    started = time.time()
    sections: List[str] = [
        "# Mutable Checkpoints — regenerated experiment report",
        "",
        f"Scale: {scale.initiations} initiations/point, seed {scale.seed}.",
        "",
    ]
    sections += _fig5_section(scale)
    sections += _fig6_section(scale)
    sections += _table1_section(scale)
    sections += _figures_section()
    sections += _minimality_section(scale)
    sections += _observability_section(scale)
    sections.append(f"_Generated in {time.time() - started:.1f} s wall time._")
    sections.append("")
    return "\n".join(sections)


def write_report(path: str, scale: Optional[ReportScale] = None) -> str:
    """Generate and write the report; returns the markdown."""
    report = generate_report(scale)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report)
    return report
