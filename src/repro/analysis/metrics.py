"""Per-initiation metric extraction from the trace log.

The protocols emit structured trace records (see
:mod:`repro.checkpointing.protocol`); this module folds them into
per-initiation statistics — the quantities plotted in the paper's
Figs. 5 and 6 and tabulated in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checkpointing.types import Trigger
from repro.sim.trace import TraceLog


@dataclass
class InitiationStats:
    """Counters for one checkpointing initiation.

    ``tentative_count`` includes the initiator's own checkpoint and any
    mutable checkpoints promoted to tentative. ``redundant_mutables`` are
    mutable checkpoints discarded without promotion — the paper's
    headline metric ("redundant" in §5).
    """

    trigger: Trigger
    initiation_time: float = 0.0
    commit_time: Optional[float] = None
    abort_time: Optional[float] = None
    tentative_count: int = 0
    mutable_count: int = 0
    promoted_mutables: int = 0
    redundant_mutables: int = 0
    permanent_count: int = 0
    participants: List[int] = field(default_factory=list)

    @property
    def committed(self) -> bool:
        return self.commit_time is not None

    @property
    def duration(self) -> Optional[float]:
        """Checkpointing time: initiation to commit (paper's T_ch span)."""
        end = self.commit_time if self.commit_time is not None else self.abort_time
        if end is None:
            return None
        return end - self.initiation_time

    def to_dict(self) -> Dict:
        """A JSON-serializable representation (lossless; see ``from_dict``)."""
        return {
            "trigger": list(self.trigger),
            "initiation_time": self.initiation_time,
            "commit_time": self.commit_time,
            "abort_time": self.abort_time,
            "tentative_count": self.tentative_count,
            "mutable_count": self.mutable_count,
            "promoted_mutables": self.promoted_mutables,
            "redundant_mutables": self.redundant_mutables,
            "permanent_count": self.permanent_count,
            "participants": list(self.participants),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "InitiationStats":
        """Inverse of :meth:`to_dict`."""
        fields_ = dict(data)
        fields_["trigger"] = Trigger(*fields_["trigger"])
        return cls(**fields_)


def per_initiation_stats(trace: TraceLog) -> Dict[Trigger, InitiationStats]:
    """Fold the trace into one :class:`InitiationStats` per initiation."""
    stats: Dict[Trigger, InitiationStats] = {}

    def entry(trigger: Optional[Trigger]) -> Optional[InitiationStats]:
        if trigger is None:
            return None
        if trigger not in stats:
            stats[trigger] = InitiationStats(trigger=trigger)
        return stats[trigger]

    for record in trace:
        kind = record.kind
        if kind == "initiation":
            s = entry(record["trigger"])
            assert s is not None
            s.initiation_time = record.time
        elif kind == "tentative":
            s = entry(record["trigger"])
            if s is not None:
                s.tentative_count += 1
                s.participants.append(record["pid"])
        elif kind == "mutable":
            s = entry(record["trigger"])
            if s is not None:
                s.mutable_count += 1
        elif kind == "mutable_promoted":
            s = entry(record["trigger"])
            if s is not None:
                s.promoted_mutables += 1
        elif kind == "mutable_discarded":
            s = entry(record["trigger"])
            if s is not None:
                s.redundant_mutables += 1
        elif kind == "permanent":
            s = entry(record.get("trigger"))
            if s is not None:
                s.permanent_count += 1
        elif kind == "commit":
            s = entry(record["trigger"])
            if s is not None:
                s.commit_time = record.time
        elif kind == "abort":
            s = entry(record["trigger"])
            if s is not None:
                s.abort_time = record.time
    return stats


def committed_stats(trace: TraceLog) -> List[InitiationStats]:
    """Stats for committed initiations, in commit order."""
    stats = [s for s in per_initiation_stats(trace).values() if s.committed]
    stats.sort(key=lambda s: s.commit_time)
    return stats
