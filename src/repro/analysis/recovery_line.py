"""Maximal consistent recovery-line search and the domino effect (§6).

Uncoordinated checkpointing leaves each process with a *history* of
checkpoints and no guarantee that the newest ones fit together; recovery
must search backwards for a consistent combination, possibly cascading —
the domino effect. Coordinated checkpointing exists to avoid exactly
this.

:func:`maximal_consistent_line` implements the classic fixed-point
search over vector-clock snapshots: start from every process's newest
checkpoint; while some checkpoint has observed more of process i than
i's own chosen checkpoint records, roll the observer back; repeat. The
result is the unique maximal consistent line (the lattice of consistent
cuts guarantees the greedy fixed point is maximal), and the number of
checkpoints skipped per process measures the domino depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.checkpointing.storage import StableStorage
from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import InconsistentCheckpointError


@dataclass
class RecoveryLineSearch:
    """Result of the maximal-consistent-line search."""

    line: Dict[int, CheckpointRecord]
    #: checkpoints skipped per process (0 = its newest one was usable)
    rollback_depth: Dict[int, int]
    iterations: int

    @property
    def total_rollback_depth(self) -> int:
        return sum(self.rollback_depth.values())

    @property
    def domino(self) -> bool:
        """Whether any process had to discard more than one checkpoint."""
        return any(depth > 1 for depth in self.rollback_depth.values())

    @property
    def line_times(self) -> Dict[int, float]:
        return {pid: rec.time_taken for pid, rec in self.line.items()}


def checkpoint_histories(
    storages: Iterable[StableStorage], pids: Iterable[int]
) -> Dict[int, List[CheckpointRecord]]:
    """Per process: permanent checkpoints, oldest first, across storages."""
    histories: Dict[int, List[CheckpointRecord]] = {}
    storage_list = list(storages)
    for pid in pids:
        records: List[CheckpointRecord] = []
        for storage in storage_list:
            records.extend(
                r
                for r in storage.checkpoints_of(pid)
                if r.kind is CheckpointKind.PERMANENT
            )
        records.sort(key=lambda r: r.ckpt_id)
        if not records:
            raise InconsistentCheckpointError(f"no permanent checkpoint for p{pid}")
        histories[pid] = records
    return histories


def maximal_consistent_line(
    histories: Dict[int, List[CheckpointRecord]]
) -> RecoveryLineSearch:
    """Greedy fixed-point search for the newest consistent line.

    Requires every checkpoint record to carry a vector-clock snapshot.
    Terminates because indices only decrease and the all-initial line
    (vector clocks of zeros) is always consistent.
    """
    index = {pid: len(records) - 1 for pid, records in histories.items()}
    iterations = 0
    while True:
        iterations += 1
        current = {pid: histories[pid][i] for pid, i in index.items()}
        violator = None
        for pid_j, rec_j in current.items():
            for pid_i, rec_i in current.items():
                if pid_i == pid_j:
                    continue
                # rec_j observed more of pid_i than pid_i's checkpoint
                # records: rec_j is an orphan-holder and must roll back.
                if rec_j.vector_clock[pid_i] > rec_i.vector_clock[pid_i]:
                    violator = pid_j
                    break
            if violator is not None:
                break
        if violator is None:
            depth = {
                pid: len(histories[pid]) - 1 - i for pid, i in index.items()
            }
            return RecoveryLineSearch(
                line=current, rollback_depth=depth, iterations=iterations
            )
        if index[violator] == 0:
            raise InconsistentCheckpointError(
                f"p{violator} exhausted its history without reaching consistency"
            )
        index[violator] -= 1


def search_recovery_line(
    storages: Iterable[StableStorage], pids: Iterable[int]
) -> RecoveryLineSearch:
    """Convenience: histories from storage, then the fixed-point search."""
    return maximal_consistent_line(checkpoint_histories(storages, pids))
