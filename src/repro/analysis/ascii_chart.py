"""Terminal line charts for the figure-regenerating examples.

No plotting dependency is available offline, so the examples render
their curves as text: a fixed-height grid, one marker character per
series, log-or-linear x mapped to columns.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence, Union

_MARKERS = "ox+*#@%"

_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render ``values`` as a one-line unicode sparkline (newest right).

    Keeps the last ``width`` values and scales them between the window's
    min and max; a flat (or single-value) window renders as the lowest
    tick. Used by the service dashboard and ``repro-sim top``.
    """
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo = min(vals)
    hi = max(vals)
    if hi <= lo:
        return _SPARK_TICKS[0] * len(vals)
    scale = (len(_SPARK_TICKS) - 1) / (hi - lo)
    return "".join(_SPARK_TICKS[int((v - lo) * scale + 0.5)] for v in vals)


def render_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 14,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render one or more series over shared x values as ASCII art.

    Each series gets its own marker; the legend maps markers to names.
    """
    if not x_values:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length != x length")

    def x_pos(value: float) -> float:
        if log_x:
            lo, hi = math.log10(x_values[0]), math.log10(x_values[-1])
            v = math.log10(value)
        else:
            lo, hi = x_values[0], x_values[-1]
            v = value
        if hi == lo:
            return 0.0
        return (v - lo) / (hi - lo)

    y_max = max((max(ys) for ys in series.values()), default=1.0)
    y_max = y_max if y_max > 0 else 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for x, y in zip(x_values, ys):
            col = min(width - 1, int(round(x_pos(x) * (width - 1))))
            row = min(height - 1, int(round((1.0 - y / y_max) * (height - 1))))
            grid[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:g}"
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else ("0" if i == height - 1 else "")
        lines.append(f"{prefix:>8} |{''.join(row)}|")
    axis = "-" * width
    lines.append(f"{'':>8} +{axis}+")
    if x_label:
        left = f"{x_values[0]:g}"
        right = f"{x_values[-1]:g}"
        middle = x_label.center(width - len(left) - len(right))
        lines.append(f"{'':>9}{left}{middle}{right}")
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(f"{'':>9}{legend}")
    if y_label:
        lines.append(f"{'':>9}y: {y_label}")
    return "\n".join(lines)


def render_histogram(
    histogram: Union[Dict[str, Any], Any],
    width: int = 48,
    title: str = "",
    max_rows: int = 12,
) -> str:
    """Render a metrics-registry histogram as horizontal count bars.

    ``histogram`` is a :class:`repro.obs.registry.Histogram` instrument
    or its ``to_dict()`` snapshot (as stored in ``RunResult.metrics``).
    Empty buckets are skipped; at most ``max_rows`` of the fullest
    buckets are shown so the power-of-two default bounds stay readable.
    """
    data = histogram if isinstance(histogram, dict) else histogram.to_dict()
    bounds = list(data["bounds"])
    counts = list(data["bucket_counts"])
    total = data["count"]
    lines: List[str] = []
    if title:
        lines.append(title)
    if total == 0:
        lines.append("(no samples)")
        return "\n".join(lines)
    occupied = [
        (i, n) for i, n in enumerate(counts) if n > 0
    ]
    occupied.sort(key=lambda pair: pair[1], reverse=True)
    shown = sorted(i for i, _ in occupied[:max_rows])
    peak = max(n for _, n in occupied)
    for i in shown:
        upper = f"<= {bounds[i]:g}" if i < len(bounds) else f"> {bounds[-1]:g}"
        bar = "#" * max(1, int(round(counts[i] / peak * width)))
        lines.append(f"{upper:>14} |{bar} {counts[i]}")
    hidden = len(occupied) - len(shown)
    if hidden > 0:
        lines.append(f"{'':>14} ({hidden} smaller buckets not shown)")
    mean = data["total"] / total
    lines.append(
        f"{'':>14} n={total} mean={mean:g} min={data['min']:g} max={data['max']:g}"
    )
    return "\n".join(lines)
