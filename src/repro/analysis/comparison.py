"""Table 1: analytic cost model and measured comparison.

The paper's Table 1 compares Koo-Toueg [19], Elnozahy et al. [13], and
the mutable-checkpoint algorithm on five axes: stable checkpoints per
initiation, worst-case blocking time, output-commit delay, system
message cost, and whether the algorithm is distributed.

:func:`analytic_table` evaluates the closed-form expressions for given
parameters; :func:`measured_table` extracts the same quantities from
actual simulation runs, so the bench can print paper-formula vs
measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.results import RunResult


@dataclass(frozen=True)
class CostParameters:
    """Symbols of Table 1 with the paper's defaults.

    ``c_air`` is the cost of one process-to-process message; ``c_broad``
    of one broadcast. Times are seconds: ``t_msg`` the per-initiation
    system-message latency, ``t_data`` the MH-to-MSS checkpoint transfer
    (2 s for 512 KB at 2 Mbps), ``t_disk`` the stable-storage write.
    """

    n: int = 16
    n_min: int = 8
    n_mut: float = 0.2
    n_dep: float = 4.0
    c_air: float = 1.0
    c_broad: float = 16.0
    t_msg: float = 0.0002
    t_data: float = 2.0
    t_disk: float = 0.0

    @property
    def t_ch(self) -> float:
        """Checkpointing time per process: T_msg + T_data + T_disk."""
        return self.t_msg + self.t_data + self.t_disk


@dataclass(frozen=True)
class AlgorithmCosts:
    """One row of Table 1."""

    algorithm: str
    checkpoints: float
    blocking_time: float
    output_commit_delay: float
    messages: float
    distributed: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "checkpoints": self.checkpoints,
            "blocking_time": self.blocking_time,
            "output_commit_delay": self.output_commit_delay,
            "messages": self.messages,
            "distributed": self.distributed,
        }


def koo_toueg_costs(p: CostParameters) -> AlgorithmCosts:
    """Row 1: blocking min-process baseline."""
    return AlgorithmCosts(
        algorithm="koo-toueg",
        checkpoints=p.n_min,
        blocking_time=p.n_min * p.t_ch,
        output_commit_delay=p.n_min * p.t_ch,
        messages=3 * p.n_min * p.n_dep * p.c_air,
        distributed=True,
    )


def elnozahy_costs(p: CostParameters) -> AlgorithmCosts:
    """Row 2: nonblocking all-process baseline."""
    return AlgorithmCosts(
        algorithm="elnozahy",
        checkpoints=p.n,
        blocking_time=0.0,
        output_commit_delay=p.n * p.t_ch,
        messages=2 * p.c_broad + p.n * p.c_air,
        distributed=False,
    )


def mutable_costs(p: CostParameters) -> AlgorithmCosts:
    """Row 3: the paper's algorithm."""
    return AlgorithmCosts(
        algorithm="mutable",
        checkpoints=p.n_min,
        blocking_time=0.0,
        output_commit_delay=(p.n_min + p.n_mut) * p.t_ch,
        messages=2 * p.n_min * p.c_air + min(p.n_min * p.c_air, p.c_broad),
        distributed=True,
    )


def analytic_table(p: Optional[CostParameters] = None) -> List[AlgorithmCosts]:
    """All three rows of Table 1 for the given parameters."""
    params = p if p is not None else CostParameters()
    return [koo_toueg_costs(params), elnozahy_costs(params), mutable_costs(params)]


def measured_row(result: "RunResult") -> AlgorithmCosts:
    """The Table 1 quantities as actually measured in a run.

    * checkpoints: mean tentative checkpoints per initiation;
    * blocking time: mean total blocked process-time per initiation;
    * output-commit delay: mean initiation-to-commit duration;
    * messages: system messages (incl. broadcast fan-out) per initiation.
    """
    n_init = max(result.n_initiations, 1)
    distributed = result.protocol not in ("elnozahy",)
    return AlgorithmCosts(
        algorithm=result.protocol,
        checkpoints=result.tentative_summary().mean,
        blocking_time=result.total_blocked_time / n_init,
        output_commit_delay=result.duration_summary().mean,
        messages=result.counters.get("system_messages", 0.0) / n_init,
        distributed=distributed,
    )


def format_table(rows: List[AlgorithmCosts], title: str) -> str:
    """Render rows as the paper's table (plain text)."""
    header = (
        f"{title}\n"
        f"{'algorithm':<16}{'checkpoints':>12}{'blocking':>12}"
        f"{'output commit':>15}{'messages':>12}{'distributed':>13}\n"
    )
    lines = [header.rstrip()]
    for row in rows:
        lines.append(
            f"{row.algorithm:<16}{row.checkpoints:>12.2f}{row.blocking_time:>12.2f}"
            f"{row.output_commit_delay:>15.2f}{row.messages:>12.1f}"
            f"{str(row.distributed):>13}"
        )
    return "\n".join(lines)
