"""ASCII swimlane timelines of trace logs.

Renders one lane per process with the events of one run (or one
initiation) in order — the space-time diagrams the paper's figures are
drawn in, reconstructed from an actual execution. Used by the
`paper_figures` example and handy when debugging protocol traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import TraceLog, TraceRecord

#: glyphs per event kind (one lane cell each)
_GLYPHS = {
    "initiation": "I",
    "tentative": "T",
    "mutable": "m",
    "mutable_promoted": "P",
    "mutable_discarded": "d",
    "permanent": "#",
    "abort": "A",
    "blocked": "[",
    "unblocked": "]",
    "handoff_start": "H",
    "handoff_complete": "h",
    "disconnect": "D",
    "reconnect": "R",
}


def _fallback_glyph(kind: str) -> str:
    """Deterministic single-char glyph for kinds without a dedicated one.

    The first alphanumeric character of the kind name — stable across
    runs and versions, so timelines of traces containing new record
    kinds render (marked in the legend as approximate) instead of
    silently dropping lanes' events.
    """
    for char in kind:
        if char.isalnum():
            return char
    return "?"


def _pid_of(record: TraceRecord) -> Optional[int]:
    if "pid" in record.fields:
        return record["pid"]
    if record.kind == "comp_send" or record.kind == "sys_send":
        return record.get("src")
    if record.kind == "comp_recv":
        return record.get("dst")
    # Mobility-layer records identify the process by its mobile host,
    # named "mh<pid>" by the system builder (one process per MH).
    mh = record.get("mh")
    if isinstance(mh, str) and mh.startswith("mh") and mh[2:].isdigit():
        return int(mh[2:])
    return None


def render_timeline(
    trace: TraceLog,
    n_processes: int,
    kinds: Optional[Iterable[str]] = None,
    width: int = 72,
    label_messages: bool = True,
) -> str:
    """Render the trace as one swimlane per process.

    Columns are event *positions* (causal order), not wall-clock time —
    matching how the paper's figures are drawn. Message sends/receives
    are linked by a shared column: ``>`` at the sender, ``<`` at the
    receiver (annotated with the peer pid when ``label_messages``).
    """
    wanted = set(kinds) if kinds is not None else None
    events: List[Tuple[int, str]] = []  # (pid, glyph)
    for record in trace:
        if wanted is not None and record.kind not in wanted:
            continue
        pid = _pid_of(record)
        if pid is None or pid >= n_processes:
            continue
        if record.kind == "comp_send":
            glyph = f">{record.get('dst')}" if label_messages else ">"
        elif record.kind == "comp_recv":
            glyph = f"<{record.get('src')}" if label_messages else "<"
        elif record.kind == "sys_send":
            subkind = record.get("subkind", "?")
            glyph = subkind[0]
        else:
            glyph = _GLYPHS.get(record.kind) or _fallback_glyph(record.kind)
        events.append((pid, glyph))

    cell = 3 if label_messages else 2
    per_row = max(1, (width - 6) // cell)
    lines: List[str] = []
    for chunk_start in range(0, len(events), per_row):
        chunk = events[chunk_start : chunk_start + per_row]
        lanes: Dict[int, List[str]] = {
            pid: ["." * (cell - 1)] * len(chunk) for pid in range(n_processes)
        }
        for column, (pid, glyph) in enumerate(chunk):
            lanes[pid][column] = glyph.ljust(cell - 1, ".")[: cell - 1]
        for pid in range(n_processes):
            lines.append(f"P{pid:<3d} |" + " ".join(lanes[pid]))
        lines.append("")
    legend = (
        "I initiate  T tentative  m mutable  P promoted  d discarded  "
        "# permanent  A abort  H/h handoff start/complete  D disconnect  "
        "R reconnect  >n send to n  <n recv from n  "
        "r/c/q request/commit/... (system msgs by first letter; "
        "unlisted kinds by first letter too)"
    )
    lines.append(legend)
    return "\n".join(lines)
