"""Offline verification of archived traces.

A trace exported with :mod:`repro.sim.export` is self-contained for the
position-based orphan scan: the recovery line is the last ``permanent``
record per process, and "recorded in a checkpoint" is decided by trace
position. This module reconstructs the line from the records alone and
runs the scan — so any archived run can be re-verified years later,
without the simulation objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.consistency import Orphan, find_orphans
from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import InconsistentCheckpointError
from repro.sim.trace import TraceLog


@dataclass
class OfflineVerdict:
    """Result of verifying an archived trace."""

    processes: int
    messages: int
    commits: int
    line_ckpt_ids: Dict[int, int]
    orphans: List[Orphan] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.orphans

    def __str__(self) -> str:
        status = "consistent" if self.consistent else (
            f"INCONSISTENT ({len(self.orphans)} orphan(s))"
        )
        return (
            f"{self.processes} processes, {self.messages} messages, "
            f"{self.commits} commits: {status}"
        )


def reconstruct_line(trace: TraceLog) -> Dict[int, int]:
    """The newest permanent checkpoint id per process, from records."""
    line: Dict[int, int] = {}
    for record in trace:
        if record.kind == "permanent" and "pid" in record.fields:
            ckpt_id = record.get("ckpt_id")
            if ckpt_id is not None:
                line[record["pid"]] = ckpt_id
    if not line:
        raise InconsistentCheckpointError("trace has no permanent checkpoints")
    return line


def verify_archived_trace(trace: TraceLog) -> OfflineVerdict:
    """Run the position-based orphan scan against a bare trace."""
    line_ids = reconstruct_line(trace)
    # find_orphans keys checkpoints by ckpt_id; synthesize carrier records
    line: Dict[int, CheckpointRecord] = {
        pid: CheckpointRecord(
            pid=pid,
            csn=-1,
            kind=CheckpointKind.PERMANENT,
            time_taken=0.0,
            ckpt_id=ckpt_id,
        )
        for pid, ckpt_id in line_ids.items()
    }
    orphans = find_orphans(trace, line)
    return OfflineVerdict(
        processes=len(line_ids),
        messages=trace.count("comp_send"),
        commits=trace.count("commit"),
        line_ckpt_ids=line_ids,
        orphans=orphans,
    )


def verify_trace_file(path: str) -> OfflineVerdict:
    """Load a JSON-lines trace file and verify it."""
    from repro.sim.export import read_trace

    return verify_archived_trace(read_trace(path))
