"""Verification and analysis: vector clocks, consistency, statistics."""

from repro.analysis.comparison import (
    AlgorithmCosts,
    CostParameters,
    analytic_table,
    elnozahy_costs,
    format_table,
    koo_toueg_costs,
    measured_row,
    mutable_costs,
)
from repro.analysis.consistency import (
    Orphan,
    assert_line_consistent,
    check_vector_clocks,
    checkpoint_positions,
    find_orphans,
    latest_permanent_line,
)
from repro.analysis.energy import DozeManager, EnergyModel, EnergyParams, HostEnergy
from repro.analysis.metrics import InitiationStats, committed_stats, per_initiation_stats
from repro.analysis.minimality import (
    MinimalityReport,
    assert_minimal,
    check_minimality,
    must_checkpoint_set,
)
from repro.analysis.stats import Summary, required_samples, summarize
from repro.analysis.vector_clock import (
    VectorClock,
    concurrent,
    happened_before,
    snapshot_consistent,
)

__all__ = [
    "AlgorithmCosts",
    "CostParameters",
    "DozeManager",
    "EnergyModel",
    "EnergyParams",
    "HostEnergy",
    "InitiationStats",
    "MinimalityReport",
    "assert_minimal",
    "check_minimality",
    "must_checkpoint_set",
    "Orphan",
    "Summary",
    "VectorClock",
    "analytic_table",
    "assert_line_consistent",
    "check_vector_clocks",
    "checkpoint_positions",
    "committed_stats",
    "concurrent",
    "elnozahy_costs",
    "find_orphans",
    "format_table",
    "happened_before",
    "koo_toueg_costs",
    "latest_permanent_line",
    "measured_row",
    "mutable_costs",
    "per_initiation_stats",
    "required_samples",
    "snapshot_consistent",
    "summarize",
]
