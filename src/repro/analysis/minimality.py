"""Independent verification of Theorem 3 (min-process property).

For one committed initiation, the set of processes that *must* take a
new stable checkpoint is the closure of the z-dependency relation the
paper traces in §2.4: starting from the initiator, process Q must
checkpoint if some process P that must checkpoint recorded (in its new
checkpoint) the receipt of a message that Q sent after Q's previous
stable checkpoint — otherwise that message would be an orphan.

:func:`must_checkpoint_set` computes this closure purely from the trace
log (no protocol state), and :func:`check_minimality` compares it with
the processes that actually took tentative checkpoints:

* a member of the closure missing from the participants ⇒ the algorithm
  took *too few* checkpoints (consistency is in danger);
* a participant outside the closure ⇒ *too many* (minimality violated).

The paper's caveat (§4) applies: checkpoints forced only by messages
received *during* the checkpointing (request-delay artefacts) are part
of the closure here because the closure is computed against the actual
capture points, so the comparison is exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.checkpointing.types import Trigger
from repro.sim.trace import TraceLog


@dataclass
class MinimalityReport:
    """Outcome of the Theorem 3 check for one initiation."""

    trigger: Trigger
    participants: Set[int]
    required: Set[int]
    dependency_edges: List[Tuple[int, int]] = field(default_factory=list)
    justified: Optional[Set[int]] = None

    @property
    def missing(self) -> Set[int]:
        """Processes that had to checkpoint but did not (unsafe!)."""
        return self.required - self.participants

    @property
    def excess(self) -> Set[int]:
        """Processes that checkpointed without being required."""
        return self.participants - self.required

    @property
    def unjustified(self) -> Set[int]:
        """Participants with no dependency basis at all.

        The protocol's R bits over-approximate the exact z-closure: a
        requester whose csn knowledge of a sender is fresher than the
        message that set its R bit cannot tell the dependency is already
        covered by the sender's newer stable checkpoint (the paper's
        csn_i[j] is updated by requests as well as by computation
        messages). Such checkpoints are *excess* against the exact
        closure but still *justified* — some participant really did
        record a receive from them. A participant outside even the
        justified closure indicates a protocol bug (avalanche, planted
        mutation), not the known over-approximation.
        """
        basis = self.justified if self.justified is not None else self.required
        return self.participants - basis

    @property
    def minimal(self) -> bool:
        return not self.missing and not self.excess

    def __str__(self) -> str:
        return (
            f"initiation {self.trigger}: participants={sorted(self.participants)} "
            f"required={sorted(self.required)} missing={sorted(self.missing)} "
            f"excess={sorted(self.excess)}"
        )


def _capture_positions(trace: TraceLog) -> Dict[int, List[Tuple[int, Optional[Trigger], int]]]:
    """Per pid: (position, trigger, ckpt_id) of every stable capture,
    in trace order. Mutable records are excluded (they are not stable
    unless promoted, and promotion re-emits 'tentative' whose *capture*
    point is the mutable record — handled below)."""
    captures: Dict[int, List[Tuple[int, Optional[Trigger], int]]] = {}
    seen_ids: Set[int] = set()
    mutable_pos: Dict[int, int] = {}
    for index, record in enumerate(trace):
        if record.kind == "mutable":
            mutable_pos[record["ckpt_id"]] = index
        elif record.kind in ("tentative", "permanent"):
            ckpt_id = record.get("ckpt_id")
            if ckpt_id is None or ckpt_id in seen_ids:
                continue
            seen_ids.add(ckpt_id)
            position = mutable_pos.get(ckpt_id, index)
            captures.setdefault(record["pid"], []).append(
                (position, record.get("trigger"), ckpt_id)
            )
    for entries in captures.values():
        entries.sort()
    return captures


def must_checkpoint_set(trace: TraceLog, trigger: Trigger) -> MinimalityReport:
    """Compute the z-dependency closure for ``trigger`` and compare it
    with the actual participant set."""
    captures = _capture_positions(trace)
    participants: Set[int] = set()
    ckpt_pos: Dict[int, int] = {}
    prev_pos: Dict[int, int] = {}
    for pid, entries in captures.items():
        for position, trig, _ in entries:
            if trig == trigger:
                participants.add(pid)
                ckpt_pos[pid] = position
        # previous stable capture: the newest one strictly before this
        # initiation's checkpoint (or the newest overall for outsiders)
        bound = ckpt_pos.get(pid)
        candidates = [
            position
            for position, trig, _ in entries
            if trig != trigger and (bound is None or position < bound)
        ]
        prev_pos[pid] = max(candidates) if candidates else -1

    sends: Dict[int, Tuple[int, int]] = {}
    edges: List[Tuple[int, int, int, int]] = []  # (src, dst, send_pos, recv_pos)
    for index, record in enumerate(trace):
        if record.kind == "comp_send":
            sends[record["msg_id"]] = (index, record["src"])
        elif record.kind == "comp_recv":
            sent = sends.get(record["msg_id"])
            if sent is not None:
                edges.append((record["src"], record["dst"], sent[0], index))

    # Build the z-dependency graph: edge Q -> P when P, if it checkpoints
    # for this trigger, records a receive whose send is after Q's
    # previous checkpoint (so Q is dragged in). The justified graph
    # keeps the edge even when the send is already covered — that is
    # the information the protocol's R bit actually carries.
    graph = nx.DiGraph()
    graph.add_node(trigger.pid)
    justified_graph = nx.DiGraph()
    justified_graph.add_node(trigger.pid)
    must_edges: List[Tuple[int, int]] = []
    for src, dst, send_pos, recv_pos in edges:
        cut = ckpt_pos.get(dst)
        if cut is None or recv_pos >= cut:
            continue  # receive not recorded in dst's trigger checkpoint
        if recv_pos > prev_pos.get(dst, -1):
            justified_graph.add_edge(dst, src)
        if send_pos <= prev_pos.get(src, -1):
            continue  # send already covered by src's previous checkpoint
        graph.add_edge(dst, src)
        must_edges.append((src, dst))

    required = {trigger.pid}
    if graph.has_node(trigger.pid):
        required |= nx.descendants(graph, trigger.pid)
    justified = {trigger.pid} | nx.descendants(justified_graph, trigger.pid)
    return MinimalityReport(
        trigger=trigger,
        participants=participants,
        required=required,
        dependency_edges=must_edges,
        justified=justified | required,
    )


def check_minimality(trace: TraceLog) -> List[MinimalityReport]:
    """Reports for every committed initiation in the trace."""
    reports = []
    for record in trace.of_kind("commit"):
        reports.append(must_checkpoint_set(trace, record["trigger"]))
    return reports


def assert_minimal(trace: TraceLog) -> None:
    """Raise AssertionError if any committed initiation is non-minimal."""
    for report in check_minimality(trace):
        assert report.minimal, str(report)
