"""Protocol-independent consistency checking of global checkpoints.

Two independent witnesses, sharing no code with the protocols:

1. **Orphan scan** (:func:`find_orphans`): replays the trace log. A
   global checkpoint is inconsistent iff some message's *receive* is
   recorded in the destination's checkpoint while its *send* is not
   recorded in the source's checkpoint (§2.3's orphan message). "Recorded
   in" is decided by trace-log position: the trace is a single total
   order consistent with causality (the simulator's event order), and a
   checkpoint record appears in the trace exactly when the state was
   captured.

2. **Vector-clock test** (:func:`check_vector_clocks`): uses the clock
   snapshots embedded in the checkpoint records
   (:func:`repro.analysis.vector_clock.snapshot_consistent`).

Both are applied to *recovery lines*: for each process the latest stable
checkpoint with ``time_taken <=`` some cut criterion, or simply the
latest permanent checkpoints after a committed initiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.vector_clock import snapshot_consistent
from repro.checkpointing.storage import StableStorage
from repro.checkpointing.types import CheckpointKind, CheckpointRecord
from repro.errors import InconsistentCheckpointError
from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class Orphan:
    """A message violating consistency for a given global checkpoint."""

    msg_id: int
    src: int
    dst: int
    send_position: Optional[int]
    recv_position: int

    def __str__(self) -> str:
        return (
            f"orphan message {self.msg_id}: {self.src} -> {self.dst} "
            f"(recv recorded at trace position {self.recv_position}, "
            f"send at {self.send_position})"
        )


def checkpoint_positions(trace: TraceLog) -> Dict[int, int]:
    """Map checkpoint ``ckpt_id`` to its position in the trace.

    A checkpoint's position is where its state was captured: the
    ``tentative``/``mutable``/``permanent`` record emitted at capture
    time. Promotion re-emits ``tentative`` for the same ckpt_id; the
    *first* occurrence is the capture point and wins.
    """
    positions: Dict[int, int] = {}
    for index, record in enumerate(trace):
        if record.kind in ("tentative", "mutable", "permanent"):
            ckpt_id = record.get("ckpt_id")
            if ckpt_id is not None and ckpt_id not in positions:
                positions[ckpt_id] = index
    return positions


def find_orphans(
    trace: TraceLog,
    line: Dict[int, CheckpointRecord],
) -> List[Orphan]:
    """All orphan messages of the global checkpoint ``line``.

    ``line`` maps pid -> the checkpoint record chosen for that process.
    Requires the run to have ``trace_messages`` enabled.
    """
    positions = checkpoint_positions(trace)
    cut: Dict[int, int] = {}
    for pid, record in line.items():
        position = positions.get(record.ckpt_id)
        if position is None:
            # Initial checkpoints are traced at t=0; they must be there.
            raise InconsistentCheckpointError(
                f"checkpoint {record.ckpt_id} of p{pid} not found in trace"
            )
        cut[pid] = position

    send_positions: Dict[int, Tuple[int, int]] = {}
    orphans: List[Orphan] = []
    for index, record in enumerate(trace):
        if record.kind == "comp_send":
            send_positions[record["msg_id"]] = (index, record["src"])
        elif record.kind == "comp_recv":
            dst = record["dst"]
            if dst not in cut or index >= cut[dst]:
                continue  # receive not recorded in dst's checkpoint
            msg_id = record["msg_id"]
            sent = send_positions.get(msg_id)
            src = record["src"]
            if src not in cut:
                continue
            if sent is None or sent[0] >= cut[src]:
                orphans.append(
                    Orphan(
                        msg_id=msg_id,
                        src=src,
                        dst=dst,
                        send_position=None if sent is None else sent[0],
                        recv_position=index,
                    )
                )
    return orphans


def check_vector_clocks(line: Dict[int, CheckpointRecord]) -> bool:
    """Vector-clock consistency of the global checkpoint ``line``."""
    return snapshot_consistent(
        (pid, record.vector_clock) for pid, record in line.items()
    )


def latest_permanent_line(
    storages: Iterable[StableStorage], pids: Iterable[int]
) -> Dict[int, CheckpointRecord]:
    """The current recovery line: newest permanent checkpoint per process.

    With mobility a process's checkpoints may be spread across several
    MSSs, so all storages are consulted.
    """
    line: Dict[int, CheckpointRecord] = {}
    storage_list = list(storages)
    for pid in pids:
        best: Optional[CheckpointRecord] = None
        for storage in storage_list:
            candidate = storage.latest(pid, CheckpointKind.PERMANENT)
            if candidate is not None and (
                best is None or candidate.ckpt_id > best.ckpt_id
            ):
                best = candidate
        if best is None:
            raise InconsistentCheckpointError(f"no permanent checkpoint for p{pid}")
        line[pid] = best
    return line


def assert_line_consistent(
    trace: TraceLog, line: Dict[int, CheckpointRecord]
) -> None:
    """Raise :class:`InconsistentCheckpointError` unless ``line`` passes
    both the orphan scan and the vector-clock test."""
    orphans = find_orphans(trace, line)
    if orphans:
        raise InconsistentCheckpointError(
            "orphan messages in recovery line: "
            + "; ".join(str(o) for o in orphans[:5])
        )
    if not check_vector_clocks(line):
        raise InconsistentCheckpointError(
            "vector-clock test failed for recovery line"
        )
