"""Statistics helpers: means and confidence intervals.

The paper reports means over many samples with 95 % confidence intervals
within ~10 % of the mean (§5.2); :func:`summarize` computes the same
Student-t interval so experiment output can state whether a run met the
paper's precision bar.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class Summary:
    """Mean with a symmetric confidence interval."""

    n: int
    mean: float
    stdev: float
    ci_halfwidth: float
    confidence: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci_halfwidth

    @property
    def relative_ci(self) -> float:
        """CI half-width as a fraction of the mean (inf when mean is 0)."""
        if self.mean == 0:
            return math.inf if self.ci_halfwidth > 0 else 0.0
        return abs(self.ci_halfwidth / self.mean)

    def meets_paper_precision(self, threshold: float = 0.10) -> bool:
        """Whether the 95 % CI is within ``threshold`` of the mean (§5.2)."""
        return self.relative_ci <= threshold

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_halfwidth:.2g} (n={self.n})"


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean and Student-t confidence interval of ``samples``."""
    n = len(samples)
    if n == 0:
        return Summary(0, 0.0, 0.0, 0.0, confidence)
    mean = sum(samples) / n
    if n == 1:
        return Summary(1, mean, 0.0, math.inf, confidence)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    stdev = math.sqrt(variance)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, n - 1))
    halfwidth = t_crit * stdev / math.sqrt(n)
    return Summary(n, mean, stdev, halfwidth, confidence)


def required_samples(summary: Summary, target_relative_ci: float = 0.10) -> int:
    """Rough sample size needed to shrink the CI to the target.

    Uses the normal approximation: n ∝ (stdev / (target · mean))².
    Returns at least the current n.
    """
    if summary.mean == 0 or summary.stdev == 0:
        return summary.n
    z = 1.96
    needed = (z * summary.stdev / (target_relative_ci * abs(summary.mean))) ** 2
    return max(summary.n, math.ceil(needed))
