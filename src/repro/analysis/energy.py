"""Energy accounting for mobile hosts (the §1 motivation, quantified).

The paper's design constraints are energy-driven: wireless transmission
is expensive, so the checkpointing algorithm should minimize both the
data shipped to stable storage and the synchronization messages — and
broadcasts "may waste the energy" of hosts in doze mode (§5.3.2).

:class:`EnergyModel` turns the per-host byte/wakeup counters the network
layer already maintains into energy figures; :class:`DozeManager` puts
idle hosts to sleep so experiments can measure how often checkpointing
traffic wakes them (the broadcast-vs-update commit trade-off).

The default coefficients follow the classic WaveLAN measurements
(Feeney & Nilsson, INFOCOM 2001): transmitting costs roughly twice as
much per byte as receiving, and every wakeup costs a fixed transition
charge. Absolute joules are not the point — the *ratios* between
protocol variants are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import MobileSystem


@dataclass(frozen=True)
class EnergyParams:
    """Energy coefficients (microjoules per byte, millijoules per event)."""

    tx_uj_per_byte: float = 1.9
    rx_uj_per_byte: float = 1.0
    wakeup_mj: float = 10.0
    idle_mw: float = 50.0
    doze_mw: float = 2.0


@dataclass
class HostEnergy:
    """Energy breakdown for one mobile host."""

    pid: int
    tx_bytes: int
    rx_bytes: int
    background_bytes: int
    wakeups: int
    doze_time: float
    awake_time: float
    tx_mj: float = field(init=False)
    rx_mj: float = field(init=False)
    wakeup_mj: float = field(init=False)
    idle_mj: float = field(init=False)

    def finalize(self, params: EnergyParams) -> "HostEnergy":
        self.tx_mj = (self.tx_bytes + self.background_bytes) * params.tx_uj_per_byte / 1000.0
        self.rx_mj = self.rx_bytes * params.rx_uj_per_byte / 1000.0
        self.wakeup_mj = self.wakeups * params.wakeup_mj
        self.idle_mj = (
            self.awake_time * params.idle_mw + self.doze_time * params.doze_mw
        ) / 1000.0
        return self

    @property
    def total_mj(self) -> float:
        return self.tx_mj + self.rx_mj + self.wakeup_mj + self.idle_mj


class EnergyModel:
    """Reads the per-host counters of a system into energy reports."""

    def __init__(self, system: "MobileSystem", params: EnergyParams = EnergyParams()) -> None:
        self.system = system
        self.params = params

    def host_report(self, pid: int) -> HostEnergy:
        """Energy breakdown for ``pid``'s mobile host."""
        process = self.system.processes[pid]
        mh = process.host
        uplink_bytes = mh.uplink.bytes_sent if getattr(mh, "uplink", None) else 0
        downlink = None
        if getattr(mh, "mss", None) is not None:
            try:
                downlink = mh.mss.downlink_to(mh.name)
            except Exception:
                downlink = None
        rx_bytes = downlink.bytes_sent if downlink is not None else 0
        now = self.system.sim.now
        doze_time = getattr(mh, "doze_time", 0.0)
        if getattr(mh, "dozing", False):
            doze_time += now - mh._doze_started
        report = HostEnergy(
            pid=pid,
            tx_bytes=uplink_bytes,
            rx_bytes=rx_bytes,
            background_bytes=getattr(mh, "background_bytes", 0),
            wakeups=getattr(mh, "wakeups", 0),
            doze_time=doze_time,
            awake_time=max(now - doze_time, 0.0),
        )
        return report.finalize(self.params)

    def report(self) -> Dict[int, HostEnergy]:
        """Per-host energy for every process on a mobile host."""
        return {pid: self.host_report(pid) for pid in self.system.processes}

    def totals(self) -> Dict[str, float]:
        """System-wide sums (millijoules and counts)."""
        rows = self.report().values()
        return {
            "tx_mj": sum(r.tx_mj for r in rows),
            "rx_mj": sum(r.rx_mj for r in rows),
            "wakeup_mj": sum(r.wakeup_mj for r in rows),
            "total_mj": sum(r.total_mj for r in rows),
            "wakeups": sum(r.wakeups for r in rows),
        }


class DozeManager:
    """Puts idle mobile hosts into doze mode (§1's doze operation).

    A host dozes once it has had no send/receive activity for
    ``idle_timeout`` seconds; any downlink arrival wakes it (handled by
    the MH itself). The manager polls on the simulation clock.
    """

    def __init__(
        self,
        system: "MobileSystem",
        idle_timeout: float = 30.0,
        poll_interval: float = 5.0,
    ) -> None:
        self.system = system
        self.idle_timeout = idle_timeout
        self.poll_interval = poll_interval
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        self.system.sim.schedule(self.poll_interval, self._poll)

    def _poll(self) -> None:
        if not self._running:
            return
        now = self.system.sim.now
        for mh in self.system.mhs:
            if (
                not mh.dozing
                and not mh.disconnected
                and now - mh.last_activity >= self.idle_timeout
            ):
                mh.doze()
        self._schedule()
