"""Vector clocks (Mattern/Fidge) used by the verification layer.

The runtime stamps every computation message with the sender's vector
clock and merges on delivery. Checkpoints snapshot the clock, giving the
consistency checker a protocol-independent way to decide whether a set
of checkpoints could contain an orphan message: a global checkpoint
``{ckpt_i}`` is consistent iff for all i, j:
``ckpt_j.vc[i] <= ckpt_i.vc[i]`` — no checkpoint has observed more of
process i than process i's own checkpoint records.

Delta stamps (Singhal-Kshemkalyani)
-----------------------------------
A full N-entry stamp per message is the dominant per-message cost at
large populations (profiled: ``merge`` alone was >50% of a 1024-process
run). In *delta mode* a clock tracks, per entry, when it last changed
and, per destination, when it last sent; a send then carries only the
entries changed since the previous send on that channel, as a
:class:`VCDelta`. The technique is sound on FIFO channels: every entry
omitted from a delta either was carried by an earlier message on the
same channel, or has never changed from its initial zero — and a
componentwise-max merge of an already-known (or zero) entry is a no-op.
Receivers accept either stamp form via
:meth:`VectorClock.merge_stamp`; the resulting clocks are equal, entry
for entry, to full-stamp mode.

Three refinements keep the per-send cost proportional to the *delta*
rather than to N (uniform traffic at 1k+ processes rarely reuses a
channel, so the textbook scheme degenerates into full stamps with extra
bookkeeping — measured slower than full mode):

* the changed-entry map is kept in change order (dict insertion order,
  move-to-end on change), so building a delta walks only the suffix
  newer than the channel's last send and stops;
* a delta larger than ``n // 8`` entries falls back to a full tuple
  stamp — cheaper to build (one C-level ``tuple``) and cheaper to merge
  (one C-level ``map(max, ...)``) than a long pair list;
* merging a full stamp records a single ``_full_at`` watermark instead
  of per-entry stamps (a safe overapproximation: channels last served
  before the watermark get a full stamp next time) and clears the
  changed map, so dense phases run entirely on C-level full-stamp
  operations.

:meth:`VectorClock.restore` (rollback) clears the per-channel
bookkeeping, so every post-rollback channel starts with a full stamp and
no receiver can depend on a delta whose base was dropped by the
incarnation ghost-check.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

try:  # vectorized componentwise max — ~100x the pure-Python merge at
    # 1024 entries. Optional: the container bakes it in, but the module
    # must import (with the list-backed fallback) without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: shared all-zero snapshots by population size — at build time every
#: process checkpoints an all-zero clock, and N distinct N-tuples of
#: zeros is O(N^2) memory for nothing.
_ZERO_SNAPSHOTS: Dict[int, Tuple[int, ...]] = {}


class VCDelta:
    """A sparse vector-clock stamp: only the entries that changed.

    ``pairs`` is a tuple of ``(index, value)`` pairs. Produced by
    :meth:`VectorClock.stamp_for` in delta mode; consumed by
    :meth:`VectorClock.merge_stamp`. Kept as a distinct type (rather
    than a bare tuple-of-pairs) so receivers can distinguish it from a
    full stamp unambiguously.
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs: Tuple[Tuple[int, int], ...]) -> None:
        self.pairs = pairs

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VCDelta) and self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __reduce__(self):
        return (VCDelta, (self.pairs,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCDelta {dict(self.pairs)}>"


#: what a message may carry as its vector-clock stamp
Stamp = Union[Tuple[int, ...], VCDelta]


class VectorClock:
    """A mutable vector clock for one process.

    With ``delta=True`` the clock additionally maintains the
    Singhal-Kshemkalyani bookkeeping needed to emit :class:`VCDelta`
    stamps from :meth:`stamp_for`; the default is the classic
    full-stamp behaviour (and :meth:`stamp_for` then returns full
    snapshots, which is the equivalence-testing reference path).
    """

    __slots__ = (
        "pid", "clock", "_delta", "_ticks", "_changed", "_ls",
        "_full_at", "_cap",
    )

    def __init__(self, pid: int, n: int, delta: bool = False) -> None:
        self.pid = pid
        #: int64 ndarray when numpy is present, else a plain list — all
        #: external observation goes through :meth:`snapshot` (plain-int
        #: tuples) either way
        self.clock = _np.zeros(n, dtype=_np.int64) if _np is not None else [0] * n
        self._delta = delta
        #: monotone op counter; stamps in _changed/_ls refer to it
        self._ticks = 0
        #: entry -> op stamp of its last change, in change order (the
        #: dict is move-to-end on every change; delta mode only)
        self._changed: Dict[int, int] = {}
        #: destination -> op stamp of the last send to it (delta mode)
        self._ls: Dict[int, int] = {}
        #: op stamp of the last full-stamp merge/restore — a collective
        #: change stamp covering *every* entry (safe overapproximation)
        self._full_at = 0
        #: deltas longer than this ride as full tuple stamps instead
        self._cap = max(8, n // 8)

    def tick(self) -> None:
        """Advance the local component (one local event)."""
        self.clock[self.pid] += 1
        if self._delta:
            self._ticks += 1
            changed = self._changed
            changed.pop(self.pid, None)
            changed[self.pid] = self._ticks

    def merge(self, other: Sequence[int]) -> None:
        """Componentwise max with a received full timestamp."""
        clock = self.clock
        if _np is not None:
            if type(other) is not _np.ndarray:
                other = _np.asarray(other, dtype=_np.int64)
            _np.maximum(clock, other, out=clock)
        else:
            for i, value in enumerate(other):
                if value > clock[i]:
                    clock[i] = value
        if self._delta:
            # One watermark instead of per-entry stamps: channels whose
            # last send predates it get a full stamp next time.
            self._ticks += 1
            self._full_at = self._ticks
            self._changed.clear()

    def merge_delta(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Componentwise max with a sparse (index, value) stamp."""
        clock = self.clock
        self._ticks += 1
        ticks = self._ticks
        changed = self._changed
        for i, value in pairs:
            if value > clock[i]:
                clock[i] = value
                changed.pop(i, None)
                changed[i] = ticks

    def merge_stamp(self, stamp: Stamp) -> None:
        """Merge either stamp form a message may carry."""
        if type(stamp) is VCDelta:
            self.merge_delta(stamp.pairs)
        else:
            self.merge(stamp)

    def stamp_for(self, dst: int) -> Stamp:
        """The stamp to attach to a message bound for ``dst``.

        Full-stamp mode: a full snapshot (the historical behaviour).
        Delta mode: the entries changed since the last send to ``dst``
        (never-sent channels count every nonzero entry as changed), as a
        :class:`VCDelta` — or a full tuple stamp when the delta would be
        long, or when a full-stamp merge/restore postdates the channel's
        last send.
        """
        if not self._delta:
            return self._full_stamp()
        ls = self._ls.get(dst, 0)
        self._ls[dst] = self._ticks
        if self._full_at > ls:
            return self._full_stamp()
        clock = self.clock
        changed = self._changed
        pairs = []
        append = pairs.append
        cap = self._cap
        # _changed is in ascending change order; the reversed walk stops
        # at the first entry the channel has already carried.
        for i in reversed(changed):
            if changed[i] <= ls:
                break
            if len(pairs) >= cap:
                return self._full_stamp()
            append((i, int(clock[i])))
        return VCDelta(tuple(pairs))

    def _full_stamp(self):
        """A full stamp: an immutable-by-convention array copy (numpy;
        one C memcpy, merged with one vectorized max) or a tuple."""
        clock = self.clock
        return clock.copy() if _np is not None else tuple(clock)

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable plain-int tuple copy of the current clock."""
        clock = self.clock
        if _np is not None:
            if not clock.any():
                return self._zero_snapshot(len(clock))
            return tuple(clock.tolist())
        if not any(clock):
            return self._zero_snapshot(len(clock))
        return tuple(clock)

    @staticmethod
    def _zero_snapshot(n: int) -> Tuple[int, ...]:
        zero = _ZERO_SNAPSHOTS.get(n)
        if zero is None:
            zero = _ZERO_SNAPSHOTS[n] = (0,) * n
        return zero

    def restore(self, snap: Sequence[int]) -> None:
        """Reset the clock to a snapshot (used by rollback).

        In delta mode this also invalidates the per-destination send
        bookkeeping: the next send on every channel carries a full
        stamp, so no receiver depends on deltas whose base predates the
        rollback (or was dropped by the incarnation ghost-check).
        """
        self.clock = (
            _np.array(snap, dtype=_np.int64) if _np is not None else list(snap)
        )
        if self._delta:
            self._ticks += 1
            self._full_at = self._ticks
            self._changed.clear()
            self._ls.clear()

    def reset_deltas(self) -> None:
        """Force full stamps on every channel from now on."""
        self._ls.clear()
        self._ticks += 1
        self._full_at = self._ticks
        self._changed.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "Δ" if self._delta else ""
        return f"<VC{mode} p{self.pid} {self.clock}>"


def happened_before(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether timestamp ``a`` causally precedes ``b`` (a < b)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two timestamps are causally unordered."""
    return not happened_before(a, b) and not happened_before(b, a) and tuple(a) != tuple(b)


def snapshot_consistent(snapshots: Iterable[Tuple[int, Tuple[int, ...]]]) -> bool:
    """Consistency test for a global checkpoint.

    ``snapshots`` is an iterable of ``(pid, vector_clock)`` pairs, one per
    process. Returns True iff no pair exhibits an orphan: for every i, j,
    ``vc_j[i] <= vc_i[i]``.
    """
    items = list(snapshots)
    own = {pid: vc[pid] for pid, vc in items}
    for pid_j, vc_j in items:
        for pid_i, own_i in own.items():
            if pid_i == pid_j:
                continue
            if vc_j[pid_i] > own_i:
                return False
    return True
