"""Vector clocks (Mattern/Fidge) used by the verification layer.

The runtime stamps every computation message with the sender's vector
clock and merges on delivery. Checkpoints snapshot the clock, giving the
consistency checker a protocol-independent way to decide whether a set
of checkpoints could contain an orphan message: a global checkpoint
``{ckpt_i}`` is consistent iff for all i, j:
``ckpt_j.vc[i] <= ckpt_i.vc[i]`` — no checkpoint has observed more of
process i than process i's own checkpoint records.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


class VectorClock:
    """A mutable vector clock for one process."""

    __slots__ = ("pid", "clock")

    def __init__(self, pid: int, n: int) -> None:
        self.pid = pid
        self.clock: List[int] = [0] * n

    def tick(self) -> None:
        """Advance the local component (one local event)."""
        self.clock[self.pid] += 1

    def merge(self, other: Sequence[int]) -> None:
        """Componentwise max with a received timestamp."""
        clock = self.clock
        for i, value in enumerate(other):
            if value > clock[i]:
                clock[i] = value

    def snapshot(self) -> Tuple[int, ...]:
        """An immutable copy of the current clock."""
        return tuple(self.clock)

    def restore(self, snap: Sequence[int]) -> None:
        """Reset the clock to a snapshot (used by rollback)."""
        self.clock = list(snap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VC p{self.pid} {self.clock}>"


def happened_before(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether timestamp ``a`` causally precedes ``b`` (a < b)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def concurrent(a: Sequence[int], b: Sequence[int]) -> bool:
    """Whether two timestamps are causally unordered."""
    return not happened_before(a, b) and not happened_before(b, a) and tuple(a) != tuple(b)


def snapshot_consistent(snapshots: Iterable[Tuple[int, Tuple[int, ...]]]) -> bool:
    """Consistency test for a global checkpoint.

    ``snapshots`` is an iterable of ``(pid, vector_clock)`` pairs, one per
    process. Returns True iff no pair exhibits an orphan: for every i, j,
    ``vc_j[i] <= vc_i[i]``.
    """
    items = list(snapshots)
    own = {pid: vc[pid] for pid, vc in items}
    for pid_j, vc_j in items:
        for pid_i, own_i in own.items():
            if pid_i == pid_j:
                continue
            if vc_j[pid_i] > own_i:
                return False
    return True
