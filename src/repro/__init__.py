"""repro — reproduction of Cao & Singhal, "Mutable Checkpoints: A New
Checkpointing Approach for Mobile Computing Systems".

Quick start::

    from repro import (
        MobileSystem, SystemConfig, RunConfig,
        PointToPointWorkloadConfig, ExperimentRunner,
    )
    from repro.checkpointing import MutableCheckpointProtocol
    from repro.workload import PointToPointWorkload

    config = SystemConfig(n_processes=16, seed=1)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(10.0))
    result = ExperimentRunner(system, workload, RunConfig(max_initiations=5)).run()
    print(result.tentative_summary(), result.redundant_mutable_summary())
"""

from repro.core import (
    AppProcess,
    ExperimentRunner,
    GroupWorkloadConfig,
    MobileSystem,
    PointToPointWorkloadConfig,
    RunConfig,
    RunResult,
    SystemConfig,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AppProcess",
    "ExperimentRunner",
    "GroupWorkloadConfig",
    "MobileSystem",
    "PointToPointWorkloadConfig",
    "ReproError",
    "RunConfig",
    "RunResult",
    "SystemConfig",
    "__version__",
]
