"""Point-to-point workload (paper §5.1).

Each process sends computation messages with exponentially distributed
inter-send times; the destination of each message is uniformly
distributed over all other processes.
"""

from __future__ import annotations

from repro.core.config import PointToPointWorkloadConfig
from repro.core.system import MobileSystem
from repro.workload.base import Workload


class PointToPointWorkload(Workload):
    """Uniform-destination exponential traffic."""

    def __init__(
        self, system: MobileSystem, config: PointToPointWorkloadConfig
    ) -> None:
        super().__init__(system)
        self.config = config
        if config.mean_send_interval <= 0:
            raise ValueError(
                f"exponential mean must be positive, got {config.mean_send_interval!r}"
            )
        self._lambd = 1.0 / config.mean_send_interval
        # Per-pid bound stream methods and peer lists, resolved once:
        # the draws come from the same named streams in the same order as
        # the per-call lookups they replace, so sequences are identical.
        self._expo = {}
        self._choice = {}
        self._peers = {}

    def _bindings(self, pid: int):
        expo = self._expo.get(pid)
        if expo is None:
            streams = self.system.streams
            expo = self._expo[pid] = streams.stream(f"workload.p2p.{pid}").expovariate
            self._choice[pid] = streams.stream(f"workload.p2p.dst.{pid}").choice
        peers = self._peers.get(pid)
        if peers is None or len(peers) != len(self.system.processes) - 1:
            peers = self._peers[pid] = [
                p for p in self.system.processes if p != pid
            ]
        return expo, self._choice[pid], peers

    def _schedule_initial(self) -> None:
        for pid in self.system.processes:
            self._schedule_next(pid)

    def _schedule_next(self, pid: int) -> None:
        expo, _, _ = self._bindings(pid)
        self.system.sim.schedule(expo(self._lambd), self._fire, pid)

    def _fire(self, pid: int) -> None:
        if not self.running:
            return
        expo, choice, peers = self._bindings(pid)
        if peers:
            self._send(pid, choice(peers))
        self.system.sim.schedule(expo(self._lambd), self._fire, pid)
