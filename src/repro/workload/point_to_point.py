"""Point-to-point workload (paper §5.1).

Each process sends computation messages with exponentially distributed
inter-send times; the destination of each message is uniformly
distributed over all other processes.
"""

from __future__ import annotations

from repro.core.config import PointToPointWorkloadConfig
from repro.core.system import MobileSystem
from repro.workload.base import Workload


class PointToPointWorkload(Workload):
    """Uniform-destination exponential traffic."""

    def __init__(
        self, system: MobileSystem, config: PointToPointWorkloadConfig
    ) -> None:
        super().__init__(system)
        self.config = config

    def _schedule_initial(self) -> None:
        for pid in self.system.processes:
            self._schedule_next(pid)

    def _schedule_next(self, pid: int) -> None:
        delay = self.system.streams.exponential(
            f"workload.p2p.{pid}", self.config.mean_send_interval
        )
        self.system.sim.schedule(delay, self._fire, pid)

    def _fire(self, pid: int) -> None:
        if not self.running:
            return
        others = [p for p in self.system.processes if p != pid]
        if others:
            dst = self.system.streams.choice(f"workload.p2p.dst.{pid}", others)
            self._send(pid, dst)
        self._schedule_next(pid)
