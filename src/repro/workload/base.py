"""Workload abstraction.

A workload drives the application layer: it decides when each process
sends computation messages and to whom. Workloads are event-driven —
each process's next send is scheduled on the kernel — and respect the
process runtime's blocking (a blocked process's sends are deferred by
the runtime itself, so workloads never need to check).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.core.system import MobileSystem


class Workload(ABC):
    """Base class for traffic generators."""

    #: tells the sharded kernel that events scheduled on a workload
    #: carry the sending pid as their first argument, so per-process
    #: send timers land in that process's shard
    shard_by_pid = True

    def __init__(self, system: MobileSystem) -> None:
        self.system = system
        self._running = False
        self.messages_generated = 0

    @property
    def running(self) -> bool:
        """Whether the workload is actively generating traffic."""
        return self._running

    def start(self) -> None:
        """Begin generating traffic."""
        if self._running:
            return
        self._running = True
        self._schedule_initial()

    def stop(self) -> None:
        """Stop generating new traffic (in-flight messages still arrive)."""
        self._running = False

    @abstractmethod
    def _schedule_initial(self) -> None:
        """Schedule the first send of every process (subclass hook)."""

    def _send(self, pid: int, dst_pid: int) -> None:
        """Emit one application message (skipped while disconnected)."""
        process = self.system.processes[pid]
        if process.host.disconnected:
            return
        self.messages_generated += 1
        process.send_computation(dst_pid, payload=self.messages_generated)
