"""Traffic generators driving the application layer."""

from repro.workload.base import Workload
from repro.workload.bursty import BurstyWorkload, BurstyWorkloadConfig
from repro.workload.group import GroupWorkload
from repro.workload.point_to_point import PointToPointWorkload
from repro.workload.trace import ScriptedWorkload

__all__ = [
    "BurstyWorkload",
    "BurstyWorkloadConfig",
    "GroupWorkload",
    "PointToPointWorkload",
    "ScriptedWorkload",
    "Workload",
]
