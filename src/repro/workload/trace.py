"""Scripted (trace-replay) workload.

Used by the scenario engine (Figs. 1–4 reproductions) and by tests that
need exact control over who sends what and when. The script is a list of
``(time, src_pid, dst_pid)`` tuples; each entry emits one computation
message at the given simulated time.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.core.system import MobileSystem
from repro.workload.base import Workload

ScriptEntry = Tuple[float, int, int]


class ScriptedWorkload(Workload):
    """Replays an explicit send schedule."""

    def __init__(self, system: MobileSystem, script: Iterable[ScriptEntry]) -> None:
        super().__init__(system)
        self.script: List[ScriptEntry] = sorted(script, key=lambda e: e[0])

    def _schedule_initial(self) -> None:
        for time, src, dst in self.script:
            self.system.sim.schedule_at(time, self._fire, src, dst)

    def _fire(self, src: int, dst: int) -> None:
        if not self.running:
            return
        self._send(src, dst)
