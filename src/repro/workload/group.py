"""Group-communication workload (paper §5.1).

Processes are arranged into groups, each with a leader. Intragroup
traffic: every process sends to a uniformly random member of its own
group at the base rate. Intergroup traffic: only leaders send to other
leaders, at ``intra_inter_ratio`` times lower rate (the paper evaluates
ratios of 1 000 and 10 000).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.config import GroupWorkloadConfig
from repro.core.system import MobileSystem
from repro.errors import ConfigurationError
from repro.workload.base import Workload


class GroupWorkload(Workload):
    """Four-group (by default) leader-mediated traffic."""

    def __init__(self, system: MobileSystem, config: GroupWorkloadConfig) -> None:
        super().__init__(system)
        self.config = config
        n = system.config.n_processes
        if n % config.n_groups != 0:
            raise ConfigurationError(
                f"{n} processes do not divide into {config.n_groups} equal groups"
            )
        size = n // config.n_groups
        self.groups: List[List[int]] = [
            list(range(g * size, (g + 1) * size)) for g in range(config.n_groups)
        ]
        #: pid -> group index
        self.group_of: Dict[int, int] = {
            pid: g for g, members in enumerate(self.groups) for pid in members
        }
        #: the leader of each group is its lowest pid
        self.leaders: List[int] = [members[0] for members in self.groups]

    def is_leader(self, pid: int) -> bool:
        """Whether ``pid`` is its group's leader."""
        return pid in self.leaders

    def _schedule_initial(self) -> None:
        for pid in self.system.processes:
            self._schedule_intra(pid)
        for leader in self.leaders:
            self._schedule_inter(leader)

    # -- intragroup ---------------------------------------------------------
    def _schedule_intra(self, pid: int) -> None:
        delay = self.system.streams.exponential(
            f"workload.group.intra.{pid}", self.config.mean_send_interval
        )
        self.system.sim.schedule(delay, self._fire_intra, pid)

    def _fire_intra(self, pid: int) -> None:
        if not self.running:
            return
        members = [p for p in self.groups[self.group_of[pid]] if p != pid]
        if members:
            dst = self.system.streams.choice(f"workload.group.intra.dst.{pid}", members)
            self._send(pid, dst)
        self._schedule_intra(pid)

    # -- intergroup (leaders only) ---------------------------------------------
    def _schedule_inter(self, leader: int) -> None:
        mean = self.config.mean_send_interval * self.config.intra_inter_ratio
        delay = self.system.streams.exponential(f"workload.group.inter.{leader}", mean)
        self.system.sim.schedule(delay, self._fire_inter, leader)

    def _fire_inter(self, leader: int) -> None:
        if not self.running:
            return
        others = [l for l in self.leaders if l != leader]
        if others:
            dst = self.system.streams.choice(f"workload.group.inter.dst.{leader}", others)
            self._send(leader, dst)
        self._schedule_inter(leader)
