"""Bursty (ON/OFF) traffic — an extension beyond the paper's workloads.

Each process alternates between exponentially-distributed ON periods,
during which it sends at a high rate, and OFF periods of silence — a
better model of interactive mobile applications than pure Poisson
traffic. Burstiness stresses the mutable-checkpoint machinery harder:
a burst landing inside someone's checkpointing window produces exactly
the tagged-message races that force mutable checkpoints, so the
redundant-mutable curve is livelier than under §5.1's smooth traffic
(see ``benchmarks/bench_bursty_extension.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import MobileSystem
from repro.errors import ConfigurationError
from repro.workload.base import Workload


@dataclass(frozen=True)
class BurstyWorkloadConfig:
    """ON/OFF traffic parameters.

    During ON periods a process sends with exponential inter-send times
    of mean ``burst_send_interval``; ON and OFF period lengths are
    exponential with means ``mean_on`` / ``mean_off``. The long-run
    average rate is ``(mean_on / (mean_on + mean_off)) / burst_send_interval``.
    """

    burst_send_interval: float = 0.5
    mean_on: float = 5.0
    mean_off: float = 95.0

    def __post_init__(self) -> None:
        if min(self.burst_send_interval, self.mean_on, self.mean_off) <= 0:
            raise ConfigurationError("bursty parameters must be positive")

    @property
    def average_rate(self) -> float:
        """Long-run messages per second per process."""
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return duty / self.burst_send_interval


class BurstyWorkload(Workload):
    """ON/OFF point-to-point traffic with uniform destinations."""

    def __init__(self, system: MobileSystem, config: BurstyWorkloadConfig) -> None:
        super().__init__(system)
        self.config = config
        self._on = {pid: False for pid in system.processes}

    def is_on(self, pid: int) -> bool:
        """Whether ``pid`` is currently in a burst."""
        return self._on[pid]

    def _schedule_initial(self) -> None:
        for pid in self.system.processes:
            # stagger: start everyone in an OFF period
            self._schedule_burst_start(pid)

    # -- period machinery ------------------------------------------------
    def _schedule_burst_start(self, pid: int) -> None:
        delay = self.system.streams.exponential(
            f"bursty.off.{pid}", self.config.mean_off
        )
        self.system.sim.schedule(delay, self._burst_start, pid)

    def _burst_start(self, pid: int) -> None:
        if not self.running:
            return
        self._on[pid] = True
        duration = self.system.streams.exponential(
            f"bursty.on.{pid}", self.config.mean_on
        )
        self.system.sim.schedule(duration, self._burst_end, pid)
        self._schedule_send(pid)

    def _burst_end(self, pid: int) -> None:
        self._on[pid] = False
        if self.running:
            self._schedule_burst_start(pid)

    # -- sends within a burst ------------------------------------------------
    def _schedule_send(self, pid: int) -> None:
        delay = self.system.streams.exponential(
            f"bursty.send.{pid}", self.config.burst_send_interval
        )
        self.system.sim.schedule(delay, self._fire, pid)

    def _fire(self, pid: int) -> None:
        if not self.running or not self._on[pid]:
            return
        others = [p for p in self.system.processes if p != pid]
        if others:
            dst = self.system.streams.choice(f"bursty.dst.{pid}", others)
            self._send(pid, dst)
        self._schedule_send(pid)
