"""repro.service: the always-on campaign service.

The campaign engine (:mod:`repro.campaign`) is a batch tool: expand a
grid, fan it out, write a JSONL store, exit. This package promotes it to
a long-running, deduplicating service — ROADMAP item 5's "heavy
traffic" path:

* :class:`ResultDB` — an SQLite result store speaking the exact
  :class:`~repro.campaign.store.PointRecord` schema of the JSONL
  :class:`~repro.campaign.store.ResultStore`, with indexed queries and
  two-way JSONL import/export so existing campaign stores migrate in.
* :class:`ResultCache` — a global content-addressed cache over any
  store: submitting a grid first partitions its points into cache hits
  (served immediately, no simulation) and misses (queued).
* :class:`JobManager` — an async submission queue over a single shared
  worker pool: per-job streaming progress with ETA, cancellation, and
  crash-durable job state — a killed service resumes queued and
  in-progress jobs on restart via :mod:`repro.snapshot`.
* :func:`serve` / :class:`ServiceClient` — a stdlib HTTP front end
  (``repro-sim serve``) with submit/status/results/metrics endpoints
  and a live dashboard, plus the client ``repro-sim submit`` uses.

Quick use::

    from repro.campaign import preset_spec
    from repro.service import CampaignService

    with CampaignService("service-data") as svc:
        job = svc.submit(preset_spec("smoke"))
        report = svc.wait(job.job_id)
        print(report.merged_metrics().snapshot())
        # resubmitting is free: every point is a cache hit
        again = svc.submit(preset_spec("smoke"))
        assert svc.wait(again.job_id).executed == 0
"""

from repro.service.cache import CachePartition, ResultCache
from repro.service.client import ServiceClient, ServiceError
from repro.service.db import ResultDB
from repro.service.jobs import CampaignService, Job, JobManager
from repro.service.server import CampaignRequestHandler, make_server, serve

__all__ = [
    "CachePartition",
    "CampaignRequestHandler",
    "CampaignService",
    "Job",
    "JobManager",
    "ResultCache",
    "ResultDB",
    "ServiceClient",
    "ServiceError",
    "make_server",
    "serve",
]
