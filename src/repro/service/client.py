"""A small client for the campaign service (stdlib ``urllib`` only).

``repro-sim submit`` is built on this; it is also the programmatic way
to drive a remote service::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit(preset="smoke")
    done = client.wait(job["job_id"])
    results = client.results(job["job_id"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.errors import ReproError


class ServiceError(ReproError):
    """An HTTP-level or service-level failure, with the server's message."""


class ServiceClient:
    """JSON-over-HTTP calls mirroring the server's endpoints."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 - fall back to the status line
                message = str(exc)
            raise ServiceError(f"{url}: {message}") from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {url}: {exc.reason}") from exc

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (the Prometheus exposition) as text."""
        url = f"{self.base_url}{path}"
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(f"{url}: {exc}") from exc
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {url}: {exc.reason}") from exc

    # -- endpoints -------------------------------------------------------
    def submit(
        self,
        preset: Optional[str] = None,
        spec: Optional[Dict[str, Any]] = None,
        points: Optional[List[Dict[str, Any]]] = None,
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit one grid (exactly one of preset/spec/points)."""
        body: Dict[str, Any] = {}
        if preset is not None:
            body["preset"] = preset
        if spec is not None:
            body["spec"] = spec
        if points is not None:
            body["points"] = points
        if len(body) != 1:
            raise ValueError("pass exactly one of preset, spec, points")
        if name is not None:
            body["name"] = name
        return self._request("/submit", body)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/status/{job_id}")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/results/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("/jobs")["jobs"]

    def metrics(self) -> Dict[str, Any]:
        return self._request("/metrics")

    def metrics_prom(self) -> str:
        """The raw Prometheus text exposition (``GET /metrics.prom``)."""
        return self._request_text("/metrics.prom")

    def timeseries(self, job_id: str) -> Dict[str, Any]:
        """The job's merged windowed telemetry (live for running jobs)."""
        return self._request(f"/jobs/{job_id}/timeseries")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/cancel/{job_id}", body={})

    def healthy(self) -> bool:
        try:
            return bool(self._request("/healthz").get("ok"))
        except ServiceError:
            return False

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.5,
        tolerate_outages: bool = False,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        With ``tolerate_outages`` the wait survives a service restart
        (connection errors are retried until ``timeout``) — the client
        side of crash-durable jobs: kill the server mid-job, start it
        again, and this call still returns the completed job.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                status = self.status(job_id)
                if status["status"] in ("done", "failed", "cancelled"):
                    return status
            except ServiceError:
                if not tolerate_outages:
                    raise
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"{job_id} not finished after {timeout}s")
            time.sleep(poll_seconds)
