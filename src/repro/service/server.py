"""HTTP front end: ``repro-sim serve``.

Stdlib only (:mod:`http.server`): a :class:`ThreadingHTTPServer` whose
handler threads read shared service state while the manager's runner
thread executes jobs. Endpoints:

========================  =====================================================
``POST /submit``          submit a grid (``{"preset": ...}``, ``{"spec":
                          {...}}`` or ``{"points": [...]}``); returns the job
                          document with its cache partition counts
``GET  /jobs``            every job, oldest first
``GET  /status/<job>``    one job: state, done/total, ETA, progress tail
``GET  /results/<job>``   rows + merged metrics snapshot (grid order,
                          deterministic)
``POST /cancel/<job>``    cancel a queued or running job
``GET  /metrics``         the service status document (uptime, store counts,
                          cache stats, full metrics snapshot)
``GET  /metrics.prom``    Prometheus text exposition: the full registry plus
                          per-job gauges, canonically ordered (see
                          :mod:`repro.obs.prom`)
``GET  /jobs/<id>/timeseries``  the job's merged windowed telemetry (grid
                          order, worker-count-independent; live for
                          in-flight jobs)
``GET  /healthz``         liveness probe
``GET  /``                live text/HTML dashboard rendered from the metrics
                          registry snapshot (auto-refreshing, with per-job
                          activity sparklines)
========================  =====================================================

All request/response bodies are JSON except the dashboard. Responses
are canonically ordered (sorted keys), so resubmitting an identical
grid returns byte-identical ``/results`` documents — the property CI's
serve-smoke job asserts with ``cmp``.
"""

from __future__ import annotations

import html
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.analysis.ascii_chart import sparkline
from repro.campaign.spec import CampaignSpec, preset_spec
from repro.errors import ReproError
from repro.obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from repro.service.jobs import DEFAULT_SNAPSHOT_EVERY, CampaignService


def _json_bytes(document: Any) -> bytes:
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )


class CampaignRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`CampaignService`."""

    server_version = "repro-sim-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing --------------------------------------------------------
    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, document: Any, code: int = 200) -> None:
        self._send(code, _json_bytes(document), "application/json")

    def _error(self, code: int, message: str) -> None:
        self._send_json({"error": message}, code=code)

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            document = json.loads(raw.decode("utf-8") or "{}")
        except json.JSONDecodeError as exc:
            self._error(400, f"bad JSON body: {exc}")
            return None
        if not isinstance(document, dict):
            self._error(400, "body must be a JSON object")
            return None
        return document

    def _split(self) -> Tuple[str, Optional[str], Optional[str]]:
        parts = self.path.rstrip("/").split("/")
        # "/jobs/job-000001/timeseries" -> ("jobs", "job-000001", "timeseries")
        head = parts[1] if len(parts) > 1 else ""
        tail = parts[2] if len(parts) > 2 else None
        rest = parts[3] if len(parts) > 3 else None
        return head, tail, rest

    # -- GET -------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        head, tail, rest = self._split()
        if head == "":
            self._send(200, self._dashboard(), "text/html; charset=utf-8")
        elif head == "healthz":
            self._send_json({"ok": True})
        elif head == "metrics":
            self._send_json(self.service.status())
        elif head == "metrics.prom":
            self._send(
                200,
                self.service.prometheus_text().encode("utf-8"),
                PROM_CONTENT_TYPE,
            )
        elif head == "jobs" and tail and rest == "timeseries":
            self._timeseries(tail)
        elif head == "jobs" and tail is None:
            self._send_json(
                {"jobs": [j.to_dict() for j in self.service.manager.job_list()]}
            )
        elif head == "status" and tail:
            job = self.service.manager.jobs.get(tail)
            if job is None:
                self._error(404, f"unknown job {tail!r}")
            else:
                self._send_json(job.to_dict())
        elif head == "results" and tail:
            self._results(tail)
        else:
            self._error(404, f"no such endpoint: {self.path}")

    def _results(self, job_id: str) -> None:
        manager = self.service.manager
        job = manager.jobs.get(job_id)
        if job is None:
            self._error(404, f"unknown job {job_id!r}")
            return
        report = manager.report(job_id)
        self._send_json(
            {
                "job_id": job_id,
                "status": job.status,
                "total": len(job.points),
                "cache_hits": job.cache_hits,
                "executed": job.executed,
                "rows": report.rows(),
                "merged_metrics": report.merged_metrics().snapshot(),
            }
        )

    def _timeseries(self, job_id: str) -> None:
        if job_id not in self.service.manager.jobs:
            self._error(404, f"unknown job {job_id!r}")
            return
        self._send_json(self.service.job_timeseries(job_id))

    # -- POST ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        head, tail, _ = self._split()
        if head == "submit":
            self._submit()
        elif head == "cancel" and tail:
            if self.service.manager.cancel(tail):
                self._send_json({"job_id": tail, "cancelled": True})
            elif tail in self.service.manager.jobs:
                self._error(409, f"job {tail!r} already finished")
            else:
                self._error(404, f"unknown job {tail!r}")
        else:
            self._error(404, f"no such endpoint: {self.path}")

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            if "preset" in body:
                grid: Any = preset_spec(body["preset"])
            elif "spec" in body:
                grid = CampaignSpec.from_dict(body["spec"])
            elif "points" in body:
                grid = body["points"]
            else:
                raise ValueError("body needs one of: preset, spec, points")
            job = self.service.submit(grid, name=body.get("name"))
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self._error(400, f"{type(exc).__name__}: {exc}")
            return
        self._send_json(job.to_dict(), code=202)

    # -- dashboard -------------------------------------------------------
    def _dashboard(self) -> bytes:
        status = self.service.status()
        esc = html.escape
        rows = []
        for job in status["jobs"]:
            try:
                series = self.service.job_timeseries(job["job_id"])["rows"]
                spark = sparkline([row["events"] for row in series]) or "-"
            except Exception:  # noqa: BLE001 — dashboard must render regardless
                spark = "-"
            shards = job.get("shards", 1)
            rows.append(
                "<tr><td>{id}</td><td>{name}</td><td class={st}>{st}</td>"
                "<td>{done}/{total}</td><td>{hits}</td><td>{eta}</td>"
                "<td>{shards}</td><td>{stall}</td>"
                "<td>{spark}</td></tr>".format(
                    id=esc(job["job_id"]),
                    name=esc(job["name"]),
                    st=esc(job["status"]),
                    done=job["done"],
                    total=job["total"],
                    hits=job["cache_hits"],
                    eta=f'{job["eta_seconds"]:.1f}s'
                    if job["status"] == "running"
                    else "-",
                    shards=shards if shards > 1 else "-",
                    stall=f'{job.get("shard_stall_seconds", 0.0):.1f}s'
                    if shards > 1
                    else "-",
                    spark=esc(spark),
                )
            )
        cache = status["cache"]
        total_lookups = cache["hits"] + cache["misses"]
        hit_pct = 100.0 * cache["hits"] / total_lookups if total_lookups else 0.0
        counters = status["metrics"]["counters"]
        counter_rows = "".join(
            f"<tr><td>{esc(name)}</td><td>{value:g}</td></tr>"
            for name, value in counters.items()
            if name.startswith("service.")
        )
        page = f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>repro-sim campaign service</title>
<style>
 body {{ font-family: monospace; margin: 2em; }}
 table {{ border-collapse: collapse; margin-bottom: 1.5em; }}
 td, th {{ border: 1px solid #999; padding: 2px 10px; text-align: left; }}
 .running {{ color: #a60; }} .done {{ color: #070; }}
 .failed, .cancelled {{ color: #a00; }}
</style></head><body>
<h1>repro-sim campaign service</h1>
<p>uptime {status["uptime_seconds"]:.0f}s · {status["workers"]} worker(s)
 · store: {esc(json.dumps(status["store"]))}
 · cache: {cache["hits"]:g} hits / {cache["misses"]:g} misses
 ({hit_pct:.1f}% hit rate)</p>
<h2>jobs</h2>
<table><tr><th>job</th><th>name</th><th>status</th><th>points</th>
<th>cache hits</th><th>eta</th><th>shards</th><th>shard stall</th>
<th>events/window</th></tr>
{"".join(rows) or '<tr><td colspan="9">none yet</td></tr>'}
</table>
<h2>service metrics</h2>
<table><tr><th>counter</th><th>value</th></tr>{counter_rows}</table>
</body></html>
"""
        return page.encode("utf-8")


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a server to the service; ``port=0`` picks a free port."""
    server = ThreadingHTTPServer((host, port), CampaignRequestHandler)
    server.service = service  # type: ignore[attr-defined]
    server.daemon_threads = True
    return server


def serve(
    data_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 1,
    snapshot_every: Optional[int] = None,
    import_jsonl: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> None:
    """Run the service until interrupted (the ``repro-sim serve`` body)."""
    with CampaignService(
        data_dir=data_dir,
        workers=workers,
        snapshot_every=(
            snapshot_every if snapshot_every is not None
            else DEFAULT_SNAPSHOT_EVERY
        ),
    ) as service:
        for path in import_jsonl or ():
            count = service.import_jsonl(path)
            print(f"imported {count} records from {path}")
        server = make_server(service, host=host, port=port)
        server.verbose = verbose  # type: ignore[attr-defined]
        bound = server.server_address
        print(f"campaign service on http://{bound[0]}:{bound[1]}/ "
              f"(data: {data_dir or 'in-memory'}, {workers} worker(s))")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
