"""SQLite result backend: the service's durable, indexed store.

:class:`ResultDB` speaks the exact :class:`~repro.campaign.store.ResultStore`
surface (``append`` / ``get`` / ``in`` / ``completed_hashes`` / ...), so
:class:`~repro.campaign.engine.CampaignEngine` and the cache layer use
either interchangeably. What SQLite adds over append-only JSONL:

* **indexed queries** — by point hash (primary key), campaign, and
  status, so a service holding millions of points answers "is this hash
  cached?" and "what failed in campaign X?" without scanning a file;
* **WAL mode** — concurrent readers (status/results endpoints) never
  block the writer appending results;
* **associative import/export** — :meth:`import_jsonl` folds an
  existing JSONL store in (later records win, exactly the JSONL replay
  rule) and :meth:`export_jsonl` writes one back out, so old campaign
  results migrate into a service and service results remain inspectable
  by every JSONL-reading tool.

Durability: commits run in WAL mode with ``synchronous=NORMAL`` — a
killed process (the service's failure mode, covered by CI's
serve-smoke kill/restart) loses nothing; only an OS-level power cut can
drop the very last commits, and the database stays consistent even
then.

The same cache-hit semantics as the JSONL store apply: ``in`` and
:meth:`completed_hashes` see only successful records; failed records
are visible via :meth:`get` / :meth:`failed_records` and must be
re-run, never served from cache.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from typing import Any, Dict, Iterator, List, Optional, Set

from repro.campaign.store import PointRecord, ResultStore

_SCHEMA = """
CREATE TABLE IF NOT EXISTS points (
    point_hash TEXT PRIMARY KEY,
    status     TEXT NOT NULL,
    campaign   TEXT NOT NULL DEFAULT '',
    attempts   INTEGER NOT NULL DEFAULT 1,
    wall_time  REAL NOT NULL DEFAULT 0.0,
    record     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_points_status ON points (status);
CREATE INDEX IF NOT EXISTS idx_points_campaign ON points (campaign);
"""


class ResultDB:
    """SQLite-backed store of :class:`PointRecord`.

    ``path=None`` opens an in-memory database (tests, one-shot use).
    Safe to share across threads: the HTTP handler threads read while
    the job runner writes; a lock serializes access to the single
    connection and WAL keeps readers unblocked at the file level.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            path if path is not None else ":memory:",
            check_same_thread=False,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    # -- writing ---------------------------------------------------------
    def append(self, record: PointRecord, campaign: str = "") -> None:
        """Record one outcome durably; a same-hash record supersedes.

        ``campaign`` tags the row for indexed per-campaign queries; the
        engine calls the two-argument :class:`ResultStore` signature, so
        untagged rows are simply the empty campaign.
        """
        row = (
            record.point_hash,
            record.status,
            campaign,
            record.attempts,
            record.wall_time,
            json.dumps(record.to_dict(), sort_keys=True),
        )
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO points "
                "(point_hash, status, campaign, attempts, wall_time, record) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(point_hash) DO UPDATE SET "
                "status=excluded.status, campaign=excluded.campaign, "
                "attempts=excluded.attempts, wall_time=excluded.wall_time, "
                "record=excluded.record",
                row,
            )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultDB":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- reading (the ResultStore surface) -------------------------------
    def _rows(self, where: str = "", args: tuple = ()) -> List[str]:
        with self._lock:
            cur = self._conn.execute(
                f"SELECT record FROM points {where} ORDER BY point_hash", args
            )
            return [row[0] for row in cur.fetchall()]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM points"
            ).fetchone()
        return int(count)

    def __contains__(self, point_hash: str) -> bool:
        """True when the point has a *successful* result (cache-hit rule)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM points WHERE point_hash = ? AND status = 'ok'",
                (point_hash,),
            ).fetchone()
        return row is not None

    def get(self, point_hash: str) -> Optional[PointRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM points WHERE point_hash = ?",
                (point_hash,),
            ).fetchone()
        if row is None:
            return None
        return PointRecord.from_dict(json.loads(row[0]))

    def records(self) -> Iterator[PointRecord]:
        for blob in self._rows():
            yield PointRecord.from_dict(json.loads(blob))

    def completed_hashes(self) -> Set[str]:
        """Hashes with a successful result (what resume/cache skips)."""
        with self._lock:
            cur = self._conn.execute(
                "SELECT point_hash FROM points WHERE status = 'ok'"
            )
            return {row[0] for row in cur.fetchall()}

    def failed_records(self) -> List[PointRecord]:
        return [
            PointRecord.from_dict(json.loads(blob))
            for blob in self._rows("WHERE status != 'ok'")
        ]

    def campaign_records(self, campaign: str) -> List[PointRecord]:
        """Records tagged with one campaign name (indexed)."""
        return [
            PointRecord.from_dict(json.loads(blob))
            for blob in self._rows("WHERE campaign = ?", (campaign,))
        ]

    def status_counts(self) -> Dict[str, int]:
        """``{status: row count}`` — the dashboard's one-query summary."""
        with self._lock:
            cur = self._conn.execute(
                "SELECT status, COUNT(*) FROM points GROUP BY status"
            )
            return {status: int(count) for status, count in cur.fetchall()}

    def snapshot_paths(self) -> Dict[str, List[str]]:
        """Live snapshot files per point (same orphan guard as JSONL)."""
        paths: Dict[str, List[str]] = {}
        for record in self.records():
            snapshots = (record.meta or {}).get("snapshots")
            if snapshots:
                live = [p for p in snapshots if os.path.exists(p)]
                if live:
                    paths[record.point_hash] = live
        return paths

    # -- migration -------------------------------------------------------
    def import_jsonl(self, path: str, campaign: str = "") -> int:
        """Fold a JSONL :class:`ResultStore` file in; returns rows merged.

        Uses the JSONL store's replay rule — torn final lines are
        tolerated, later records for a hash win — and upserts each
        surviving record, so importing is associative: folding several
        overlapping stores in, in any interleaving, leaves the same
        database as appending all their records in file order.
        """
        merged: Dict[str, PointRecord] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh.read().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line from a crash mid-write
                record = PointRecord.from_dict(data)
                merged[record.point_hash] = record
        for record in merged.values():
            self.append(record, campaign=campaign)
        return len(merged)

    def export_jsonl(self, path: str) -> int:
        """Write every record out as a JSONL store; returns rows written.

        The result loads in :class:`ResultStore` unchanged (one record
        per hash, so replay is the identity), closing the migration
        loop: JSONL -> SQLite -> JSONL round-trips losslessly.
        """
        count = 0
        with ResultStore(path) as out:
            for record in self.records():
                out.append(record)
                count += 1
        return count
