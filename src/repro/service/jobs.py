"""Async job manager: a submission queue over the campaign engine.

A *job* is one submitted grid. The manager partitions it against the
global result cache at submission time (hits are answered immediately
and never queued), then a single runner thread drains the queue job by
job through :class:`~repro.campaign.engine.CampaignEngine` — against
the shared :class:`~repro.service.db.ResultDB` and, for ``workers > 1``,
a single long-lived multiprocessing pool reused across jobs.

Crash durability is layered:

* every finished **point** is committed to the database before the next
  one starts (the engine's normal store discipline);
* every **job** is persisted (id, points, status) in a ``jobs`` table in
  the same database, so a killed service finds its queued and running
  jobs on restart and re-enqueues them — completed points are skipped
  via the store, and the **in-progress point** resumes mid-run from its
  ``.rsnap`` snapshot (PR-6 machinery) instead of restarting;
* results are deterministic, so an interrupted-and-resumed job's
  records are bit-identical to an uninterrupted run's.

:class:`CampaignService` is the facade the HTTP server and tests use:
one data directory wiring db + cache + manager + metrics together.
"""

from __future__ import annotations

import io
import json
import os
import sqlite3
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.engine import CampaignEngine, CampaignReport
from repro.campaign.progress import ProgressReporter
from repro.campaign.spec import CampaignSpec, RunPoint
from repro.obs.prom import render_prometheus
from repro.obs.registry import MetricsRegistry
from repro.service.cache import ResultCache
from repro.service.db import ResultDB

#: job states; queued/running are "live" (re-enqueued after a crash)
QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled",
)
_LIVE = (QUEUED, RUNNING)
_TERMINAL = (DONE, FAILED, CANCELLED)

#: default event period for in-progress point snapshots (matches the
#: campaign engine's crash-resume default)
DEFAULT_SNAPSHOT_EVERY = 2000


class _LineBuffer(io.TextIOBase):
    """A writable stream keeping the most recent progress lines.

    :class:`ProgressReporter` prints one line per finished point; a
    long-lived service cannot keep them all, so status endpoints stream
    the tail of a bounded deque.
    """

    def __init__(self, capacity: int = 50) -> None:
        self.lines: deque = deque(maxlen=capacity)
        self._partial = ""
        self._lock = threading.Lock()

    def write(self, text: str) -> int:
        with self._lock:
            self._partial += text
            while "\n" in self._partial:
                line, self._partial = self._partial.split("\n", 1)
                self.lines.append(line)
        return len(text)

    def tail(self, n: int = 20) -> List[str]:
        with self._lock:
            return list(self.lines)[-n:]


class Job:
    """One submitted grid and its lifecycle state."""

    def __init__(self, job_id: str, name: str, points: List[RunPoint]) -> None:
        self.job_id = job_id
        self.name = name
        self.points = points
        self.status = QUEUED
        self.error: Optional[str] = None
        self.cache_hits = 0
        self.queued = len(points)
        self.executed = 0
        self.failed_points = 0
        self.wall_time = 0.0
        self.resumed = False
        #: largest SystemConfig.shards over the job's points (1 = all
        #: sequential); lets operators spot sharded-kernel jobs at a glance
        self.shards = max(
            (int(p.system_params.get("shards", 1)) for p in points),
            default=1,
        )
        #: summed shard_stats.stall_seconds over stored point results
        self.shard_stall_seconds = 0.0
        self.submitted_at = time.time()
        self.log = _LineBuffer()
        self.progress = ProgressReporter(
            total=len(points), stream=self.log, enabled=True
        )
        self.cancel_event = threading.Event()
        self.done_event = threading.Event()

    @property
    def finished(self) -> bool:
        return self.status in _TERMINAL

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe status view (what ``GET /status/<id>`` returns)."""
        return {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "total": len(self.points),
            "done": self.progress.done,
            "cache_hits": self.cache_hits,
            "queued": self.queued,
            "executed": self.executed,
            "failed_points": self.failed_points,
            "eta_seconds": round(self.progress.eta_seconds(), 3),
            "wall_time": round(self.wall_time, 3),
            "resumed": self.resumed,
            "shards": self.shards,
            "shard_stall_seconds": round(self.shard_stall_seconds, 6),
            "error": self.error,
            "progress": self.log.tail(),
        }


class JobManager:
    """Background queue draining submitted jobs through the engine."""

    def __init__(
        self,
        db: ResultDB,
        cache: Optional[ResultCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        snapshot_dir: Optional[str] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        self.db = db
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = cache if cache is not None else ResultCache(
            db, metrics=self.metrics
        )
        self.workers = max(1, workers)
        self.snapshot_dir = snapshot_dir
        self.snapshot_every = snapshot_every
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._queue: deque = deque()
        self._seq = 0
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._pool = None
        # The jobs table lives in the results database file; a separate
        # connection keeps ResultDB strictly about PointRecords. With
        # an in-memory ResultDB there is nothing durable to attach to,
        # so job state is process-local (tests, ephemeral services).
        self._jobs_conn: Optional[sqlite3.Connection] = None
        if db.path is not None:
            self._jobs_conn = sqlite3.connect(db.path, check_same_thread=False)
            self._jobs_conn.execute("PRAGMA journal_mode=WAL")
            self._jobs_conn.execute("PRAGMA synchronous=NORMAL")
            with self._jobs_conn:
                self._jobs_conn.execute(
                    "CREATE TABLE IF NOT EXISTS jobs ("
                    " job_id TEXT PRIMARY KEY,"
                    " seq INTEGER NOT NULL,"
                    " name TEXT NOT NULL,"
                    " status TEXT NOT NULL,"
                    " error TEXT,"
                    " cache_hits INTEGER NOT NULL DEFAULT 0,"
                    " points TEXT NOT NULL)"
                )

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "JobManager":
        """Recover persisted jobs, then start the runner thread."""
        self._recover()
        if self.workers > 1:
            # Fork the shared pool before any other threads exist (the
            # HTTP server starts after the manager) — one fork, reused
            # by every job until shutdown or a cancellation terminates
            # it (it is then lazily recreated).
            self._pool = self._make_pool()
        self._thread = threading.Thread(
            target=self._run_loop, name="job-runner", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop after the current point; queued jobs stay persisted."""
        self._stopping = True
        self._wake.set()
        if self._thread is not None and wait:
            self._thread.join(timeout=timeout)
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._jobs_conn is not None:
            self._jobs_conn.close()
            self._jobs_conn = None

    def _make_pool(self):
        from repro.campaign.engine import _pool_context

        return _pool_context().Pool(processes=self.workers)

    # -- persistence -----------------------------------------------------
    def _persist(self, job: Job, seq: int) -> None:
        if self._jobs_conn is None:
            return
        with self._lock:
            with self._jobs_conn:
                self._jobs_conn.execute(
                    "INSERT INTO jobs "
                    "(job_id, seq, name, status, error, cache_hits, points) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(job_id) DO UPDATE SET "
                    "status=excluded.status, error=excluded.error, "
                    "cache_hits=excluded.cache_hits",
                    (
                        job.job_id,
                        seq,
                        job.name,
                        job.status,
                        job.error,
                        job.cache_hits,
                        json.dumps([p.to_dict() for p in job.points]),
                    ),
                )

    def _update_status(self, job: Job) -> None:
        if self._jobs_conn is None:
            return
        with self._lock:
            with self._jobs_conn:
                self._jobs_conn.execute(
                    "UPDATE jobs SET status=?, error=?, cache_hits=? "
                    "WHERE job_id=?",
                    (job.status, job.error, job.cache_hits, job.job_id),
                )

    def _recover(self) -> None:
        """Reload persisted jobs; live ones are re-enqueued in order."""
        if self._jobs_conn is None:
            return
        rows = self._jobs_conn.execute(
            "SELECT job_id, seq, name, status, error, cache_hits, points "
            "FROM jobs ORDER BY seq"
        ).fetchall()
        for job_id, seq, name, status, error, cache_hits, points_json in rows:
            points = [RunPoint.from_dict(d) for d in json.loads(points_json)]
            job = Job(job_id, name, points)
            job.error = error
            job.cache_hits = int(cache_hits)
            job.queued = max(0, len(points) - job.cache_hits)
            self._seq = max(self._seq, int(seq))
            self.jobs[job_id] = job
            self._order.append(job_id)
            if status in _LIVE:
                # A killed service left this queued or mid-run; run it
                # (again). Completed points are already in the store and
                # the in-progress point resumes from its snapshot.
                job.status = QUEUED
                job.resumed = True
                self.metrics.counter("service.jobs.resumed").inc()
                self._queue.append(job_id)
                self._update_status(job)
            else:
                job.status = status
                job.shard_stall_seconds = self._shard_stall(job)
                job.done_event.set()
        self._wake.set()

    # -- submission ------------------------------------------------------
    def submit(
        self,
        grid: Union[CampaignSpec, Sequence[RunPoint], Sequence[Dict[str, Any]]],
        name: Optional[str] = None,
    ) -> Job:
        """Queue one grid; returns the job immediately.

        The grid is partitioned against the cache *now*: hits are
        answered from the store with zero simulation work, so an
        all-hit job completes without ever reaching the runner thread's
        engine invocation (its status flips straight through).
        """
        if isinstance(grid, CampaignSpec):
            points = grid.expand()
            job_name = name or grid.name
        else:
            points = [
                p if isinstance(p, RunPoint) else RunPoint.from_dict(dict(p))
                for p in grid
            ]
            job_name = name or "adhoc"
        if not points:
            raise ValueError("cannot submit an empty grid")
        part = self.cache.partition(points)
        with self._lock:
            self._seq += 1
            seq = self._seq
            job_id = f"job-{seq:06d}"
            job = Job(job_id, job_name, points)
            job.cache_hits = len(part.hits)
            job.queued = len(part.misses)
            self.jobs[job_id] = job
            self._order.append(job_id)
            self._queue.append(job_id)
            self._persist(job, seq)
            self.metrics.counter("service.jobs.submitted").inc()
            self.metrics.counter("service.points.submitted").inc(len(points))
            self.metrics.gauge("service.queue.depth").set(len(self._queue))
        self._wake.set()
        return job

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; running jobs stop after the current point."""
        job = self.jobs.get(job_id)
        if job is None or job.finished:
            return False
        job.cancel_event.set()
        with self._lock:
            if job.status == QUEUED and job_id in self._queue:
                self._queue.remove(job_id)
                self._finish(job, CANCELLED)
        self._wake.set()
        return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.jobs[job_id]
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"{job_id} still {job.status} after {timeout}s")
        return job

    def job_list(self) -> List[Job]:
        """Every known job, oldest first."""
        return [self.jobs[job_id] for job_id in self._order]

    # -- results ---------------------------------------------------------
    def report(self, job_id: str) -> CampaignReport:
        """The job's results, assembled from the store in grid order.

        Works for finished *and* in-flight jobs (in-flight reports cover
        the points recorded so far), and — because every record lives in
        the shared store — for recovered jobs whose compute happened in
        a previous service process.
        """
        job = self.jobs[job_id]
        report = CampaignReport(name=job.name, cancelled=job.status == CANCELLED)
        for point in job.points:
            record = self.db.get(point.point_hash)
            if record is not None and record.ok:
                report.points.append(point)
                report.records.append(record)
        report.executed = job.executed
        report.skipped = job.cache_hits
        report.wall_time = job.wall_time
        return report

    # -- runner thread ---------------------------------------------------
    def _run_loop(self) -> None:
        while not self._stopping:
            with self._lock:
                job_id = self._queue.popleft() if self._queue else None
                self.metrics.gauge("service.queue.depth").set(len(self._queue))
            if job_id is None:
                self._wake.wait(timeout=0.2)
                self._wake.clear()
                continue
            self._run_job(self.jobs[job_id])

    def _run_job(self, job: Job) -> None:
        job.status = RUNNING
        self._update_status(job)
        self.metrics.gauge("service.jobs.active").set(1)
        started = time.perf_counter()
        try:
            engine = CampaignEngine(
                job.points,
                store=self.db,
                workers=self.workers,
                progress=job.progress,
                snapshot_dir=self.snapshot_dir,
                snapshot_every=self.snapshot_every,
                pool=self._ensure_pool(),
                should_stop=lambda: (
                    job.cancel_event.is_set() or self._stopping
                ),
            )
            report = engine.run()
        except Exception as exc:  # noqa: BLE001 — a job must not kill the service
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, FAILED)
            return
        finally:
            job.wall_time = time.perf_counter() - started
            self.metrics.gauge("service.jobs.active").set(0)
        job.executed = report.executed
        job.failed_points = len(report.failed)
        job.shard_stall_seconds = self._shard_stall(job)
        self.metrics.counter("service.points.executed").inc(report.executed)
        self.metrics.counter("service.points.failed").inc(len(report.failed))
        self.metrics.histogram("service.job.wall_seconds").observe(job.wall_time)
        if report.cancelled and job.cancel_event.is_set():
            # Cancellation may leave shared-pool tasks queued; terminate
            # so the next job starts on idle workers (recreated lazily).
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
            self._finish(job, CANCELLED)
        elif report.cancelled:
            # Stopped by shutdown, not by the user: stay live so the
            # next service process re-enqueues and completes the job.
            job.status = QUEUED
            self._update_status(job)
        else:
            self._finish(job, DONE)

    def _shard_stall(self, job: Job) -> float:
        """Summed window-stall seconds over the job's stored results.

        Sequential points carry no ``shard_stats`` and contribute 0, so
        the gauge is exactly the sharded-kernel synchronization cost of
        the job as recorded by
        :meth:`repro.sim.shard.ShardedSimulator.shard_report`.
        """
        total = 0.0
        for point in job.points:
            record = self.db.get(point.point_hash)
            if record is not None and record.ok:
                stats = record.result.get("shard_stats") or {}
                total += float(stats.get("stall_seconds", 0.0))
        return total

    def _ensure_pool(self):
        if self.workers > 1 and self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _finish(self, job: Job, status: str) -> None:
        job.status = status
        self._update_status(job)
        self.metrics.counter(f"service.jobs.{status}").inc()
        job.done_event.set()


class CampaignService:
    """The whole service behind one facade: db + cache + jobs + metrics.

    ``data_dir=None`` runs fully in memory (no durability — tests and
    throwaway services); with a directory, results land in
    ``results.sqlite`` (shared by the jobs table) and in-progress point
    snapshots under ``snapshots/``.
    """

    def __init__(
        self,
        data_dir: Optional[str] = None,
        workers: int = 1,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.data_dir = data_dir
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
            db_path: Optional[str] = os.path.join(data_dir, "results.sqlite")
            snapshot_dir: Optional[str] = os.path.join(data_dir, "snapshots")
        else:
            db_path = None
            snapshot_dir = None
        self.db = ResultDB(db_path)
        self.cache = ResultCache(self.db, metrics=self.metrics)
        self.manager = JobManager(
            self.db,
            cache=self.cache,
            metrics=self.metrics,
            workers=workers,
            snapshot_dir=snapshot_dir,
            snapshot_every=snapshot_every,
        ).start()
        self.started_at = time.time()

    # -- delegation ------------------------------------------------------
    def submit(self, grid, name: Optional[str] = None) -> Job:
        return self.manager.submit(grid, name=name)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> CampaignReport:
        self.manager.wait(job_id, timeout=timeout)
        return self.manager.report(job_id)

    def cancel(self, job_id: str) -> bool:
        return self.manager.cancel(job_id)

    def import_jsonl(self, path: str, campaign: str = "") -> int:
        """Migrate an existing JSONL campaign store into the cache."""
        count = self.db.import_jsonl(path, campaign=campaign)
        self.metrics.counter("service.points.imported").inc(count)
        return count

    def status(self) -> Dict[str, Any]:
        """The service-wide status document (``GET /metrics``)."""
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "workers": self.manager.workers,
            "data_dir": self.data_dir,
            "jobs": [job.to_dict() for job in self.manager.job_list()],
            "store": self.db.status_counts(),
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
        }

    def job_timeseries(self, job_id: str) -> Dict[str, Any]:
        """Merged windowed telemetry of one job (``GET /jobs/<id>/timeseries``).

        Assembled from the stored point results in grid order, so it
        works for in-flight jobs (covering the points finished so far)
        and is worker-count-independent. Rows are empty when the job's
        points did not set ``timeseries_window``. Raises ``KeyError``
        for an unknown job.
        """
        job = self.manager.jobs[job_id]
        merged = self.manager.report(job_id).merged_timeseries()
        return {
            "job_id": job_id,
            "status": job.status,
            "window": merged.get("window"),
            "dropped": merged.get("dropped", 0),
            "rows": merged.get("rows", []),
        }

    def prometheus_text(self) -> str:
        """The service registry + per-job gauges as Prometheus exposition.

        Canonically ordered (see :func:`repro.obs.prom.render_prometheus`),
        so two scrapes of an idle service are byte-identical and every
        counter/per-job-progress sample is non-decreasing across scrapes.
        """
        extra = []
        for job in self.manager.job_list():
            labels = {"job_id": job.job_id, "name": job.name}
            extra.append(
                ("service.job.points", labels, float(len(job.points)))
            )
            extra.append(
                ("service.job.points_done", labels, float(job.progress.done))
            )
            extra.append(
                ("service.job.cache_hits", labels, float(job.cache_hits))
            )
            extra.append(("service.job.shards", labels, float(job.shards)))
            extra.append(
                ("service.job.shard_stall_seconds", labels,
                 job.shard_stall_seconds)
            )
        return render_prometheus(self.metrics.snapshot(), extra_gauges=extra)

    def close(self) -> None:
        self.manager.shutdown()
        self.db.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
