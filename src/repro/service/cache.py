"""Global content-addressed result cache.

Every :class:`~repro.campaign.spec.RunPoint` is already identified by
the SHA-256 hash of its canonical spec (:func:`repro.campaign.cache.spec_hash`)
— the point's *complete* identity: protocol + params, workload + params,
system overrides, run params, seed, max_events, replicate. Two points
with the same hash therefore describe byte-identical simulations, which
is what makes a **global** cache sound: a result computed for one
client's grid can be served to any other grid containing the same cell,
forever, with no coherence protocol. (See DESIGN.md "Cache-key
semantics" for what is deliberately *outside* the key.)

:class:`ResultCache` is that policy over any record store (JSONL
:class:`~repro.campaign.store.ResultStore` or SQLite
:class:`~repro.service.db.ResultDB`): :meth:`partition` splits a
submitted grid into hits (served immediately from the store) and misses
(to be queued), and counts both in a service-level
:class:`~repro.obs.registry.MetricsRegistry`. Only successful records
are hits — a failed record means the compute never happened, so the
point must re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.campaign.spec import RunPoint
from repro.campaign.store import PointRecord
from repro.obs.registry import MetricsRegistry


@dataclass
class CachePartition:
    """One grid split into served-from-cache and must-compute points."""

    hits: List[RunPoint] = field(default_factory=list)
    misses: List[RunPoint] = field(default_factory=list)
    #: cached records for ``hits``, index-aligned with it
    hit_records: List[PointRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.hits) + len(self.misses)

    @property
    def all_hit(self) -> bool:
        return not self.misses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachePartition {len(self.hits)} hit / {len(self.misses)} miss>"


class ResultCache:
    """Cache-hit policy + metrics over a point-record store."""

    def __init__(
        self, store, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.store = store
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("service.cache.hits")
        self._misses = self.metrics.counter("service.cache.misses")

    def lookup(self, point: RunPoint) -> Optional[PointRecord]:
        """The cached record for one point, or ``None`` (counted)."""
        record = self.store.get(point.point_hash)
        if record is not None and record.ok:
            self._hits.inc()
            return record
        self._misses.inc()
        return None

    def partition(self, points: Sequence[RunPoint]) -> CachePartition:
        """Split a grid into cache hits and misses, counting both.

        Duplicate cells *within* the submission dedupe too: the first
        occurrence is a miss (or hit), later occurrences of the same
        hash are neither queued twice nor double-counted — they resolve
        to the same record when the job report assembles.
        """
        part = CachePartition()
        seen = set()
        for point in points:
            record = self.store.get(point.point_hash)
            if record is not None and record.ok:
                part.hits.append(point)
                part.hit_records.append(record)
                self._hits.inc()
            else:
                if point.point_hash not in seen:
                    part.misses.append(point)
                self._misses.inc()
            seen.add(point.point_hash)
        return part

    def stats(self) -> dict:
        """Lifetime hit/miss counters (JSON-safe)."""
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
        }
