"""§3.3.5 second-phase trade-off: broadcast vs update vs auto commit.

The paper: "If there are many communications among processes during the
last checkpoint interval, the broadcast approach is better … if only a
limited number of message exchanges, the update approach is better."

Measured here as second-phase messages per initiation under sparse and
dense workloads. The auto mode (counter + threshold) should track the
winner on both.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import run_point_to_point
from repro.checkpointing.mutable import MutableCheckpointProtocol

MODES = ["broadcast", "update", "auto"]
#: sparse: few dependencies per initiation; dense: everybody involved
WORKLOADS = {"sparse": 400.0, "dense": 20.0}


def second_phase_messages(result) -> float:
    """Commit unicasts + broadcast fan-out per initiation."""
    n_init = max(result.n_initiations, 1)
    unicast = result.counters.get("system_messages_commit", 0.0)
    broadcast_fanout = result.counters.get("broadcasts", 0.0) * (
        result.n_processes - 1
    )
    return (unicast + broadcast_fanout) / n_init


@pytest.mark.parametrize("density", sorted(WORKLOADS))
@pytest.mark.parametrize("mode", MODES)
def test_commit_mode(benchmark, mode, density):
    def run():
        return run_point_to_point(
            MutableCheckpointProtocol(commit_mode=mode),
            mean_send_interval=WORKLOADS[density],
            initiations=10,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    msgs = second_phase_messages(result)
    benchmark.extra_info.update(
        {"mode": mode, "density": density, "second_phase_msgs": round(msgs, 2)}
    )
    print(f"\ncommit-mode {mode:9s} {density:6s}: {msgs:6.2f} msgs/commit")


def test_commit_mode_tradeoff(benchmark):
    """The §3.3.5 claim, end to end."""

    def run_all():
        out = {}
        for density, interval in WORKLOADS.items():
            for mode in MODES:
                result = run_point_to_point(
                    MutableCheckpointProtocol(commit_mode=mode),
                    mean_send_interval=interval,
                    initiations=10,
                )
                out[(density, mode)] = second_phase_messages(result)
        return out

    msgs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for key in sorted(msgs):
        print(f"  {key}: {msgs[key]:.2f} msgs/commit")
    # sparse: update beats broadcast; dense: broadcast no worse than update
    assert msgs[("sparse", "update")] < msgs[("sparse", "broadcast")]
    assert msgs[("dense", "broadcast")] <= msgs[("dense", "update")] + 1e-9
    # auto tracks (or beats) the winner on both, within one message
    assert msgs[("sparse", "auto")] <= msgs[("sparse", "broadcast")] + 1.0
    assert msgs[("dense", "auto")] <= msgs[("dense", "update")] + 1.0
