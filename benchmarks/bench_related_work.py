"""The §6 related-work landscape on one workload.

Every coordinated approach the paper discusses, measured on identical
traffic: synchronization messages, blocked process-time, and stable
checkpoints per committed round. The mutable algorithm should sit on
the Pareto frontier: zero blocking *and* minimum checkpoints, at modest
message cost; every baseline gives one of those up.
"""

from __future__ import annotations

import pytest

from repro.checkpointing.chandy_lamport import ChandyLamportProtocol
from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.koo_toueg import KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.timer_based import TimerBasedProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

N = 16
SEED = 21
MEAN_INTERVAL = 200.0
ROUNDS = 8


def run_runner_protocol(protocol):
    config = SystemConfig(n_processes=N, seed=SEED, trace_messages=False)
    system = MobileSystem(config, protocol)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=ROUNDS, warmup_initiations=1)
    )
    result = runner.run(max_events=50_000_000)
    # counters and trace cover every committed round, warmup included
    return _row(system, result.counters, runner.committed, result.total_blocked_time)


def run_timer_based():
    protocol = TimerBasedProtocol(interval=400.0, max_skew=1.0, detection_time=2.0)
    config = SystemConfig(n_processes=N, seed=SEED, trace_messages=False)
    system = MobileSystem(config, protocol)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
    workload.start()
    protocol.start(rounds=ROUNDS - 1)
    system.sim.run(until=400.0 * ROUNDS)
    workload.stop()
    system.run_until_quiescent()
    blocked = sum(p.total_blocked_time for p in system.processes.values())
    return _row(system, system.monitor.counters(), ROUNDS - 1, blocked)


def _row(system, counters, rounds, blocked):
    rounds = max(rounds, 1)
    tentatives = system.sim.trace.count("tentative")
    return {
        "messages_per_round": round(
            (counters.get("system_messages", 0.0)
             + counters.get("broadcasts", 0.0) * (N - 1)) / rounds, 1
        ),
        "blocked_proc_s_per_round": round(blocked / rounds, 1),
        "checkpoints_per_round": round(tentatives / rounds, 1),
    }


def test_related_work_landscape(benchmark):
    def run_all():
        return {
            "timer-based": run_timer_based(),
            "chandy-lamport": run_runner_protocol(ChandyLamportProtocol()),
            "elnozahy": run_runner_protocol(ElnozahyProtocol()),
            "koo-toueg": run_runner_protocol(KooTouegProtocol()),
            "mutable": run_runner_protocol(MutableCheckpointProtocol()),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    header = f"{'algorithm':<16}{'msgs/round':>12}{'blocked s':>12}{'ckpts':>8}"
    print(header)
    for name, row in rows.items():
        print(
            f"{name:<16}{row['messages_per_round']:>12}"
            f"{row['blocked_proc_s_per_round']:>12}"
            f"{row['checkpoints_per_round']:>8}"
        )
    # §6's landscape:
    assert rows["timer-based"]["messages_per_round"] == 0          # clocks, no msgs
    assert rows["timer-based"]["blocked_proc_s_per_round"] > 0     # but blocks
    assert rows["chandy-lamport"]["messages_per_round"] >= N * (N - 1)  # O(N^2)
    assert rows["koo-toueg"]["blocked_proc_s_per_round"] > 0
    assert rows["mutable"]["blocked_proc_s_per_round"] == 0
    # min-process: fewer stable checkpoints than every all-process scheme
    for all_process in ("timer-based", "chandy-lamport", "elnozahy"):
        assert (
            rows["mutable"]["checkpoints_per_round"]
            <= rows[all_process]["checkpoints_per_round"] + 1e-9
        )
