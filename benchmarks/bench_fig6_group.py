"""Figure 6: checkpoints per initiation under group communication.

Four groups of four processes, leaders-only intergroup traffic at
1/1000 (left graph) and 1/10000 (right graph) of the intragroup rate.

Paper shape to reproduce: both tentative and redundant-mutable counts
are lower than the point-to-point environment at the same rate, and the
10000x-ratio counts are lower than the 1000x ones.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import describe, run_group, run_point_to_point
from repro.checkpointing.mutable import MutableCheckpointProtocol

RATES = [0.005, 0.01, 0.02, 0.05]
RATIOS = [1_000.0, 10_000.0]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("rate", RATES)
def test_fig6_group(benchmark, rate, ratio):
    def run():
        return run_group(
            MutableCheckpointProtocol(),
            mean_send_interval=1.0 / rate,
            intra_inter_ratio=ratio,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = describe(result)
    benchmark.extra_info.update({"rate": rate, "ratio": ratio, **row})
    print(f"\nFig6 rate={rate:6.3f} ratio=1/{int(ratio)}: {row}")
    assert row["tentative_mean"] <= 16.0


def test_fig6_shape_summary(benchmark):
    """Group counts < point-to-point counts; 10000x < 1000x."""

    def sweep():
        rows = {}
        for ratio in RATIOS:
            rows[ratio] = [
                describe(
                    run_group(
                        MutableCheckpointProtocol(),
                        mean_send_interval=1.0 / rate,
                        intra_inter_ratio=ratio,
                        initiations=12,
                    )
                )
                for rate in RATES
            ]
        rows["p2p"] = [
            describe(
                run_point_to_point(
                    MutableCheckpointProtocol(),
                    mean_send_interval=1.0 / rate,
                    initiations=12,
                )
            )
            for rate in RATES
        ]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFig6 sweep (tentative means):")
    for key in (1_000.0, 10_000.0, "p2p"):
        print(f"  {key}: {[r['tentative_mean'] for r in rows[key]]}")
    mean = lambda rs: sum(r["tentative_mean"] for r in rs) / len(rs)
    assert mean(rows[10_000.0]) <= mean(rows[1_000.0]) + 0.5
    assert mean(rows[1_000.0]) < mean(rows["p2p"])
