"""Figure 6: checkpoints per initiation under group communication.

Four groups of four processes, leaders-only intergroup traffic at
1/1000 (left graph) and 1/10000 (right graph) of the intragroup rate.

Paper shape to reproduce: both tentative and redundant-mutable counts
are lower than the point-to-point environment at the same rate, and the
10000x-ratio counts are lower than the 1000x ones.

Like Fig. 5, the sweep is a campaign: the group × ratio × rate grid
plus the point-to-point baseline run as one point list through
:class:`~repro.campaign.engine.CampaignEngine`.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import (
    describe,
    group_point,
    p2p_point,
    run_group,
    run_points,
)

RATES = [0.005, 0.01, 0.02, 0.05]
RATIOS = [1_000.0, 10_000.0]


def fig6_points(initiations=None, rates=RATES, ratios=RATIOS):
    """The Fig. 6 grid (ratio-major, rate-minor) as campaign points."""
    kwargs = {} if initiations is None else {"initiations": initiations}
    return [
        group_point(
            protocol="mutable",
            mean_send_interval=1.0 / rate,
            intra_inter_ratio=ratio,
            **kwargs,
        )
        for ratio in ratios
        for rate in rates
    ]


@pytest.mark.parametrize("ratio", RATIOS)
@pytest.mark.parametrize("rate", RATES)
def test_fig6_group(benchmark, rate, ratio):
    def run():
        return run_group(
            "mutable", mean_send_interval=1.0 / rate, intra_inter_ratio=ratio
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = describe(result)
    benchmark.extra_info.update({"rate": rate, "ratio": ratio, **row})
    print(f"\nFig6 rate={rate:6.3f} ratio=1/{int(ratio)}: {row}")
    assert row["tentative_mean"] <= 16.0


def test_fig6_shape_summary(benchmark):
    """Group counts < point-to-point counts; 10000x < 1000x."""

    def sweep():
        group_results = run_points(fig6_points(initiations=12), workers=2)
        p2p_results = run_points(
            [
                p2p_point(
                    protocol="mutable",
                    mean_send_interval=1.0 / rate,
                    initiations=12,
                )
                for rate in RATES
            ],
            workers=2,
        )
        rows = {}
        for i, ratio in enumerate(RATIOS):
            block = group_results[i * len(RATES) : (i + 1) * len(RATES)]
            rows[ratio] = [describe(r) for r in block]
        rows["p2p"] = [describe(r) for r in p2p_results]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFig6 sweep (tentative means):")
    for key in (1_000.0, 10_000.0, "p2p"):
        print(f"  {key}: {[r['tentative_mean'] for r in rows[key]]}")
    mean = lambda rs: sum(r["tentative_mean"] for r in rs) / len(rs)
    assert mean(rows[10_000.0]) <= mean(rows[1_000.0]) + 0.5
    assert mean(rows[1_000.0]) < mean(rows["p2p"])
