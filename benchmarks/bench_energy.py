"""Energy ablation: the §1/§5.3.2 motivation quantified.

* checkpoint data dominates wireless energy (why min-process matters);
* broadcast commits wake dozing hosts that update commits spare.
"""

from __future__ import annotations

import pytest

from repro.analysis.energy import DozeManager, EnergyModel
from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload


def run_with_energy(protocol, mean_interval=200.0, seed=5, initiations=8):
    system = MobileSystem(
        SystemConfig(n_processes=16, seed=seed, trace_messages=False), protocol
    )
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(mean_interval))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=initiations, warmup_initiations=1)
    )
    result = runner.run(max_events=20_000_000)
    return system, result, EnergyModel(system).totals()


def test_min_process_saves_wireless_energy(benchmark):
    """Fewer stable checkpoints -> fewer 512 KB transfers -> less tx
    energy than the all-process baseline on the same workload."""

    def run_both():
        _, mu_result, mu = run_with_energy(MutableCheckpointProtocol())
        _, ejz_result, ejz = run_with_energy(ElnozahyProtocol())
        return mu_result, mu, ejz_result, ejz

    mu_result, mu, ejz_result, ejz = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nwireless tx energy: mutable={mu['tx_mj']:.0f} mJ "
        f"(N_min={mu_result.tentative_summary().mean:.1f}) vs "
        f"elnozahy={ejz['tx_mj']:.0f} mJ (N=16)"
    )
    if mu_result.tentative_summary().mean < 15.5:
        assert mu["tx_mj"] < ejz["tx_mj"]


def test_checkpoint_data_dominates_message_energy(benchmark):
    """The §1 argument: stable-storage transfers, not control messages,
    are the wireless energy story."""

    def run():
        system, result, totals = run_with_energy(MutableCheckpointProtocol())
        ckpt_bytes = sum(mh.background_bytes for mh in system.mhs)
        msg_bytes = sum(
            mh.uplink.bytes_sent for mh in system.mhs if mh.uplink is not None
        )
        return ckpt_bytes, msg_bytes

    ckpt_bytes, msg_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncheckpoint bytes={ckpt_bytes:,} vs message bytes={msg_bytes:,}")
    assert ckpt_bytes > 10 * msg_bytes


def test_update_commit_spares_dozing_hosts(benchmark):
    """§5.3.2's broadcast-vs-update energy argument with real dozing."""

    def run(mode):
        system = MobileSystem(
            SystemConfig(n_processes=16, seed=3, trace_messages=False),
            MutableCheckpointProtocol(commit_mode=mode),
        )
        # a sparse clique: only 0..3 talk, the rest doze
        for src, dst in [(1, 0), (2, 0), (3, 1)]:
            system.processes[src].send_computation(dst)
        system.sim.run_until_idle()
        manager = DozeManager(system, idle_timeout=5.0, poll_interval=1.0)
        manager.start()
        system.sim.run(until=30.0)
        assert system.protocol.processes[0].initiate()
        system.sim.run(until=120.0)
        manager.stop()
        system.run_until_quiescent()
        return sum(mh.wakeups for mh in system.mhs)

    def run_both():
        return run("broadcast"), run("update")

    broadcast_wakeups, update_wakeups = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    print(f"\nwakeups: broadcast={broadcast_wakeups} update={update_wakeups}")
    assert update_wakeups < broadcast_wakeups
