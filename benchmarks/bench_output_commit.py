"""Output-commit delay (the Table 1 column, measured end to end).

The paper: ours ≈ N_min·T_ch, EJZ ≈ N·T_ch — fewer processes must reach
stable storage before the outside world sees the output.
"""

from __future__ import annotations

import pytest

from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, SystemConfig
from repro.core.output_commit import OutputCommitManager
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload


def measure_delays(protocol, seed=5, outputs=4, mean_interval=200.0):
    system = MobileSystem(
        SystemConfig(n_processes=16, seed=seed, trace_messages=False), protocol
    )
    manager = OutputCommitManager(system)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(mean_interval))
    workload.start()
    system.sim.run(until=400.0)
    for i in range(outputs):
        manager.request_output(i % system.config.n_processes, payload=i)
        system.sim.run(until=system.sim.now + 300.0)
    workload.stop()
    system.run_until_quiescent()
    return manager.delay_summary()


def test_output_commit_mutable_vs_elnozahy(benchmark):
    def run():
        mutable = measure_delays(MutableCheckpointProtocol())
        ejz = measure_delays(ElnozahyProtocol())
        return mutable, ejz

    mutable, ejz = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\noutput commit delay: mutable={mutable.mean:.2f}s (n={mutable.n}) "
          f"vs elnozahy={ejz.mean:.2f}s (n={ejz.n})")
    benchmark.extra_info.update(
        {"mutable_s": round(mutable.mean, 2), "elnozahy_s": round(ejz.mean, 2)}
    )
    assert mutable.n >= 3 and ejz.n >= 3
    # min-process releases output faster than all-process (N_min < N)
    assert mutable.mean < ejz.mean


def test_output_commit_scales_with_n_min(benchmark):
    """Sparser communication -> smaller N_min -> faster output commit."""

    def run():
        sparse = measure_delays(MutableCheckpointProtocol(), mean_interval=500.0)
        dense = measure_delays(MutableCheckpointProtocol(), mean_interval=50.0)
        return sparse, dense

    sparse, dense = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\noutput commit: sparse={sparse.mean:.2f}s dense={dense.mean:.2f}s")
    assert sparse.mean < dense.mean
