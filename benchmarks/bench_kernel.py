"""Kernel event-dispatch benchmark with a committed regression baseline.

Runs the standing suite from :mod:`repro.obs.bench` (trace-on vs
trace-off pairs of full mutable-checkpoint runs) and compares
*hardware-normalized* rates against ``BENCH_kernel.json`` at the repo
root.

Usage::

    python benchmarks/bench_kernel.py              # run + compare
    python benchmarks/bench_kernel.py --write      # (re)write the baseline
    python benchmarks/bench_kernel.py --check      # exit 1 on >25% regression
    python benchmarks/bench_kernel.py --ladder     # add the population ladder
    python benchmarks/bench_kernel.py --trend      # per-case history trends

``--ladder`` appends the fixed-budget population rungs
(``mutable_{256,1024,4096}p_trace_off`` plus the sampler-on
``mutable_1024p_timeseries_1s`` twin and the sharded-kernel trio
``mutable_1024p_mss8`` / ``mutable_1024p_shards{2,4}``; the default
suite's ``mutable_32p_trace_off`` is the 32p rung) and prints the
1024p-vs-32p per-event ratio — the scaling acceptance number, which
must stay under 4x — the timeseries sampling overhead (acceptance:
<= 3%), and the sharded-kernel throughput ratio against its 8-cell
sequential control (single-core inline backend: a window-overhead
number, expected <= 1x; see docs/DESIGN.md).

Every run (except ``--trend``) also appends a machine-normalized,
git-sha-stamped record to ``BENCH_history.jsonl`` at the repo root;
``--trend`` reads that file back and prints one normalized-rate
trajectory per case.

``--check`` is what CI's perf-smoke job runs. The comparison uses
normalized rates (events/s divided by a same-machine calibration-loop
rate), so the committed baseline is meaningful on different hardware;
see docs/API.md for how to read the file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.bench import (  # noqa: E402
    DEFAULT_THRESHOLD,
    append_history,
    compare,
    default_cases,
    format_trends,
    ladder_cases,
    load_baseline,
    load_history,
    run_bench_suite,
)

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_kernel.json"
)
HISTORY_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_history.jsonl"
)


def _git_sha() -> str:
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="write the result as the new baseline")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on regression vs the baseline")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative normalized-rate drop that fails "
                        "--check (default 0.25)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per case; best rate is kept")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline JSON path")
    parser.add_argument("--ladder", action="store_true",
                        help="append the 256p/1024p/4096p population rungs")
    parser.add_argument("--history", default=HISTORY_PATH,
                        help="bench history JSONL path")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append this run to the history file")
    parser.add_argument("--trend", action="store_true",
                        help="print per-case trajectories from the history "
                        "file and exit (runs nothing)")
    args = parser.parse_args(argv)

    if args.trend:
        history = load_history(args.history)
        if not history:
            print(f"no history at {args.history}; run the bench to start one")
            return 1
        print(f"{len(history)} runs in {args.history} "
              f"(oldest left, newest right):")
        print(format_trends(history))
        return 0

    cases = default_cases()
    if args.ladder:
        cases += ladder_cases()
    report = run_bench_suite(cases=cases, repeats=args.repeats)
    for row in report["results"]:
        print(
            f"{row['name']:28s} {row['events']:8d} events  "
            f"{row['rate']:10.0f} ev/s  normalized {row['normalized_rate']:.5f}"
        )
    by_name = {r["name"]: r for r in report["results"]}
    off = by_name.get("mutable_16p_trace_off")
    on = by_name.get("mutable_16p_trace_on")
    if off and on and on["rate"] > 0:
        print(f"trace-off speedup over trace-on: {off['rate'] / on['rate']:.2f}x")
    small = by_name.get("mutable_32p_trace_off")
    large = by_name.get("mutable_1024p_trace_off")
    if small and large and large["rate"] > 0:
        print(
            "1024p per-event cost vs 32p: "
            f"{small['rate'] / large['rate']:.2f}x (acceptance: < 4x)"
        )
    sampled = by_name.get("mutable_1024p_timeseries_1s")
    if large and sampled and large["rate"] > 0:
        overhead = 1.0 - sampled["rate"] / large["rate"]
        print(
            "1024p timeseries sampling overhead: "
            f"{overhead * 100:.1f}% (acceptance: <= 3%)"
        )
    control = by_name.get("mutable_1024p_mss8")
    for n_shards in (2, 4):
        sharded = by_name.get(f"mutable_1024p_shards{n_shards}")
        if control and sharded and control["rate"] > 0:
            print(
                f"1024p shards={n_shards} throughput vs sequential 8-cell: "
                f"{sharded['rate'] / control['rate']:.2f}x "
                "(inline single-core backend — window overhead, "
                "not parallel speedup; see docs/DESIGN.md)"
            )

    if not args.no_history:
        append_history(args.history, report, git_sha=_git_sha())
        print(f"history appended to {args.history}")

    if args.write:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; run with --write to create one")
        return 1 if args.check else 0
    warnings: list = []
    failures = compare(baseline, report, threshold=args.threshold,
                       warnings=warnings)
    for line in warnings:
        print(f"WARNING: {line}")
    if failures:
        for line in failures:
            print(f"REGRESSION: {line}")
        return 1 if args.check else 0
    print(f"no regression vs baseline (threshold {args.threshold * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
