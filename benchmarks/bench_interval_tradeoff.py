"""Checkpoint-interval sensitivity: overhead vs lost work.

The paper fixes the interval at 900 s without discussion; this ablation
shows the trade-off that choice sits on:

* short intervals  -> more checkpointing traffic (512 KB transfers per
  initiation) but little computation lost at a failure;
* long intervals   -> cheap steady state but a failure rolls back more
  delivered messages.

Measured as (stable bytes shipped per simulated hour, messages lost at a
failure injected at a fixed time).
"""

from __future__ import annotations

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.recovery import RecoveryManager
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

INTERVALS = [120.0, 450.0, 1800.0]
HORIZON = 3600.0
FAIL_AT = 3300.0


def run_interval(interval: float, seed: int = 5):
    config = SystemConfig(n_processes=8, seed=seed, checkpoint_interval=interval)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(10.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=10_000, time_limit=HORIZON)
    )
    runner.run(max_events=50_000_000)
    workload.stop()
    system.run_until_quiescent()
    # overhead: checkpoint bytes shipped per simulated hour
    ckpt_bytes = sum(mh.background_bytes for mh in system.mhs)
    # lost work: messages undone by a rollback at the end of the run
    report = RecoveryManager(system).rollback()
    return {
        "interval_s": interval,
        "ckpt_mb_per_hour": round(ckpt_bytes / 1e6 * 3600.0 / HORIZON, 1),
        "lost_messages": report.lost_messages,
        "commits": runner.committed,
    }


@pytest.mark.parametrize("interval", INTERVALS)
def test_interval_point(benchmark, interval):
    row = benchmark.pedantic(lambda: run_interval(interval), rounds=1, iterations=1)
    benchmark.extra_info.update(row)
    print(f"\ninterval={interval:6.0f}s: {row}")


def test_interval_tradeoff_shape(benchmark):
    """Overhead decreases and lost work increases with the interval."""

    def run_all():
        return [run_interval(interval) for interval in INTERVALS]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for row in rows:
        print(f"  {row}")
    overhead = [r["ckpt_mb_per_hour"] for r in rows]
    lost = [r["lost_messages"] for r in rows]
    assert overhead[0] > overhead[-1], "short intervals must cost more bandwidth"
    assert lost[0] < lost[-1], "long intervals must lose more work"
