"""Figure 5: checkpoints per initiation vs message sending rate
(point-to-point communication, N = 16).

Paper shape to reproduce:

* tentative checkpoints per initiation grow with the send rate and
  saturate at N;
* redundant mutable checkpoints rise and then fall, always a small
  fraction (< 4 %) of the tentative count.

The sweep runs as a campaign: each rate is one
:class:`~repro.campaign.spec.RunPoint` and the whole figure executes
through :class:`~repro.campaign.engine.CampaignEngine` — the same
substrate as ``repro-sim campaign --preset fig5`` — so the printed rows
line up with EXPERIMENTS.md and with the CLI output.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import describe, p2p_point, run_point_to_point, run_points

#: the swept x axis: messages per second per process
RATES = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1]


def fig5_points(initiations=None, rates=RATES):
    """The Fig. 5 sweep as campaign run points, one per rate."""
    kwargs = {} if initiations is None else {"initiations": initiations}
    return [
        p2p_point(protocol="mutable", mean_send_interval=1.0 / rate, **kwargs)
        for rate in rates
    ]


@pytest.mark.parametrize("rate", RATES)
def test_fig5_point_to_point(benchmark, rate):
    mean_interval = 1.0 / rate

    def run():
        return run_point_to_point("mutable", mean_send_interval=mean_interval)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = describe(result)
    benchmark.extra_info.update({"rate": rate, **row})
    print(f"\nFig5 rate={rate:6.3f} msg/s: {row}")
    # shape guards (paper): tentative bounded by N, redundant far below
    assert row["tentative_mean"] <= 16.0
    assert row["redundant_ratio"] <= 0.04 + 1e-9


def test_fig5_shape_summary(benchmark):
    """One campaign over the whole sweep asserting the paper's shape:
    tentative count is (weakly) increasing in the send rate."""

    def sweep():
        results = run_points(fig5_points(initiations=12), workers=2)
        return [(rate, describe(r)) for rate, r in zip(RATES, results)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFig5 sweep:")
    for rate, row in rows:
        print(f"  rate={rate:6.3f}  {row}")
    tentative = [row["tentative_mean"] for _, row in rows]
    # weakly increasing up to saturation (tolerate sampling noise)
    assert tentative[-1] >= tentative[0]
    assert tentative[-1] >= 15.0  # saturates near N
    assert tentative[0] <= 8.0    # sparse dependencies at low rates
