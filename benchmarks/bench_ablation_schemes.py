"""Ablation: the §3.1.1 strawman schemes vs the full algorithm.

Measures stable checkpoints per computation message over a fixed time
horizon — the avalanche metric. Expected ordering (the motivation for
mutable checkpoints):

    basic csn scheme  >>  revised scheme  >>  mutable algorithm

The basic scheme's count can exceed one checkpoint per message (the
"chain may never end"); the mutable algorithm's stays near the
coordination-only minimum.
"""

from __future__ import annotations

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.simple_schemes import BasicCsnProtocol, RevisedCsnProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

PROTOCOLS = {
    "csn-basic": BasicCsnProtocol,
    "csn-revised": RevisedCsnProtocol,
    "mutable": MutableCheckpointProtocol,
}

HORIZON = 4000.0
MEAN_INTERVAL = 20.0


def run_scheme(protocol_cls):
    config = SystemConfig(n_processes=8, seed=3, checkpoint_interval=900.0)
    system = MobileSystem(config, protocol_cls())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=10_000, time_limit=HORIZON)
    )
    try:
        runner.run(max_events=20_000_000)
    except Exception:
        pass  # time_limit path; metrics below read the trace directly
    comp = system.sim.trace.count("comp_recv")
    stable = system.sim.trace.count("tentative")
    return {
        "comp_messages": comp,
        "stable_checkpoints": stable,
        "checkpoints_per_message": round(stable / max(comp, 1), 4),
    }


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_ablation_scheme(benchmark, name):
    row = benchmark.pedantic(lambda: run_scheme(PROTOCOLS[name]), rounds=1, iterations=1)
    benchmark.extra_info.update(row)
    print(f"\nAblation {name}: {row}")


def test_ablation_ordering(benchmark):
    """basic >> revised >> mutable in checkpoints per message."""

    def run_all():
        return {name: run_scheme(cls) for name, cls in PROTOCOLS.items()}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, row in rows.items():
        print(f"  {name:12s} {row}")
    basic = rows["csn-basic"]["checkpoints_per_message"]
    revised = rows["csn-revised"]["checkpoints_per_message"]
    mutable = rows["mutable"]["checkpoints_per_message"]
    assert basic > revised > mutable
    assert basic > 10 * mutable  # the avalanche is not subtle
