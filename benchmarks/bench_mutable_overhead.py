"""The "negligible overhead" claim (§5.2/§5.3.1) and model ablations.

* mutable vs tentative checkpoint cost: the paper's 2.5 ms memory copy
  against the ~2.1 s wireless transfer — a factor ~1000;
* accounting ablation: strict commit-after-transfer vs precopy
  (reply-after-memory-copy) checkpointing durations;
* medium ablation: shared-cell bulk serialization (the 32 s worst case)
  vs per-MH concurrent transfers.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import run_point_to_point
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.net.params import NetworkParams


def test_mutable_vs_tentative_cost_ratio(benchmark):
    """The paper's arithmetic: T_data / mutable_save ~ 1000x."""
    params = NetworkParams()
    tentative_cost = 512 * 1024 * 8 / params.wireless_bandwidth_bps

    def compute():
        return tentative_cost / params.mutable_save_time

    ratio = benchmark(compute)
    print(f"\ntentative/mutable cost ratio: {ratio:.0f}x")
    assert ratio > 500


def test_checkpointing_time_strict_vs_precopy(benchmark):
    """Strict mode: T_ch includes serialized transfers (paper's <= 32 s);
    precopy mode: T_ch is message-delay scale."""

    def run_both():
        strict = run_point_to_point(
            MutableCheckpointProtocol(reply_after_transfer=True),
            mean_send_interval=50.0,
            initiations=8,
        )
        precopy = run_point_to_point(
            MutableCheckpointProtocol(reply_after_transfer=False),
            mean_send_interval=50.0,
            initiations=8,
        )
        return strict.duration_summary().mean, precopy.duration_summary().mean

    strict_dur, precopy_dur = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nT_ch strict={strict_dur:.3f}s precopy={precopy_dur*1000:.1f}ms")
    benchmark.extra_info.update(
        {"strict_s": round(strict_dur, 3), "precopy_s": round(precopy_dur, 5)}
    )
    assert strict_dur <= 2.2 * 16 + 1.0        # paper's 2s * N bound
    assert strict_dur > 100 * precopy_dur      # transfers dominate
    assert precopy_dur < 0.1


def test_shared_medium_vs_concurrent_transfers(benchmark):
    """The 32 s figure comes from the shared 2 Mbps cell airtime."""

    def run_both():
        shared = run_point_to_point(
            MutableCheckpointProtocol(),
            mean_send_interval=30.0,
            initiations=8,
        )
        concurrent = run_point_to_point(
            MutableCheckpointProtocol(),
            mean_send_interval=30.0,
            initiations=8,
            network=NetworkParams(shared_cell_medium=False),
        )
        return shared.duration_summary().mean, concurrent.duration_summary().mean

    shared_dur, concurrent_dur = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nT_ch shared-medium={shared_dur:.2f}s concurrent={concurrent_dur:.2f}s")
    assert shared_dur > concurrent_dur
    assert concurrent_dur < 4.0   # one transfer time + messages


def test_redundant_mutable_overhead_share(benchmark):
    """Total time spent on redundant mutable checkpoints is a vanishing
    share of the checkpointing cost (the §5.3.1 output-commit claim)."""

    def run():
        result = run_point_to_point(
            MutableCheckpointProtocol(), mean_send_interval=50.0, initiations=20
        )
        params = NetworkParams()
        redundant = sum(s.redundant_mutables for s in result.initiations)
        tentatives = sum(s.tentative_count for s in result.initiations)
        mutable_time = redundant * params.mutable_save_time
        tentative_time = tentatives * 512 * 1024 * 8 / params.wireless_bandwidth_bps
        return mutable_time, tentative_time

    mutable_time, tentative_time = benchmark.pedantic(run, rounds=1, iterations=1)
    share = mutable_time / max(tentative_time, 1e-12)
    print(f"\nredundant-mutable time share of checkpointing cost: {share:.2e}")
    assert share < 0.01
