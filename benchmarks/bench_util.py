"""Shared helpers for the benchmark suite, built on ``repro.campaign``.

Each bench regenerates one of the paper's tables or figures on a scale
that runs in seconds. Absolute numbers differ from the paper's 1999
testbed; the *shape* assertions (who wins, monotonicity, crossovers) are
checked by the test suite — benches print the rows so the results can be
compared with the paper side by side (see EXPERIMENTS.md).

All execution flows through the campaign engine's point runtime: a
bench data point is a :class:`~repro.campaign.spec.RunPoint`, and the
sweep benches (Figs. 5/6) run whole :class:`CampaignSpec` grids through
:class:`CampaignEngine`. ``run_point_to_point``/``run_group`` remain
for benches that vary protocol *constructor arguments*: they accept a
protocol instance and inject it into the same point runtime.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.campaign.engine import CampaignEngine, run_point
from repro.campaign.spec import CampaignSpec, RunPoint
from repro.checkpointing.protocol import CheckpointProtocol
from repro.core.results import RunResult

#: initiations measured per data point (paper: "a large number of
#: samples"; enough here for stable means at bench runtimes)
DEFAULT_INITIATIONS = 22
DEFAULT_WARMUP = 2

#: runaway guard shared by every bench point
BENCH_MAX_EVENTS = 50_000_000


def _resolve_protocol(
    protocol: Union[str, CheckpointProtocol],
) -> Tuple[str, Optional[CheckpointProtocol]]:
    """A registry name plus an optional pre-built instance to inject."""
    if isinstance(protocol, str):
        return protocol, None
    return protocol.name, protocol


def p2p_point(
    protocol: str = "mutable",
    mean_send_interval: float = 100.0,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
    trace_messages: bool = False,
    **config_kwargs,
) -> RunPoint:
    """One Fig. 5-style data point as a campaign run point."""
    return RunPoint(
        protocol=protocol,
        workload="p2p",
        workload_params={"mean_send_interval": mean_send_interval},
        system_params={
            "n_processes": n_processes,
            "trace_messages": trace_messages,
            **config_kwargs,
        },
        run_params={
            "max_initiations": initiations,
            "warmup_initiations": DEFAULT_WARMUP,
        },
        seed=seed,
        max_events=BENCH_MAX_EVENTS,
    )


def group_point(
    protocol: str = "mutable",
    mean_send_interval: float = 100.0,
    intra_inter_ratio: float = 1000.0,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
) -> RunPoint:
    """One Fig. 6-style data point as a campaign run point."""
    return RunPoint(
        protocol=protocol,
        workload="group",
        workload_params={
            "mean_send_interval": mean_send_interval,
            "n_groups": 4,
            "intra_inter_ratio": intra_inter_ratio,
        },
        system_params={"n_processes": n_processes, "trace_messages": False},
        run_params={
            "max_initiations": initiations,
            "warmup_initiations": DEFAULT_WARMUP,
        },
        seed=seed,
        max_events=BENCH_MAX_EVENTS,
    )


def run_points(
    points: List[RunPoint], workers: int = 1
) -> List[RunResult]:
    """Run bench points through the campaign engine, in point order."""
    report = CampaignEngine(points, workers=workers).run()
    for record in report.failed:
        raise RuntimeError(
            f"bench point {record.point_hash} failed: {record.error}"
        )
    return report.results()


def run_point_to_point(
    protocol: Union[str, CheckpointProtocol],
    mean_send_interval: float,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
    trace_messages: bool = False,
    **config_kwargs,
) -> RunResult:
    """One Fig. 5-style data point.

    ``protocol`` may be a registry name (preferred; the point is then
    fully declarative) or a pre-built instance for variants that only
    exist as constructor arguments.
    """
    name, instance = _resolve_protocol(protocol)
    point = p2p_point(
        protocol=name,
        mean_send_interval=mean_send_interval,
        seed=seed,
        n_processes=n_processes,
        initiations=initiations,
        trace_messages=trace_messages,
        **config_kwargs,
    )
    return run_point(point, protocol=instance)


def run_group(
    protocol: Union[str, CheckpointProtocol],
    mean_send_interval: float,
    intra_inter_ratio: float,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
) -> RunResult:
    """One Fig. 6-style data point (see ``run_point_to_point``)."""
    name, instance = _resolve_protocol(protocol)
    point = group_point(
        protocol=name,
        mean_send_interval=mean_send_interval,
        intra_inter_ratio=intra_inter_ratio,
        seed=seed,
        n_processes=n_processes,
        initiations=initiations,
    )
    return run_point(point, protocol=instance)


def describe(result: RunResult) -> Dict[str, float]:
    """The quantities the paper plots, as one flat row."""
    return {
        "tentative_mean": round(result.tentative_summary().mean, 3),
        "redundant_mutable_mean": round(result.redundant_mutable_summary().mean, 4),
        "redundant_ratio": round(result.redundant_ratio, 4),
        "duration_s": round(result.duration_summary().mean, 3),
        "initiations": result.n_initiations,
    }
