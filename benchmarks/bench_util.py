"""Shared helpers for the benchmark suite.

Each bench regenerates one of the paper's tables or figures on a scale
that runs in seconds. Absolute numbers differ from the paper's 1999
testbed; the *shape* assertions (who wins, monotonicity, crossovers) are
checked by the test suite — benches print the rows so the results can be
compared with the paper side by side (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.checkpointing.protocol import CheckpointProtocol
from repro.core.config import (
    GroupWorkloadConfig,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.results import RunResult
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.group import GroupWorkload
from repro.workload.point_to_point import PointToPointWorkload

#: initiations measured per data point (paper: "a large number of
#: samples"; enough here for stable means at bench runtimes)
DEFAULT_INITIATIONS = 22
DEFAULT_WARMUP = 2


def run_point_to_point(
    protocol: CheckpointProtocol,
    mean_send_interval: float,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
    trace_messages: bool = False,
    **config_kwargs,
) -> RunResult:
    """One Fig. 5-style data point."""
    config = SystemConfig(
        n_processes=n_processes,
        seed=seed,
        trace_messages=trace_messages,
        **config_kwargs,
    )
    system = MobileSystem(config, protocol)
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval)
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=initiations, warmup_initiations=DEFAULT_WARMUP),
    )
    return runner.run(max_events=50_000_000)


def run_group(
    protocol: CheckpointProtocol,
    mean_send_interval: float,
    intra_inter_ratio: float,
    seed: int = 11,
    n_processes: int = 16,
    initiations: int = DEFAULT_INITIATIONS,
) -> RunResult:
    """One Fig. 6-style data point."""
    config = SystemConfig(n_processes=n_processes, seed=seed, trace_messages=False)
    system = MobileSystem(config, protocol)
    workload = GroupWorkload(
        system,
        GroupWorkloadConfig(
            mean_send_interval=mean_send_interval,
            n_groups=4,
            intra_inter_ratio=intra_inter_ratio,
        ),
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=initiations, warmup_initiations=DEFAULT_WARMUP),
    )
    return runner.run(max_events=50_000_000)


def describe(result: RunResult) -> Dict[str, float]:
    """The quantities the paper plots, as one flat row."""
    return {
        "tentative_mean": round(result.tentative_summary().mean, 3),
        "redundant_mutable_mean": round(result.redundant_mutable_summary().mean, 4),
        "redundant_ratio": round(result.redundant_ratio, 4),
        "duration_s": round(result.duration_summary().mean, 3),
        "initiations": result.n_initiations,
    }
