"""Table 1: Koo-Toueg vs Elnozahy et al. vs the mutable algorithm.

Prints the analytic rows (the paper's closed forms evaluated with the
measured N_min) next to the rows measured from identical simulation
runs, and asserts the qualitative relationships:

* checkpoints: KT = mutable = N_min; EJZ = N;
* blocking: only KT > 0;
* messages: mutable < KT;
* distribution: EJZ centralized.
"""

from __future__ import annotations

import pytest

from benchmarks.bench_util import run_point_to_point
from repro.analysis.comparison import (
    CostParameters,
    analytic_table,
    format_table,
    measured_row,
)
from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.koo_toueg import KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol

MEAN_INTERVAL = 60.0  # moderate rate: N_min strictly between 1 and N
SEED = 21

PROTOCOLS = {
    "koo-toueg": KooTouegProtocol,
    "elnozahy": ElnozahyProtocol,
    "mutable": MutableCheckpointProtocol,
}


@pytest.mark.parametrize("name", sorted(PROTOCOLS))
def test_table1_protocol(benchmark, name):
    """Measured Table 1 row for one protocol."""

    def run():
        return run_point_to_point(
            PROTOCOLS[name](), mean_send_interval=MEAN_INTERVAL, seed=SEED
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    row = measured_row(result)
    benchmark.extra_info.update(
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in row.as_dict().items()}
    )
    print(f"\nTable1 {name}: {row.as_dict()}")


def test_table1_full_comparison(benchmark):
    """All three protocols on the same workload + the analytic table."""

    def run_all():
        return {
            name: measured_row(
                run_point_to_point(
                    cls(), mean_send_interval=MEAN_INTERVAL, seed=SEED, initiations=14
                )
            )
            for name, cls in PROTOCOLS.items()
        }

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    kt, ejz, mu = measured["koo-toueg"], measured["elnozahy"], measured["mutable"]
    params = CostParameters(n=16, n_min=mu.checkpoints, n_dep=4.0)
    print()
    print(format_table(analytic_table(params), "Table 1 (analytic, measured N_min)"))
    print(format_table([kt, ejz, mu], "Table 1 (measured)"))

    # The paper's qualitative claims (exact N_min equality requires
    # identical message histories; blocking perturbs the trajectory, so
    # the min-process counts are compared with tolerance):
    assert kt.checkpoints == pytest.approx(mu.checkpoints, rel=0.25)
    assert ejz.checkpoints == 16.0                                  # all N
    assert kt.blocking_time > 0
    assert ejz.blocking_time == 0 and mu.blocking_time == 0
    assert mu.messages < kt.messages                                # O(N) vs O(N^2)
    assert mu.distributed and kt.distributed and not ejz.distributed
    # output commit: ours ~ N_min * T_ch <= EJZ's N * T_ch
    assert mu.output_commit_delay <= ejz.output_commit_delay + 1e-6
