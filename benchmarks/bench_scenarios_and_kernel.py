"""Micro-benchmarks: figure scenarios, the DES kernel, and channels.

These are classic pytest-benchmark targets (fast, repeated) that keep an
eye on the engine's constant factors so the macro benches stay cheap.
"""

from __future__ import annotations

import pytest

from repro.net.channel import FifoChannel
from repro.net.message import SystemMessage
from repro.scenarios.figures import figure1, figure2_with_mutable, figure3, figure4
from repro.sim.kernel import Simulator


@pytest.mark.parametrize(
    "figure",
    [figure1, figure2_with_mutable, figure3, figure4],
    ids=["fig1", "fig2-mutable", "fig3", "fig4"],
)
def test_figure_scenarios(benchmark, figure):
    """Deterministic scenario reproduction cost (and correctness)."""
    result = benchmark(figure)
    expected_consistent = figure is not figure1
    assert result.consistent is expected_consistent


def test_kernel_event_throughput(benchmark):
    """Events per second through the heapq scheduler."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run_until_idle()
        return count

    assert benchmark(run) == 10_000


def test_channel_throughput(benchmark):
    """Message sends through a FIFO channel."""

    def run():
        sim = Simulator()
        delivered = []
        channel = FifoChannel(sim, 2e6, 0.0, delivered.append)
        for _ in range(2_000):
            channel.send(SystemMessage(src_pid=0, dst_pid=1))
        sim.run_until_idle()
        return len(delivered)

    assert benchmark(run) == 2_000


def test_end_to_end_small_simulation(benchmark):
    """A complete 8-process experiment as one benchmark unit."""
    from benchmarks.bench_util import run_point_to_point
    from repro.checkpointing.mutable import MutableCheckpointProtocol

    def run():
        return run_point_to_point(
            MutableCheckpointProtocol(),
            mean_send_interval=60.0,
            n_processes=8,
            initiations=6,
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.n_initiations == 4
