"""§6 related-work study: uncoordinated checkpointing and the domino effect.

Three regimes on the same workload:

* **periodic-only uncoordinated** — checkpoints on a timer, nothing
  else: the maximal-consistent-line search must cascade (the domino
  effect that motivated coordinated checkpointing);
* **Acharya-Badrinath** — the receive-after-send rule keeps rollback
  shallow on realistic workloads (senders checkpoint regularly), at the
  §6 cost of a checkpoint per ~two messages;
* **mutable-checkpoint algorithm** — the newest permanents *are* the
  recovery line (zero search), with an order of magnitude fewer stable
  checkpoints.
"""

from __future__ import annotations

import pytest

from repro.analysis.recovery_line import checkpoint_histories, maximal_consistent_line
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.uncoordinated import UncoordinatedProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

HORIZON = 900.0
MEAN_INTERVAL = 10.0


def run_regime(protocol, interval=120.0, seed=13):
    config = SystemConfig(n_processes=8, seed=seed, checkpoint_interval=interval)
    system = MobileSystem(config, protocol)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=10_000, time_limit=HORIZON)
    )
    runner.run(max_events=20_000_000)
    workload.stop()
    system.run_until_quiescent()
    histories = checkpoint_histories(system.all_stable_storages(), system.processes)
    search = maximal_consistent_line(histories)
    stored = sum(len(records) for records in histories.values())
    return {
        "stable_checkpoints": stored,
        "max_rollback_depth": max(search.rollback_depth.values()),
        "total_rollback_depth": search.total_rollback_depth,
        "domino": search.domino,
    }


def test_periodic_uncoordinated_suffers_domino(benchmark):
    def run():
        # several seeds: the cascade depends on message luck
        rows = [
            run_regime(UncoordinatedProtocol(ab_rule=False), seed=seed)
            for seed in (13, 17, 19, 23)
        ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    worst = max(r["max_rollback_depth"] for r in rows)
    print(f"\nperiodic-only: per-seed max rollback depths = "
          f"{[r['max_rollback_depth'] for r in rows]}")
    assert worst >= 2  # cascading rollback observed


def test_ab_rule_keeps_rollback_shallow(benchmark):
    """On free-running workloads (everyone sends and receives, so
    senders checkpoint frequently) the AB rule keeps the search shallow.
    The absolute one-checkpoint folklore bound is false in general —
    property testing found a sends-only counterexample — so the
    assertion here is the realistic-workload one."""

    def run():
        return [
            run_regime(UncoordinatedProtocol(ab_rule=True), seed=seed)
            for seed in (13, 17, 19)
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAB rule: max rollback depths = "
          f"{[r['max_rollback_depth'] for r in rows]}")
    for row in rows:
        assert row["max_rollback_depth"] <= 1
        assert not row["domino"]


def test_coordinated_needs_no_search(benchmark):
    def run():
        config = SystemConfig(n_processes=8, seed=13)
        system = MobileSystem(config, MutableCheckpointProtocol())
        workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
        runner = ExperimentRunner(
            system, workload, RunConfig(max_initiations=6, warmup_initiations=1)
        )
        runner.run(max_events=20_000_000)
        histories = checkpoint_histories(
            system.all_stable_storages(), system.processes
        )
        return maximal_consistent_line(histories)

    search = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nmutable: total rollback depth = {search.total_rollback_depth}")
    assert search.total_rollback_depth == 0


def test_storage_cost_ordering(benchmark):
    """§6: uncoordinated approaches keep far more stable checkpoints."""

    def run():
        ab = run_regime(UncoordinatedProtocol(ab_rule=True), seed=13)
        config = SystemConfig(n_processes=8, seed=13)
        system = MobileSystem(config, MutableCheckpointProtocol())
        workload = PointToPointWorkload(system, PointToPointWorkloadConfig(MEAN_INTERVAL))
        ExperimentRunner(
            system, workload, RunConfig(max_initiations=6, warmup_initiations=1)
        ).run(max_events=20_000_000)
        coordinated = sum(len(s) for s in system.all_stable_storages())
        return ab["stable_checkpoints"], coordinated

    ab_count, coordinated_count = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nstable checkpoints: AB={ab_count} vs mutable={coordinated_count}")
    assert ab_count > 5 * coordinated_count
