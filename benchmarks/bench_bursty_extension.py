"""Extension experiment: bursty traffic vs the paper's Poisson model.

Interactive mobile applications are bursty, not Poisson. At matched
average rates, bursts raise the probability that a tagged computation
message races a checkpoint request — the situation that forces mutable
checkpoints — so the redundant-mutable count comes alive while the
tentative count stays in the same band. The paper's "<4 % of tentative"
bound should still hold: the extension probes how much headroom it has.
"""

from __future__ import annotations

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import (
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.bursty import BurstyWorkload, BurstyWorkloadConfig
from repro.workload.point_to_point import PointToPointWorkload

AVERAGE_RATE = 0.01  # msgs/s/process, the lively region of Fig. 5


def run_poisson(seed):
    system = MobileSystem(
        SystemConfig(n_processes=16, seed=seed, trace_messages=False),
        MutableCheckpointProtocol(),
    )
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(1.0 / AVERAGE_RATE)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=20, warmup_initiations=2)
    )
    return runner.run(max_events=50_000_000)


def run_bursty(seed):
    system = MobileSystem(
        SystemConfig(n_processes=16, seed=seed, trace_messages=False),
        MutableCheckpointProtocol(),
    )
    # duty cycle 5 s ON / 95 s OFF at 0.5 s inter-send -> same 0.01 avg
    workload = BurstyWorkload(
        system,
        BurstyWorkloadConfig(burst_send_interval=0.5, mean_on=5.0, mean_off=95.0),
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=20, warmup_initiations=2)
    )
    return runner.run(max_events=50_000_000)


def test_bursty_vs_poisson(benchmark):
    def run_both():
        seeds = (11, 12, 13)
        poisson = [run_poisson(s) for s in seeds]
        bursty = [run_bursty(s) for s in seeds]

        def agg(results, attr):
            values = [getattr(r, attr)().mean for r in results]
            return sum(values) / len(values)

        return {
            "poisson_tentative": agg(poisson, "tentative_summary"),
            "poisson_redundant": agg(poisson, "redundant_mutable_summary"),
            "bursty_tentative": agg(bursty, "tentative_summary"),
            "bursty_redundant": agg(bursty, "redundant_mutable_summary"),
            "bursty_ratio": max(r.redundant_ratio for r in bursty),
        }

    row = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark.extra_info.update({k: round(v, 4) for k, v in row.items()})
    print(f"\nmatched avg rate {AVERAGE_RATE} msg/s:")
    print(f"  poisson: tentative={row['poisson_tentative']:.2f} "
          f"redundant={row['poisson_redundant']:.4f}")
    print(f"  bursty : tentative={row['bursty_tentative']:.2f} "
          f"redundant={row['bursty_redundant']:.4f}")
    # bursts concentrate dependency creation; redundant mutables at least
    # match the Poisson level, and the paper's 4% bound still holds
    assert row["bursty_redundant"] >= row["poisson_redundant"] - 1e-9
    assert row["bursty_ratio"] <= 0.04 + 1e-9
