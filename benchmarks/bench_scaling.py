"""Scaling in N: the O(N²) -> O(N) message reduction (§5.3.2).

"When N_min = N, the message reduction can be from O(N²) to O(N)." The
paper argues it analytically; here it is measured: system messages per
initiation for Koo-Toueg vs the mutable algorithm at N = 8, 16, 32 on a
dense workload (everyone is a participant), and the growth exponents
estimated from the measurements.
"""

from __future__ import annotations

import math

import pytest

from repro.checkpointing.koo_toueg import KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

SIZES = [8, 16, 32]


def messages_per_initiation(protocol_cls, n, seed=5):
    config = SystemConfig(n_processes=n, seed=seed, trace_messages=False)
    system = MobileSystem(config, protocol_cls())
    # dense: mean interval scaled so everyone stays a participant
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(30.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=6, warmup_initiations=1)
    )
    result = runner.run(max_events=80_000_000)
    unicast = result.counters.get("system_messages", 0.0)
    broadcast = result.counters.get("broadcasts", 0.0) * (n - 1)
    return (unicast + broadcast) / max(runner.committed, 1)


def growth_exponent(xs, ys):
    """Least-squares slope of log(y) over log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    mean_x = sum(lx) / len(lx)
    mean_y = sum(ly) / len(ly)
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


@pytest.mark.parametrize("n", SIZES)
def test_scaling_point(benchmark, n):
    def run():
        return {
            "koo-toueg": messages_per_initiation(KooTouegProtocol, n),
            "mutable": messages_per_initiation(MutableCheckpointProtocol, n),
        }

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"n": n, **{k: round(v, 1) for k, v in row.items()}})
    print(f"\nN={n}: msgs/initiation koo-toueg={row['koo-toueg']:.1f} "
          f"mutable={row['mutable']:.1f}")


def test_fixed_workload_advantage(benchmark):
    """On a free-running workload the advantage is a constant factor
    (N_dep saturates at the achievable dependency density)."""

    def run():
        kt = [messages_per_initiation(KooTouegProtocol, n) for n in SIZES]
        mu = [messages_per_initiation(MutableCheckpointProtocol, n) for n in SIZES]
        return kt, mu

    kt, mu = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  koo-toueg msgs: {[round(v, 1) for v in kt]}")
    print(f"  mutable   msgs: {[round(v, 1) for v in mu]}")
    for a, b in zip(kt, mu):
        assert a > 4 * b


def dense_initiation_messages(protocol_cls, n):
    """The §5.3.2 worst case, constructed exactly: every process depends
    on every other (all-to-all sends delivered), then one initiation."""
    from repro.scenarios.harness import ScenarioHarness

    h = ScenarioHarness(n, protocol_cls())
    for src in range(n):
        for dst in range(n):
            if src != dst:
                h.deliver(h.send(src, dst))
    h.initiate(0)
    h.deliver_all_system()
    assert h.trace.count("tentative") == n  # N_min = N here
    return h.trace.count("sys_send")


def test_scaling_exponents_worst_case(benchmark):
    """N_min = N: Koo-Toueg is O(N^2), the mutable algorithm far flatter
    (§5.3.2's 'from O(N²) to O(N)')."""

    def run():
        kt = [dense_initiation_messages(KooTouegProtocol, n) for n in SIZES]
        mu = [dense_initiation_messages(MutableCheckpointProtocol, n) for n in SIZES]
        return kt, mu

    kt, mu = benchmark.pedantic(run, rounds=1, iterations=1)
    kt_exp = growth_exponent(SIZES, kt)
    mu_exp = growth_exponent(SIZES, mu)
    print(f"\nworst-case exponents: koo-toueg={kt_exp:.2f} mutable={mu_exp:.2f}")
    print(f"  koo-toueg msgs: {kt}")
    print(f"  mutable   msgs: {mu}")
    assert kt_exp > 1.8              # quadratic
    assert mu_exp < kt_exp - 0.4     # clearly flatter
    # the gap widens with N — the O(N^2) -> O(N)-ish reduction
    assert kt[-1] / mu[-1] > kt[0] / mu[0]
