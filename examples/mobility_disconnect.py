#!/usr/bin/env python3
"""Mobility and disconnection during checkpointing (paper §2.2).

A two-cell system where, while traffic flows:

1. an MH hands off to the other cell mid-run (traffic is forwarded by
   the old MSS — correctness proof Case 2);
2. an MH voluntarily disconnects, leaving a disconnect checkpoint with
   its MSS; a checkpointing initiated while it is away completes
   without it, the MSS converting the disconnect checkpoint on its
   behalf (Case 3);
3. the MH reconnects at the *other* cell and replays its buffered
   messages.

The final recovery line is verified with the independent checkers.

Run:  python examples/mobility_disconnect.py
"""

from repro import MobileSystem, PointToPointWorkloadConfig, SystemConfig
from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.checkpointing import MutableCheckpointProtocol
from repro.checkpointing.disconnect_support import disconnect_process, reconnect_process
from repro.net.mobility import handoff
from repro.workload import PointToPointWorkload


def main() -> None:
    config = SystemConfig(n_processes=6, n_mss=2, seed=7)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(5.0))
    workload.start()

    sim = system.sim
    sim.run(until=60.0)

    # 1. handoff: process 1's MH moves to the other cell
    mh1 = system.processes[1].host
    old = mh1.mss
    new = next(mss for mss in system.mss_list if mss is not old)
    handoff(system.network, mh1, new)
    sim.run(until=120.0)
    hrec = sim.trace.last("handoff_complete")
    print(f"handoff: {mh1.name} moved {old.name} -> {new.name}, "
          f"{hrec['forwarded']} message(s) forwarded by the old MSS")

    # 2. disconnect: process 2 leaves; a checkpointing completes without it
    record = disconnect_process(system, 2)
    print(f"disconnect: mh2 left its checkpoint with {system.mss_for(0).name}")
    sim.run(until=180.0)
    assert system.protocol.processes[0].initiate()
    sim.run(until=300.0)
    commit = sim.trace.last("commit")
    print(f"checkpointing initiated by p0 committed at t={commit.time:.1f}s "
          f"while mh2 was disconnected")
    print(f"MSS took a checkpoint on p2's behalf: {record.checkpoint_taken_on_behalf}")

    # 3. reconnect at the other cell
    buffered = len(record.buffered)
    reconnect_process(system, 2, system.mss_list[1])
    sim.run(until=360.0)
    print(f"reconnect: mh2 reattached at mss1, {buffered} buffered message(s) replayed")

    workload.stop()
    system.run_until_quiescent()

    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    print("recovery line after handoff + disconnect cycle: consistent")


if __name__ == "__main__":
    main()
