#!/usr/bin/env python3
"""Figure 6 regeneration: group communication.

Four groups of four processes; only group leaders talk across groups,
at 1/1000 (left graph of Fig. 6) and 1/10000 (right graph) of the
intragroup rate. Prints both graphs' curves next to the point-to-point
baseline so the paper's claim — group communication takes fewer
checkpoints, and the 10000x ratio fewer still — is visible directly.

Run:  python examples/group_communication.py [--fast]
"""

import sys

from repro import (
    ExperimentRunner,
    GroupWorkloadConfig,
    MobileSystem,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.checkpointing import MutableCheckpointProtocol
from repro.workload import GroupWorkload, PointToPointWorkload

RATES = [0.005, 0.01, 0.02, 0.05]


def run_one(rate: float, ratio, initiations: int):
    config = SystemConfig(n_processes=16, seed=11, trace_messages=False)
    system = MobileSystem(config, MutableCheckpointProtocol())
    if ratio is None:
        workload = PointToPointWorkload(
            system, PointToPointWorkloadConfig(mean_send_interval=1.0 / rate)
        )
    else:
        workload = GroupWorkload(
            system,
            GroupWorkloadConfig(
                mean_send_interval=1.0 / rate, n_groups=4, intra_inter_ratio=ratio
            ),
        )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=initiations, warmup_initiations=2)
    )
    return runner.run()


def main() -> None:
    initiations = 12 if "--fast" in sys.argv else 32
    print("Figure 6 — group communication, 4 groups x 4, N = 16")
    header = f"{'rate':>8} | {'1000x tent':>10} {'red':>6} | {'10000x tent':>11} {'red':>6} | {'p2p tent':>8}"
    print(header)
    print("-" * len(header))
    for rate in RATES:
        left = run_one(rate, 1_000.0, initiations)
        right = run_one(rate, 10_000.0, initiations)
        p2p = run_one(rate, None, initiations)
        print(
            f"{rate:>8.3f} | {left.tentative_summary().mean:>10.2f} "
            f"{left.redundant_mutable_summary().mean:>6.3f} | "
            f"{right.tentative_summary().mean:>11.2f} "
            f"{right.redundant_mutable_summary().mean:>6.3f} | "
            f"{p2p.tentative_summary().mean:>8.2f}"
        )
    print()
    print("paper shape: group < point-to-point; 10000x ratio <= 1000x ratio.")


if __name__ == "__main__":
    main()
