#!/usr/bin/env python3
"""Figure 5 regeneration: checkpoints vs message sending rate.

Sweeps the per-process message sending rate under the paper's
point-to-point workload and prints the two curves of Fig. 5: tentative
checkpoints per initiation and redundant mutable checkpoints per
initiation, plus the redundant/tentative ratio the paper bounds by 4 %.

Run:  python examples/point_to_point_experiment.py [--fast]
"""

import sys

from repro.analysis.ascii_chart import render_chart
from repro import (
    ExperimentRunner,
    MobileSystem,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.checkpointing import MutableCheckpointProtocol
from repro.workload import PointToPointWorkload

RATES = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1]


def one_point(rate: float, initiations: int, seed: int = 11):
    config = SystemConfig(n_processes=16, seed=seed, trace_messages=False)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=1.0 / rate)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=initiations, warmup_initiations=2)
    )
    return runner.run()


def main() -> None:
    initiations = 12 if "--fast" in sys.argv else 42
    print("Figure 5 — point-to-point communication, N = 16, 900 s intervals")
    print(f"{'rate msg/s':>10} {'tentative':>10} {'redundant':>10} {'ratio':>8} {'ci<=10%':>8}")
    tentative_curve, redundant_curve = [], []
    for rate in RATES:
        result = one_point(rate, initiations)
        tent = result.tentative_summary()
        red = result.redundant_mutable_summary()
        tentative_curve.append(tent.mean)
        redundant_curve.append(red.mean)
        print(
            f"{rate:>10.3f} {tent.mean:>10.2f} {red.mean:>10.3f} "
            f"{result.redundant_ratio:>8.4f} {str(tent.meets_paper_precision()):>8}"
        )
    print()
    print(render_chart(
        RATES,
        {"tentative": tentative_curve, "redundant mutable": redundant_curve},
        title="Fig. 5: checkpoints per initiation vs message sending rate",
        x_label="rate (msg/s, log)",
        y_label="checkpoints per initiation",
        log_x=True,
    ))
    print()
    print("paper shape: tentative grows toward N=16 with the rate;")
    print("redundant mutable rises then falls, always < 4% of tentative.")


if __name__ == "__main__":
    main()
