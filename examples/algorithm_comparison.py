#!/usr/bin/env python3
"""Table 1 regeneration: the three-way algorithm comparison.

Runs Koo-Toueg (blocking, min-process), Elnozahy et al. (nonblocking,
all-process), and the mutable-checkpoint algorithm on the identical
workload and prints the measured Table 1 next to the paper's analytic
formulas evaluated with the measured N_min.

Run:  python examples/algorithm_comparison.py
"""

from repro import (
    ExperimentRunner,
    MobileSystem,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.analysis.comparison import (
    CostParameters,
    analytic_table,
    format_table,
    measured_row,
)
from repro.core.registry import build_protocol
from repro.workload import PointToPointWorkload


def run_protocol(name: str):
    config = SystemConfig(n_processes=16, seed=21, trace_messages=False)
    system = MobileSystem(config, build_protocol(name))
    # moderate rate: N_min strictly between 1 and N, so the min-process
    # advantage over the all-process baseline is visible
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(220.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=14, warmup_initiations=2)
    )
    return runner.run()


def main() -> None:
    rows = [measured_row(run_protocol(n)) for n in ("koo-toueg", "elnozahy", "mutable")]
    n_min = rows[2].checkpoints
    print(format_table(rows, "Table 1 — measured (per initiation)"))
    print()
    print(
        format_table(
            analytic_table(CostParameters(n=16, n_min=n_min, n_dep=4.0)),
            f"Table 1 — paper formulas with measured N_min = {n_min:.1f}",
        )
    )
    print()
    print("paper claims reproduced: both min-process algorithms stay below")
    print("the all-process baseline's N=16 (Theorem 3; exact equality holds")
    print("for identical message histories — Koo-Toueg's blocking perturbs")
    print("the workload trajectory here), zero blocking for the nonblocking")
    print("algorithms, and message cost reduced from O(N_min*N_dep*C_air).")
    print("Note: measured blocking is total blocked process-seconds per")
    print("initiation; the formula row is the worst-case per-process span.")


if __name__ == "__main__":
    main()
