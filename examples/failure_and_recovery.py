#!/usr/bin/env python3
"""Failure handling (§3.6) and rollback recovery.

Three acts:

1. an MH fails in the middle of a checkpointing coordination under the
   ABORT policy — everything from that initiation is discarded;
2. the same situation under Kim-Park PARTIAL_COMMIT — participants that
   do not depend on the failed process keep their checkpoints;
3. full rollback: every process restores the latest consistent
   recovery line and the lost computation is quantified.

Run:  python examples/failure_and_recovery.py
"""

from repro import MobileSystem, PointToPointWorkloadConfig, SystemConfig
from repro.checkpointing import MutableCheckpointProtocol
from repro.checkpointing.failures import FailureInjector, FailurePolicy
from repro.checkpointing.recovery import RecoveryManager
from repro.workload import PointToPointWorkload


def build(policy: FailurePolicy, seed: int):
    config = SystemConfig(n_processes=8, seed=seed)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(5.0))
    workload.start()
    system.sim.run(until=100.0)
    injector = FailureInjector(system, policy)
    return system, injector


def act1_abort() -> None:
    system, injector = build(FailurePolicy.ABORT, seed=42)
    assert system.protocol.processes[0].initiate()
    system.sim.run(until=system.sim.now + 0.5)
    injector.fail_process(3)
    system.sim.run(until=system.sim.now + 60.0)
    aborts = system.sim.trace.count("abort")
    discarded = system.sim.trace.count("tentative_discarded")
    print(f"act 1 (ABORT): p3 failed mid-checkpointing -> {aborts} abort, "
          f"{discarded} tentative checkpoint(s) discarded")


def act2_partial_commit() -> None:
    system, injector = build(FailurePolicy.PARTIAL_COMMIT, seed=7)
    trigger = None
    assert system.protocol.processes[0].initiate()
    trigger = system.protocol.processes[0].initiating
    system.sim.run(until=system.sim.now + 3.0)
    participants = [
        pid
        for pid, proc in system.protocol.processes.items()
        if trigger in proc.pending_tentative and pid != 0
    ]
    # pick the participant the fewest others depend on, so the partial
    # commit has survivors to show
    def dependents(victim: int) -> int:
        return sum(
            1
            for pid, proc in system.protocol.processes.items()
            if trigger in proc.pending_tentative
            and proc.pending_tentative[trigger].prev_r[victim]
        )

    victim = min(participants, key=dependents)
    injector.fail_process(victim)
    system.sim.run(until=system.sim.now + 60.0)
    record = system.sim.trace.last("partial_commit")
    print(f"act 2 (PARTIAL_COMMIT): p{victim} failed; "
          f"committed={list(record['committed'])} excluded={list(record['excluded'])}")


def act3_rollback() -> None:
    config = SystemConfig(n_processes=8, seed=11)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(5.0))
    workload.start()
    system.sim.run(until=200.0)
    assert system.protocol.processes[0].initiate()
    system.sim.run(until=400.0)
    workload.stop()
    system.run_until_quiescent()

    injector = FailureInjector(system)
    injector.fail_process(5)
    injector.restart_process(5)

    manager = RecoveryManager(system)
    report = manager.rollback()
    times = sorted(set(round(t, 1) for t in report.line_times.values()))
    print(f"act 3 (rollback): {len(report.rolled_back_pids)} processes rolled back "
          f"to checkpoints taken at t={times}; "
          f"{report.lost_messages} delivered message(s) will be re-executed")


def act4_distributed_recovery() -> None:
    """The same rollback as an actual message protocol: incarnation
    numbers, rollback_request/ack/resume, ghost filtering."""
    from repro.checkpointing.rollback_protocol import DistributedRecovery

    config = SystemConfig(n_processes=8, seed=13)
    system = MobileSystem(config, MutableCheckpointProtocol())
    recovery = DistributedRecovery(system)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(5.0))
    workload.start()
    system.sim.run(until=100.0)
    assert system.protocol.processes[0].initiate()
    system.sim.run(until=250.0)
    round_ = recovery.recover(initiator_pid=4)
    system.sim.run(until=300.0)
    workload.stop()
    system.run_until_quiescent()
    print(f"act 4 (distributed): incarnation {round_.incarnation} recovered in "
          f"{round_.duration * 1000:.1f} ms of protocol time; "
          f"{system.monitor.counter('stale_incarnation_dropped'):.0f} ghost "
          f"message(s) filtered; computation resumed")


def main() -> None:
    act1_abort()
    act2_partial_commit()
    act3_rollback()
    act4_distributed_recovery()


if __name__ == "__main__":
    main()
