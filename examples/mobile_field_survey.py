#!/usr/bin/env python3
"""A mobile field-survey application — the kind of workload the paper's
introduction motivates.

Seven field agents on mobile hosts collect observations and report them
to an aggregator process running on the support station. The
checkpointing layer makes the distributed tally fault tolerant:

1. agents stream observation reports; the aggregator keeps a running
   total (application state protected by checkpoints);
2. the aggregator publishes interim results to the outside world only
   through output commit (§5.3) — a result, once printed, can never be
   contradicted by a rollback;
3. an agent's mobile host crashes mid-run; the §3.6 abort protocol
   cleans up the in-flight coordination;
4. everyone rolls back to the last committed recovery line; messages
   lost in transit across the line are replayed from the sender log;
5. the invariant "aggregator total == sum of agents' reported counts"
   holds again after recovery — on states, not just on counters.

Run:  python examples/mobile_field_survey.py
"""

from repro import MobileSystem, SystemConfig
from repro.checkpointing import MutableCheckpointProtocol
from repro.checkpointing.failures import FailureInjector
from repro.checkpointing.message_log import SenderMessageLog
from repro.checkpointing.recovery import RecoveryManager
from repro.core.output_commit import OutputCommitManager
from repro.workload.base import Workload

AGGREGATOR = 0
N_AGENTS = 7


class SurveyWorkload(Workload):
    """Agents observe at random intervals and report each batch."""

    def __init__(self, system):
        super().__init__(system)
        for pid in range(1, N_AGENTS + 1):
            system.processes[pid].app_state["observations"] = 0
            system.processes[pid].app_state["reported"] = 0
        system.processes[AGGREGATOR].app_state["total"] = 0
        system.add_deliver_hook(self._on_deliver)

    def _schedule_initial(self):
        for pid in range(1, N_AGENTS + 1):
            self._schedule_next(pid)

    def _schedule_next(self, pid):
        delay = self.system.streams.exponential(f"survey.{pid}", 4.0)
        self.system.sim.schedule(delay, self._observe, pid)

    def _observe(self, pid):
        if not self.running:
            return
        process = self.system.processes[pid]
        batch = self.system.streams.uniform_int(f"survey.batch.{pid}", 1, 5)
        process.app_state["observations"] += batch
        process.app_state["reported"] += batch
        self._send(pid, AGGREGATOR)
        # the report carries the batch size as payload
        self.system.sim.trace.record(
            self.system.sim.now, "survey_report", pid=pid, batch=batch
        )
        self._last_batch = batch
        self._schedule_next(pid)

    def _send(self, pid, dst):  # attach the batch as the payload
        process = self.system.processes[pid]
        if getattr(process.host, "disconnected", False):
            return
        self.messages_generated += 1
        batch = process.app_state["reported"]
        process.send_computation(dst, payload=("report", pid, batch))

    def _on_deliver(self, process, message):
        if process.pid != AGGREGATOR or not isinstance(message.payload, tuple):
            return
        kind, agent, reported = message.payload
        if kind != "report":
            return
        state = process.app_state
        key = f"seen_{agent}"
        previous = state.get(key, 0)
        state["total"] = state.get("total", 0) + (reported - previous)
        state[key] = reported


def check_invariant(system) -> bool:
    """Aggregator total == sum of agent counts it has been told about."""
    agg = system.processes[AGGREGATOR].app_state
    return agg.get("total", 0) == sum(
        agg.get(f"seen_{pid}", 0) for pid in range(1, N_AGENTS + 1)
    )


def main() -> None:
    system = MobileSystem(
        SystemConfig(n_processes=N_AGENTS + 1, processes_on_mss=1, seed=77),
        MutableCheckpointProtocol(),
    )
    log = SenderMessageLog(system)
    outputs = OutputCommitManager(system)
    workload = SurveyWorkload(system)
    workload.start()

    # Phase 1: collect, then publish an interim result via output commit.
    # The output's value is fixed when it is requested; the checkpointing
    # it triggers guarantees the state that produced it survives any
    # future rollback.
    system.sim.run(until=120.0)
    total_at_request = system.processes[AGGREGATOR].app_state["total"]
    request = outputs.request_output(AGGREGATOR, payload=total_at_request)
    system.sim.run(until=240.0)
    assert request.released
    print(f"t=120s interim total {request.payload} published after "
          f"{request.delay:.2f}s output-commit delay")

    # Phase 2: more collection, then a crash mid-checkpointing.
    system.sim.run(until=400.0)
    assert system.protocol.processes[AGGREGATOR].initiate()
    system.sim.run(until=400.5)
    injector = FailureInjector(system)
    injector.fail_process(3)
    system.sim.run(until=520.0)
    print(f"agent 3 crashed during a checkpointing -> "
          f"{system.sim.trace.count('abort')} abort broadcast")

    workload.stop()
    system.run_until_quiescent()
    injector.restart_process(3)

    # Phase 3: rollback and lost-message replay.
    manager = RecoveryManager(system)
    line = manager.recovery_line()
    lost = log.lost_messages(line)
    report = manager.rollback()
    log.replay(line)
    print(f"rolled back {len(report.rolled_back_pids)} processes; "
          f"{report.lost_messages} deliveries undone; "
          f"{len(lost)} in-transit report(s) replayed from the sender log")

    restored_total = system.processes[AGGREGATOR].app_state["total"]
    print(f"restored aggregator total: {restored_total}")
    # The outside world never sees a contradiction: the recovery line is
    # at (or after) the checkpoint that released the published output.
    assert restored_total >= request.payload, "published output orphaned!"
    print(f"published result {request.payload} still covered by the "
          f"restored state ({restored_total} >= {request.payload}) ✓")
    assert check_invariant(system), "aggregate invariant broken after recovery"
    print("invariant after recovery: aggregator total == sum of seen agent counts ✓")


if __name__ == "__main__":
    main()
