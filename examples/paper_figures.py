#!/usr/bin/env python3
"""Walk through the paper's Figs. 1-4 as executed protocol runs.

For each figure: the scenario outcome (consistency, checkpoint counts)
and a space-time swimlane of what actually happened, reconstructed from
the execution trace — the same diagrams the paper draws, but generated
by running the algorithms.

Run:  python examples/paper_figures.py
"""

from repro.analysis.timeline import render_timeline
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.scenarios.figures import figure1, figure2, figure2_with_mutable, figure4
from repro.scenarios.harness import ScenarioHarness


def show(title: str, result, harness=None, n=0) -> None:
    print("=" * 72)
    print(title)
    print("-" * 72)
    status = "consistent" if result.consistent else "INCONSISTENT (as the paper predicts)"
    print(f"outcome: {status}; orphans: {result.orphan_msg_ids or 'none'}")
    print(f"checkpoints: {result.tentative_counts}")
    if result.mutable_taken:
        print(f"mutable: taken={result.mutable_taken} "
              f"promoted={result.mutable_promoted} "
              f"discarded(redundant)={result.mutable_discarded}")
    print(f"note: {result.notes}")
    if harness is not None:
        print()
        print(render_timeline(harness.trace, n))
    print()


def rebuilt_figure3():
    """Fig. 3 rebuilt here so we can keep the harness for the timeline."""
    from repro.scenarios.figures import figure3

    result = figure3()
    # rebuild the same script to render its trace
    h = ScenarioHarness(5, MutableCheckpointProtocol())
    p0, p1, p2, p3, p4 = range(5)
    h.deliver(h.send(p1, p2))
    h.deliver(h.send(p3, p2))
    h.deliver(h.send(p4, p2))
    h.deliver(h.send(p4, p0))
    h.initiate(p0)
    req_p0_to_p4 = next(f for f in h.pending_system("request") if f.dst == p4)
    h.initiate(p2)
    p2_requests = {
        f.dst: f for f in h.pending_system("request") if f is not req_p0_to_p4
    }
    h.deliver(p2_requests[p4])
    h.deliver(h.send(p4, p3))
    h.deliver(h.send(p3, p1))
    h.send(p1, p3)
    m1 = h.send(p0, p1)
    h.deliver(m1)
    h.deliver(p2_requests[p1])
    h.deliver(p2_requests[p3])
    h.deliver(req_p0_to_p4)
    h.deliver_everything()
    return result, h


def main() -> None:
    show("Figure 1 — naive nonblocking coordination (broken strawman)", figure1())
    show("Figure 2 — the §2.4 impossibility, without mutable checkpoints",
         figure2())
    show("Figure 2 — same message ordering, with the paper's algorithm",
         figure2_with_mutable())
    result3, harness3 = rebuilt_figure3()
    show("Figure 3 — §3.4 worked example (promote C11/C31, discard C12)",
         result3, harness3, n=5)
    show("Figure 4 — §3.1.3 stale-request suppression", figure4())


if __name__ == "__main__":
    main()
