#!/usr/bin/env python3
"""Quickstart: run the mutable-checkpoint algorithm on the paper's setup.

Builds the §5.1 system — 16 processes on mobile hosts in one 2 Mbps
wireless cell — drives a point-to-point workload, lets eight
checkpointing processes commit, and prints what the paper measures,
then verifies the final recovery line with the independent checkers.

Run:  python examples/quickstart.py
"""

from repro import (
    ExperimentRunner,
    MobileSystem,
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.checkpointing import MutableCheckpointProtocol
from repro.workload import PointToPointWorkload


def main() -> None:
    config = SystemConfig(n_processes=16, seed=2026)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(mean_send_interval=60.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=8, warmup_initiations=1)
    )

    result = runner.run()

    print("mutable-checkpoint algorithm, 16 processes, one wireless cell")
    print(f"  simulated time            : {result.sim_time:,.0f} s")
    print(f"  committed initiations     : {result.n_initiations} (after warmup)")
    print(f"  tentative ckpts/initiation: {result.tentative_summary()}")
    print(f"  redundant mutable ckpts   : {result.redundant_mutable_summary()}")
    print(f"  checkpointing time        : {result.duration_summary()} s")
    print(f"  blocking time             : {result.total_blocked_time:.1f} s (nonblocking!)")
    print(f"  system messages           : {result.counters['system_messages']:.0f}")

    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    print("  recovery line             : consistent (orphan scan + vector clocks)")


if __name__ == "__main__":
    main()
