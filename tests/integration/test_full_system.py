"""Integration tests: every protocol, full simulation, every checker.

These are the repository's acceptance tests: for each protocol and
several seeds/rates, a complete run must produce (a) consistent
recovery lines by both independent checkers, (b) minimal participant
sets for the min-process protocols, and (c) clean terminal state.
"""

from __future__ import annotations

import pytest

from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.analysis.minimality import check_minimality
from repro.checkpointing.chandy_lamport import ChandyLamportProtocol
from repro.checkpointing.elnozahy import ElnozahyProtocol
from repro.checkpointing.koo_toueg import KooTouegProtocol
from repro.checkpointing.mutable import MutableCheckpointProtocol
from tests.conftest import run_experiment

ALL_PROTOCOLS = {
    "mutable": MutableCheckpointProtocol,
    "koo-toueg": KooTouegProtocol,
    "elnozahy": ElnozahyProtocol,
    "chandy-lamport": ChandyLamportProtocol,
}

MIN_PROCESS = ("mutable", "koo-toueg")


@pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
@pytest.mark.parametrize("seed", [13, 14])
def test_recovery_line_consistent(name, seed):
    system, result = run_experiment(
        ALL_PROTOCOLS[name](), seed=seed, initiations=5, mean_send_interval=40.0
    )
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    assert result.n_initiations == 4


@pytest.mark.parametrize("name", MIN_PROCESS)
def test_min_process_protocols_are_minimal(name):
    system, _ = run_experiment(
        ALL_PROTOCOLS[name](), seed=17, initiations=5, mean_send_interval=60.0
    )
    for report in check_minimality(system.sim.trace):
        assert report.minimal, f"{name}: {report}"


@pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
def test_no_protocol_state_leaks_after_quiescence(name):
    system, _ = run_experiment(
        ALL_PROTOCOLS[name](), seed=19, initiations=4, mean_send_interval=30.0
    )
    for pid, proc in system.protocol.processes.items():
        if hasattr(proc, "cp_state"):
            assert not proc.cp_state, f"{name}: p{pid} stuck in cp_state"
        if hasattr(proc, "mutables"):
            assert not proc.mutables, f"{name}: p{pid} leaked mutables"
        if hasattr(proc, "pending_tentative"):
            assert not proc.pending_tentative, f"{name}: p{pid} leaked tentatives"
    for process in system.processes.values():
        assert not process.blocked, f"{name}: p{process.pid} still blocked"
        assert len(process.local_store) == 0


@pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
def test_all_sent_messages_eventually_delivered(name):
    system, _ = run_experiment(
        ALL_PROTOCOLS[name](), seed=23, initiations=3, mean_send_interval=20.0
    )
    sends = {r["msg_id"] for r in system.sim.trace.of_kind("comp_send")}
    recvs = {r["msg_id"] for r in system.sim.trace.of_kind("comp_recv")}
    assert recvs <= sends
    # at quiescence nothing is in flight
    assert sends == recvs


def test_mutable_under_mobility_stays_consistent():
    """Checkpointing while hosts move between cells (proof Case 2)."""
    from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
    from repro.core.runner import ExperimentRunner
    from repro.core.system import MobileSystem
    from repro.net.mobility import RandomWalkMobility
    from repro.workload.point_to_point import PointToPointWorkload

    config = SystemConfig(n_processes=8, n_mss=3, seed=31)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(20.0))
    mobility = RandomWalkMobility(system.network, system.streams, mean_residence_time=120.0)
    mobility.start()
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=5, warmup_initiations=1)
    )
    result = runner.run(max_events=5_000_000)
    mobility.stop()
    system.run_until_quiescent()
    assert mobility.moves > 0
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    assert result.n_initiations == 4


def test_mutable_multi_cell_topology_consistent():
    system, result = run_experiment(
        MutableCheckpointProtocol(),
        seed=37,
        initiations=5,
        mean_send_interval=30.0,
        n_mss=4,
    )
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    # cross-cell traffic actually happened
    assert system.network.wired_messages > 0


def test_deterministic_full_run():
    """Bit-for-bit reproducibility of an entire simulation."""

    def fingerprint():
        system, result = run_experiment(
            MutableCheckpointProtocol(), seed=41, initiations=4
        )
        return (
            result.sim_time,
            result.wall_events,
            tuple(s.tentative_count for s in result.initiations),
            len(system.sim.trace),
        )

    assert fingerprint() == fingerprint()


def test_weight_ledger_clean_across_many_initiations():
    protocol = MutableCheckpointProtocol(track_weights=True)
    system, result = run_experiment(protocol, seed=43, initiations=6)
    assert not protocol.ledger.active
    assert result.n_initiations == 5
