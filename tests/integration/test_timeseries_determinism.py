"""Determinism witnesses for the timeseries sampler.

The sampler's whole value rests on being observably invisible: with it
enabled, the simulation's trace and event sequence must be *bit
identical* to a sampler-off run, and its own output must be a pure
function of (config, seed). These tests pin both properties against the
golden values of ``tests/integration/test_fastpath_determinism.py``.
"""

from __future__ import annotations

import json

from repro.campaign.engine import CampaignEngine
from repro.campaign.spec import CampaignSpec
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.obs.timeseries import dumps_timeseries
from repro.workload.point_to_point import PointToPointWorkload

#: golden trace/clock values from test_fastpath_determinism.py — the
#: sampler-on runs below must reproduce them byte for byte (the
#: metrics_sha256 goldens are deliberately NOT pinned here: sampling
#: adds the wave.* instruments to the registry, which is the one
#: documented observable difference)
GOLDEN = {
    "A": {  # 8 processes, DEBUG tracing on
        "trace_hash": "9685b119d6fe43aa8c76e3163ec3a983a95ce8166d06743b71e8d02bd6688038",
        "wall_events": 4527,
        "sim_time": 2776.6242658445112,
    },
    "B": {  # 16 processes, tracing off (INFO)
        "trace_hash": "792922785025ba7fd51a3cbfc9716c6bda78f8ff1e729b7cda2aca42f2d38be7",
        "wall_events": 12675,
        "sim_time": 3652.4022692331855,
    },
}


def _run(n_processes, seed, trace_messages, max_initiations, window=None):
    config = SystemConfig(
        n_processes=n_processes,
        seed=seed,
        trace_messages=trace_messages,
        timeseries_window=window,
    )
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=15.0)
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=max_initiations, warmup_initiations=1),
    )
    result = runner.run(max_events=10_000_000)
    return system, result


def test_sampler_on_matches_golden_trace_a():
    """DEBUG-trace config A with 60s windows: the golden trace hash,
    event count, and final clock are untouched by sampling."""
    system, _ = _run(8, 20260806, True, 4, window=60.0)
    assert system.sim.trace.content_hash() == GOLDEN["A"]["trace_hash"]
    assert system.sim.events_processed == GOLDEN["A"]["wall_events"]
    assert system.sim.now == GOLDEN["A"]["sim_time"]


def test_sampler_on_matches_golden_trace_b():
    """Fast-loop config B: the hooked loop reproduces the fused loop's
    goldens exactly."""
    system, _ = _run(16, 7, False, 6, window=60.0)
    assert system.sim.trace.content_hash() == GOLDEN["B"]["trace_hash"]
    assert system.sim.events_processed == GOLDEN["B"]["wall_events"]
    assert system.sim.now == GOLDEN["B"]["sim_time"]


def test_sampler_off_has_no_wave_instruments():
    """The wave.* instruments exist only while a sampler does, so a
    sampler-off metrics snapshot (and its golden sha) is unchanged."""
    _, result = _run(8, 20260806, True, 4, window=None)
    assert not any(
        name.startswith("wave.") for name in result.metrics["counters"]
    )
    assert not any(
        name.startswith("wave.") for name in result.metrics["histograms"]
    )
    assert result.timeseries == {}


def test_same_seed_exports_are_byte_identical():
    _, first = _run(8, 20260806, True, 4, window=60.0)
    _, second = _run(8, 20260806, True, 4, window=60.0)
    assert dumps_timeseries(first.timeseries) == dumps_timeseries(
        second.timeseries
    )
    assert dumps_timeseries(first.timeseries, "tsv") == dumps_timeseries(
        second.timeseries, "tsv"
    )


def test_window_events_sum_to_wall_events():
    """Every dispatched event lands in exactly one window."""
    system, result = _run(8, 20260806, True, 4, window=60.0)
    rows = result.timeseries["rows"]
    assert sum(r["events"] for r in rows) == system.sim.events_processed


def test_campaign_merged_timeseries_worker_count_independent():
    """workers=4 merges to the same bytes as workers=1 (like
    merged_metrics): delta rows add per window, order-independently."""
    spec = CampaignSpec(
        name="timeseries-witness",
        protocols=["mutable"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": interval}
            for interval in (30.0, 12.0)
        ],
        configs=[{"n_processes": 4, "timeseries_window": 120.0}],
        run={"max_initiations": 3, "warmup_initiations": 1},
        replicates=2,
        seed=3,
    )
    serial = CampaignEngine(spec, workers=1).run()
    parallel = CampaignEngine(spec, workers=4).run()
    merged_serial = serial.merged_timeseries()
    merged_parallel = parallel.merged_timeseries()
    assert merged_serial["rows"]
    assert json.dumps(merged_serial, sort_keys=True) == json.dumps(
        merged_parallel, sort_keys=True
    )
