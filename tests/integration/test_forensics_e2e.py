"""End-to-end forensics acceptance: a seeded 16-MH run explained.

The observability claim of this PR: on a full simulation run,
``repro-sim inspect`` can (a) emit a causal chain back to the initiator
for every stable checkpoint, (b) show a forced set that exactly matches
the minimality checker's justified closure on every committed wave, and
(c) do both from a flight-recorder trace whose DEBUG window is bounded —
the final wave's narrative must come out identical to full-DEBUG
tracing while the ring held only a fraction of the records.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.config import (
    PointToPointWorkloadConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.registry import build_protocol
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.obs.forensics import build_forensics
from repro.workload.point_to_point import PointToPointWorkload

N = 16
SEED = 42
FLIGHT_CAPACITY = 600


def run_system(debug_capacity=None) -> MobileSystem:
    config = SystemConfig(
        n_processes=N,
        seed=SEED,
        trace_messages=True,
        trace_debug_capacity=debug_capacity,
    )
    system = MobileSystem(config, build_protocol("mutable"))
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=20.0)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=4)
    )
    runner.run()
    return system


@pytest.fixture(scope="module")
def full_system():
    return run_system()


@pytest.fixture(scope="module")
def full_report(full_system):
    return build_forensics(full_system.sim.trace, n_processes=N)


def committed_waves(report):
    waves = [w for w in report.waves if w.outcome == "commit"]
    assert len(waves) >= 2, "run too short to be a meaningful witness"
    return waves


def test_forced_set_matches_justified_closure_every_wave(full_report):
    for wave in committed_waves(full_report):
        assert wave.justified is not None
        assert wave.forced == wave.justified, (
            f"wave {wave.index}: forced {sorted(wave.forced)} != "
            f"justified {sorted(wave.justified or ())}"
        )


def test_waves_are_nontrivial(full_report):
    waves = committed_waves(full_report)
    assert any(len(w.forced) > 1 for w in waves)
    assert any(w.cascade_depth() >= 2 for w in waves)


def test_every_stable_checkpoint_has_chain_to_initiator(full_report):
    for wave in committed_waves(full_report):
        for pid in wave.forced:
            steps = wave.chain_steps(pid, full_report.graph)
            assert steps, f"P{pid} in wave {wave.index} has no chain"
            assert f"P{wave.initiator} initiated" in steps[0].text
            assert all(step.verified is not False for step in steps), (
                f"P{pid} in wave {wave.index}: unverifiable causal step"
            )


def test_inspect_cli_explains_every_participant(
    full_system, full_report, tmp_path, capsys
):
    from repro.sim.export import save_trace

    path = str(tmp_path / "run.trace.jsonl")
    save_trace(full_system.sim.trace, path)
    for wave in committed_waves(full_report):
        for pid in wave.forced:
            code = main(
                ["inspect", path, "--wave", str(wave.index),
                 "--explain", str(pid)]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert f"P{wave.initiator} initiated wave" in out
            assert "UNVERIFIED" not in out


def test_flight_recorder_reproduces_final_wave_narrative(full_report):
    bounded = run_system(debug_capacity=FLIGHT_CAPACITY)
    trace = bounded.sim.trace
    # The memory bound actually bound something.
    assert trace.debug_held <= FLIGHT_CAPACITY
    assert trace.debug_evicted > 0
    flight_report = build_forensics(trace, n_processes=N)
    last = committed_waves(full_report)[-1].index
    assert (
        flight_report.wave_narrative(last)
        == full_report.wave_narrative(last)
    )
    narrative = flight_report.wave_narrative(last)
    assert "forced set == justified closure" in narrative
    assert "UNVERIFIED" not in narrative


def test_flight_recorder_keeps_lifecycle_intact(full_report):
    bounded = run_system(debug_capacity=FLIGHT_CAPACITY)
    flight_report = build_forensics(bounded.sim.trace, n_processes=N)
    # INFO records are never evicted, so wave structure is identical.
    assert len(flight_report.waves) == len(full_report.waves)
    for full_wave, flight_wave in zip(full_report.waves, flight_report.waves):
        assert flight_wave.trigger == full_wave.trigger
        assert flight_wave.forced == full_wave.forced
        assert flight_wave.outcome == full_wave.outcome
