"""Fast-path determinism witnesses.

The hot-path overhaul (slotted messages, pooled events, the kernel's
fused run loop, zero-alloc piggybacking) must be *invisible* to every
observable of a run. These tests pin byte-exact golden values captured
on the pre-overhaul kernel: the trace ``content_hash``, the sha256 of
the sorted metrics dict, the event count and final sim time. Any
change here means the fast path altered behaviour, not just speed.

A campaign cross-check asserts that worker parallelism stays
bit-identical too (the fast loop runs inside forked workers).
"""

from __future__ import annotations

import hashlib
import json

from repro.campaign.engine import CampaignEngine
from repro.campaign.spec import CampaignSpec
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

#: golden values captured on the pre-overhaul kernel (commit 2258971);
#: the overhaul must reproduce them byte for byte
GOLDEN = {
    "A": {  # 8 processes, DEBUG tracing on
        "trace_hash": "9685b119d6fe43aa8c76e3163ec3a983a95ce8166d06743b71e8d02bd6688038",
        "metrics_sha256": "f0ef09feb9dd19804c7a3ad08086e1214fb9691b32186a1f8b39ab570c6e85f4",
        "wall_events": 4527,
        "sim_time": 2776.6242658445112,
    },
    "B": {  # 16 processes, tracing off (INFO)
        "trace_hash": "792922785025ba7fd51a3cbfc9716c6bda78f8ff1e729b7cda2aca42f2d38be7",
        "metrics_sha256": "63322c4969e27c3450b32605915a4e09f086c6a122489b2bd45fb129ea5e7193",
        "wall_events": 12675,
        "sim_time": 3652.4022692331855,
    },
}


def _run(n_processes: int, seed: int, trace_messages: bool, max_initiations: int):
    config = SystemConfig(
        n_processes=n_processes, seed=seed, trace_messages=trace_messages
    )
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=15.0)
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=max_initiations, warmup_initiations=1),
    )
    result = runner.run(max_events=10_000_000)
    return system, result


def _metrics_sha256(result) -> str:
    return hashlib.sha256(
        json.dumps(result.metrics, sort_keys=True).encode()
    ).hexdigest()


def _assert_golden(system, result, golden) -> None:
    assert system.sim.trace.content_hash() == golden["trace_hash"]
    assert _metrics_sha256(result) == golden["metrics_sha256"]
    assert system.sim.events_processed == golden["wall_events"]
    assert system.sim.now == golden["sim_time"]


def test_trace_on_run_matches_pre_overhaul_golden():
    """Config A exercises the DEBUG-trace path (slow-loop candidates:
    per-message trace records, vector-clock stamps)."""
    system, result = _run(8, 20260806, True, 4)
    _assert_golden(system, result, GOLDEN["A"])


def test_trace_off_run_matches_pre_overhaul_golden():
    """Config B exercises the fused fast loop end to end."""
    system, result = _run(16, 7, False, 6)
    _assert_golden(system, result, GOLDEN["B"])


def test_fast_loop_runs_are_self_identical():
    """Two fresh systems, same seed: identical hashes (freelist reuse
    and heap compaction must not leak state between runs)."""
    a_system, a_result = _run(8, 20260806, True, 4)
    b_system, b_result = _run(8, 20260806, True, 4)
    assert a_system.sim.trace.content_hash() == b_system.sim.trace.content_hash()
    assert _metrics_sha256(a_result) == _metrics_sha256(b_result)


def test_campaign_workers_bit_identical():
    """The fast loop inside forked campaign workers changes nothing:
    workers=4 result payloads equal workers=1 (minus wall time)."""
    spec = CampaignSpec(
        name="fastpath-witness",
        protocols=["mutable"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": interval}
            for interval in (30.0, 12.0)
        ],
        configs=[{"n_processes": 4, "trace_messages": True}],
        run={"max_initiations": 3, "warmup_initiations": 1},
        replicates=2,
        seed=3,
    )
    serial = CampaignEngine(spec, workers=1).run()
    parallel = CampaignEngine(spec, workers=4).run()
    assert serial.total == parallel.total == 4

    def rows(report):
        return [
            {k: v for k, v in row.items() if k != "wall_time"}
            for row in report.rows()
        ]

    assert rows(serial) == rows(parallel)
    assert [r.to_dict() for r in serial.results()] == [
        r.to_dict() for r in parallel.results()
    ]
