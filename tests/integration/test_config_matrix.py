"""Configuration-matrix integration tests.

The mutable algorithm must keep its guarantees under every combination
of the model knobs: commit mode (§3.3.5), transfer accounting, medium
model, and topology. Each cell runs a full simulation and checks both
independent consistency witnesses plus Theorem 3 minimality.
"""

from __future__ import annotations

import pytest

from repro.analysis.consistency import assert_line_consistent, latest_permanent_line
from repro.analysis.minimality import check_minimality
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.net.params import NetworkParams
from repro.workload.point_to_point import PointToPointWorkload


def run_cell(
    commit_mode: str,
    reply_after_transfer: bool,
    shared_medium: bool,
    n_mss: int,
    on_mss: int = 0,
    seed: int = 8,
):
    config = SystemConfig(
        n_processes=8,
        n_mss=n_mss,
        processes_on_mss=on_mss,
        seed=seed,
        network=NetworkParams(shared_cell_medium=shared_medium),
    )
    protocol = MutableCheckpointProtocol(
        commit_mode=commit_mode,
        reply_after_transfer=reply_after_transfer,
        track_weights=True,
    )
    system = MobileSystem(config, protocol)
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(15.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=4, warmup_initiations=1)
    )
    result = runner.run(max_events=10_000_000)
    return system, result


@pytest.mark.parametrize("commit_mode", ["broadcast", "update", "auto"])
@pytest.mark.parametrize("reply_after_transfer", [True, False])
@pytest.mark.parametrize("shared_medium", [True, False])
def test_mode_matrix_consistent(commit_mode, reply_after_transfer, shared_medium):
    system, result = run_cell(commit_mode, reply_after_transfer, shared_medium, n_mss=1)
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    assert result.n_initiations == 3
    for report in check_minimality(system.sim.trace):
        assert report.minimal, str(report)


@pytest.mark.parametrize("n_mss,on_mss", [(2, 0), (3, 2), (2, 4)])
@pytest.mark.parametrize("commit_mode", ["broadcast", "update"])
def test_topology_matrix_consistent(n_mss, on_mss, commit_mode):
    system, result = run_cell(
        commit_mode, True, True, n_mss=n_mss, on_mss=on_mss, seed=12
    )
    line = latest_permanent_line(system.all_stable_storages(), system.processes)
    assert_line_consistent(system.sim.trace, line)
    assert result.n_initiations == 3


def test_matrix_results_agree_on_checkpoint_counts():
    """The accounting knobs change timing, never which processes must
    checkpoint: tentative counts per initiation match across modes for
    identical workload histories."""
    counts = {}
    for commit_mode in ("broadcast", "update"):
        system, result = run_cell(commit_mode, True, True, n_mss=1, seed=99)
        counts[commit_mode] = [s.tentative_count for s in result.initiations]
    assert counts["broadcast"] == counts["update"]
