"""Cross-shard edge cases: handoffs, broadcasts, snapshot/resume.

The three scenarios that stress the shard boundary (PR-10 satellite):

* a handoff moving an MH between cells owned by *different shards*
  while checkpoint waves are in flight — the MH (and its process)
  re-homes to the destination shard, and MSS→MSS forwarding crosses
  the boundary;
* a broadcast fanning out from one process to every shard at once;
* snapshotting a sharded run mid-flight and resuming it, landing
  bit-identical to the *sequential* control run.
"""

from __future__ import annotations

import hashlib
import json

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.net.mobility import handoff
from repro.sim.shard import resolve_entity_shard
from repro.snapshot import SnapshotPolicy, SnapshotStore, Snapshotter, resume_run
from repro.workload.point_to_point import PointToPointWorkload


def _build(shards, *, n_mss, n_processes, seed, trace_messages,
           mean_send_interval=10.0, max_initiations=3):
    config = SystemConfig(
        n_processes=n_processes,
        n_mss=n_mss,
        seed=seed,
        trace_messages=trace_messages,
        shards=shards,
    )
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=mean_send_interval)
    )
    runner = ExperimentRunner(
        system, workload,
        RunConfig(max_initiations=max_initiations, warmup_initiations=1),
    )
    return system, runner


def _signature(system, result):
    return (
        system.sim.trace.content_hash(),
        hashlib.sha256(
            json.dumps(result.metrics, sort_keys=True).encode()
        ).hexdigest(),
        result.wall_events,
        result.sim_time,
        {pid: p.vc.snapshot() for pid, p in system.processes.items()},
    )


class _PingPong:
    """Deterministically bounce one MH between the two cells."""

    def __init__(self, system):
        self.system = system
        self.mh = system.mhs[0]

    def move(self, _step):
        mss_list = self.system.mss_list
        if self.mh.disconnected or self.mh.mss is None:
            return
        target = mss_list[1] if self.mh.mss is mss_list[0] else mss_list[0]
        handoff(self.system.network, self.mh, target)


def _run_with_handoffs(shards):
    system, runner = _build(
        shards, n_mss=2, n_processes=8, seed=5, trace_messages=True
    )
    mover = _PingPong(system)
    for step, when in enumerate((40.0, 300.0, 700.0)):
        system.sim.schedule_at(when, mover.move, step)
    result = runner.run(max_events=10_000_000)
    return system, result


def test_handoff_across_shard_boundary_bit_identical():
    """mh0 ping-pongs between shard-0 and shard-1 cells mid-run; the
    sharded run still reproduces the sequential control exactly."""
    control = _run_with_handoffs(1)
    sharded = _run_with_handoffs(2)
    assert _signature(*sharded) == _signature(*control)
    system, result = sharded
    completes = [r for r in system.sim.trace if r.kind == "handoff_complete"]
    assert len(completes) == 3
    # The two cells belong to different shards, so the forwarded wave
    # traffic really crossed the boundary.
    assert system.shard_plan.mss_shard == {"mss0": 0, "mss1": 1}
    assert result.shard_stats["envelopes"] > 0


def test_handoff_rehomes_mh_to_destination_shard():
    """Shard membership is dynamic: after reattaching, the MH (and the
    whole entity chain hanging off it) resolves to the new cell's shard."""
    system, _ = _build(
        2, n_mss=2, n_processes=4, seed=9, trace_messages=False
    )
    mh = system.mhs[0]
    pid = next(
        pid for pid, p in system.processes.items() if p.host is mh
    )
    assert resolve_entity_shard(mh) == 0
    assert resolve_entity_shard(system.protocol.processes[pid]) == 0
    handoff(system.network, mh, system.mss_list[1])
    system.sim.run(until=system.sim.now + 1.0)
    assert mh.mss is system.mss_list[1]
    assert resolve_entity_shard(mh) == 1
    assert resolve_entity_shard(system.processes[pid]) == 1
    assert resolve_entity_shard(system.protocol.processes[pid]) == 1


def test_broadcast_fans_out_to_every_shard():
    """A commit broadcast from one initiator reaches processes homed on
    all four shards; the envelope log shows traffic into every foreign
    shard, and the run is still bit-identical to sequential."""
    control_system, control_runner = _build(
        1, n_mss=4, n_processes=16, seed=13, trace_messages=True
    )
    control_result = control_runner.run(max_events=10_000_000)
    system, runner = _build(
        4, n_mss=4, n_processes=16, seed=13, trace_messages=True
    )
    system.sim.envelope_log = []
    result = runner.run(max_events=10_000_000)
    assert _signature(system, result) == _signature(
        control_system, control_result
    )
    assert result.counters.get("broadcasts", 0) > 0
    destinations = {env.dst_shard for env in system.sim.envelope_log}
    assert destinations == {0, 1, 2, 3}
    # per-envelope records agree with the aggregate counters
    assert len(system.sim.envelope_log) == result.shard_stats["envelopes"]


def test_sharded_snapshot_resume_matches_sequential_control(tmp_path):
    """Snapshot a sharded run mid-flight, resume from disk, and land on
    the sequential control's exact signature — the windowed kernel
    pickles and resumes like the fused loop does."""
    control_system, control_runner = _build(
        1, n_mss=4, n_processes=16, seed=7, trace_messages=False,
        mean_send_interval=15.0, max_initiations=4,
    )
    control_sig = _signature(
        control_system, control_runner.run(max_events=10_000_000)
    )

    directory = str(tmp_path / "snaps")
    system, runner = _build(
        2, n_mss=4, n_processes=16, seed=7, trace_messages=False,
        mean_send_interval=15.0, max_initiations=4,
    )
    snap = Snapshotter(runner, SnapshotPolicy(every_events=2000), directory)
    snap.install()
    uninterrupted_sig = _signature(system, runner.run(max_events=10_000_000))
    assert uninterrupted_sig == control_sig

    infos = SnapshotStore(directory).list()
    assert infos
    image = resume_run(infos[len(infos) // 2].path)
    assert type(image.system.sim).__name__ == "ShardedSimulator"
    result = image.runner.resume(max_events=10_000_000)
    assert _signature(image.system, result) == control_sig
