"""Determinism regression: traces and metrics are bit-stable.

Two locks, per the observability PR's acceptance criteria:

* the same seed produces a byte-identical trace hash **and** an
  identical metrics snapshot, run after run;
* a campaign executed with ``workers=4`` produces the same per-point
  metrics snapshots and the same merged aggregate as ``workers=1``.
"""

from __future__ import annotations

import json

from repro.campaign.engine import CampaignEngine
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.system import MobileSystem
from repro.core.runner import ExperimentRunner
from repro.workload.point_to_point import PointToPointWorkload


def run_once(seed=20260805, trace_messages=True):
    config = SystemConfig(n_processes=8, seed=seed, trace_messages=trace_messages)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(15.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=4, warmup_initiations=1)
    )
    result = runner.run(max_events=10_000_000)
    return system, result


def snap_json(result) -> str:
    return json.dumps(result.metrics, sort_keys=True)


def test_same_seed_identical_trace_hash_and_metrics():
    sys_a, res_a = run_once()
    sys_b, res_b = run_once()
    assert sys_a.sim.trace.content_hash() == sys_b.sim.trace.content_hash()
    assert snap_json(res_a) == snap_json(res_b)
    # the snapshot is non-trivial, not vacuously equal
    assert res_a.metrics["counters"]["computation_messages"] > 0


def test_trace_level_does_not_change_metrics():
    """Tracing is pure observation: turning message records off must not
    perturb a single metric."""
    _, res_debug = run_once(trace_messages=True)
    _, res_info = run_once(trace_messages=False)
    assert snap_json(res_debug) == snap_json(res_info)


def test_different_seed_changes_trace_hash():
    sys_a, _ = run_once(seed=1)
    sys_b, _ = run_once(seed=2)
    assert sys_a.sim.trace.content_hash() != sys_b.sim.trace.content_hash()


def four_point_spec():
    return CampaignSpec(
        name="determinism",
        protocols=["mutable", "koo-toueg"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": interval}
            for interval in (40.0, 15.0)
        ],
        configs=[{"n_processes": 4}],
        run={"max_initiations": 3, "warmup_initiations": 1},
    )


def test_campaign_metrics_identical_across_worker_counts():
    serial = CampaignEngine(four_point_spec(), store=ResultStore(), workers=1).run()
    parallel = CampaignEngine(four_point_spec(), store=ResultStore(), workers=4).run()
    assert serial.ok and parallel.ok

    serial_snaps = [snap_json(r) for r in serial.results()]
    parallel_snaps = [snap_json(r) for r in parallel.results()]
    assert serial_snaps == parallel_snaps

    merged_serial = json.dumps(
        serial.merged_metrics().snapshot(), sort_keys=True
    )
    merged_parallel = json.dumps(
        parallel.merged_metrics().snapshot(), sort_keys=True
    )
    assert merged_serial == merged_parallel
    # the aggregate actually aggregates (sum of per-point counters)
    total = sum(
        r.metrics["counters"].get("computation_messages", 0.0)
        for r in serial.results()
    )
    assert serial.merged_metrics().value("computation_messages") == total
