"""The §6 storage claim, monitored continuously.

"In the coordinated checkpointing algorithm presented in this paper,
most of the time, each process needs to store only one permanent
checkpoint on the stable storage and at most two checkpoints: a
permanent and a tentative (or mutable) checkpoint only for the duration
of the checkpointing."
"""

from __future__ import annotations

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.checkpointing.types import CheckpointKind
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload


def run_with_probe(seed=9, n=8, initiations=6):
    config = SystemConfig(n_processes=n, seed=seed)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(15.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=initiations, warmup_initiations=1)
    )
    max_stable = {pid: 0 for pid in system.processes}
    max_with_mutable = {pid: 0 for pid in system.processes}

    def probe():
        for pid in system.processes:
            storage = system.stable_storage_for(pid)
            stable = len(storage.checkpoints_of(pid))
            local = len(system.processes[pid].local_store)
            max_stable[pid] = max(max_stable[pid], stable)
            max_with_mutable[pid] = max(max_with_mutable[pid], stable + local)
        system.sim.schedule(1.0, probe)

    system.sim.schedule(0.5, probe)
    runner.run(max_events=20_000_000)
    return system, max_stable, max_with_mutable


def test_at_most_two_stable_checkpoints_per_process():
    """One permanent plus, transiently, one tentative."""
    _, max_stable, _ = run_with_probe()
    assert max(max_stable.values()) <= 2


def test_steady_state_is_one_permanent():
    system, _, _ = run_with_probe()
    for pid in system.processes:
        records = system.stable_storage_for(pid).checkpoints_of(pid)
        assert len(records) == 1
        assert records[0].kind is CheckpointKind.PERMANENT


def test_local_store_bounded_by_one_mutable_when_serialized():
    """With serialized initiations at most one mutable is live at once."""
    _, _, max_with_mutable = run_with_probe()
    assert max(max_with_mutable.values()) <= 3  # perm + tent + one mutable


def test_uncoordinated_storage_grows_without_bound_in_contrast():
    """The §6 contrast: the uncoordinated baseline accumulates history."""
    from repro.checkpointing.uncoordinated import UncoordinatedProtocol

    config = SystemConfig(n_processes=4, seed=9)
    system = MobileSystem(config, UncoordinatedProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(5.0))
    workload.start()
    system.sim.run(until=400.0)
    workload.stop()
    system.run_until_quiescent()
    per_process = [
        len(system.stable_storage_for(pid).checkpoints_of(pid))
        for pid in system.processes
    ]
    assert max(per_process) > 5
