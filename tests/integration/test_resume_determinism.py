"""Resume determinism against the pinned fast-path golden values.

The acceptance bar for ``repro.snapshot``: a seeded 16-process mutable
run that is snapshotted, killed, and resumed must finish with the SAME
golden trace hash and metrics digest as the uninterrupted run pinned in
``test_fastpath_determinism.GOLDEN`` — resume is indistinguishable from
never having stopped, byte for byte.
"""

from __future__ import annotations

import hashlib
import json

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.snapshot import SnapshotPolicy, SnapshotStore, Snapshotter, resume_run
from repro.workload.point_to_point import PointToPointWorkload

from tests.integration.test_fastpath_determinism import GOLDEN


def _build_golden_b():
    """The exact configuration pinned as GOLDEN['B']."""
    config = SystemConfig(n_processes=16, seed=7, trace_messages=False)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=15.0)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=6, warmup_initiations=1)
    )
    return system, runner


def _assert_golden_b(system, result):
    golden = GOLDEN["B"]
    assert system.sim.trace.content_hash() == golden["trace_hash"]
    metrics_sha = hashlib.sha256(
        json.dumps(result.metrics, sort_keys=True).encode()
    ).hexdigest()
    assert metrics_sha == golden["metrics_sha256"]
    assert system.sim.events_processed == golden["wall_events"]
    assert system.sim.now == golden["sim_time"]


def test_snapshot_enabled_run_still_matches_golden(tmp_path):
    """Snapshotting on the fused fast loop changes no observable."""
    system, runner = _build_golden_b()
    snap = Snapshotter(
        runner, SnapshotPolicy(every_events=1000), str(tmp_path / "snaps")
    )
    snap.install()
    result = runner.run(max_events=10_000_000)
    assert len(snap.taken) >= 10
    _assert_golden_b(system, result)


def test_resumed_run_matches_golden(tmp_path):
    """Kill mid-run, resume from disk, land exactly on the golden."""
    directory = str(tmp_path / "snaps")
    system, runner = _build_golden_b()
    snap = Snapshotter(runner, SnapshotPolicy(every_events=1000), directory)
    snap.install()
    runner.run(max_events=10_000_000)

    # resume from a mid-run snapshot (~event 7000 of 12675), as if the
    # original process had been killed there
    infos = SnapshotStore(directory).list()
    mid = next(i for i in infos if i.meta.events_processed == 7000)
    image = resume_run(mid.path)
    assert image.system.sim.events_processed == 7000
    result = image.runner.resume(max_events=10_000_000)
    _assert_golden_b(image.system, result)


def test_resume_from_every_snapshot_is_deterministic(tmp_path):
    """Any snapshot of the run is an equally valid resume point."""
    directory = str(tmp_path / "snaps")
    _, runner = _build_golden_b()
    snap = Snapshotter(runner, SnapshotPolicy(every_events=2000), directory)
    snap.install()
    runner.run(max_events=10_000_000)
    for info in SnapshotStore(directory).list():
        image = resume_run(info.path)
        result = image.runner.resume(max_events=10_000_000)
        _assert_golden_b(image.system, result)
