"""Sharded-kernel equivalence matrix (PR-10 acceptance).

``SystemConfig(shards=N)`` must be *observably invisible*: same trace
content hash, same metrics snapshot, same wall-event count and final
sim time, and same final per-process vector clocks as the sequential
``shards=1`` kernel — for the PR-5 golden configs (pinned byte-exact in
``test_fastpath_determinism.GOLDEN``) and for a multi-cell 256-process
case where the partition is real (events actually spread across
shards, cross-shard envelopes flow). The windowed engine may only show
up in ``RunResult.shard_stats``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.results import RunResult
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload

from tests.integration.test_fastpath_determinism import GOLDEN


def _run(
    n_processes: int,
    seed: int,
    trace_messages: bool,
    max_initiations: int,
    *,
    n_mss: int = 1,
    shards: int = 1,
    mean_send_interval: float = 15.0,
):
    config = SystemConfig(
        n_processes=n_processes,
        n_mss=n_mss,
        seed=seed,
        trace_messages=trace_messages,
        shards=shards,
    )
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=mean_send_interval)
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=max_initiations, warmup_initiations=1),
    )
    result = runner.run(max_events=10_000_000)
    return system, result


def _signature(system, result):
    """Everything shards must not change, in one comparable tuple."""
    return (
        system.sim.trace.content_hash(),
        hashlib.sha256(
            json.dumps(result.metrics, sort_keys=True).encode()
        ).hexdigest(),
        result.wall_events,
        result.sim_time,
        {pid: p.vc.snapshot() for pid, p in system.processes.items()},
    )


@pytest.mark.parametrize("shards", [2, 4])
def test_golden_a_bit_identical_under_shards(shards):
    """Config A (8p, DEBUG trace) on the windowed kernel still lands on
    the pre-overhaul golden values byte for byte."""
    system, result = _run(8, 20260806, True, 4, shards=shards)
    golden = GOLDEN["A"]
    assert system.sim.trace.content_hash() == golden["trace_hash"]
    assert result.wall_events == golden["wall_events"]
    assert result.sim_time == golden["sim_time"]
    metrics_sha = hashlib.sha256(
        json.dumps(result.metrics, sort_keys=True).encode()
    ).hexdigest()
    assert metrics_sha == golden["metrics_sha256"]
    # Single-cell topology: the partition is degenerate (every event in
    # shard 0) but the windowed engine still ran — and recorded it.
    assert result.shard_stats["shards"] == shards
    assert result.shard_stats["windows"] > 0
    assert result.shard_stats["envelopes"] == 0


@pytest.mark.parametrize("shards", [2, 4])
def test_golden_b_bit_identical_under_shards(shards):
    """Config B (16p, trace off) exercises the windowed loop end to end."""
    system, result = _run(16, 7, False, 6, shards=shards)
    golden = GOLDEN["B"]
    assert system.sim.trace.content_hash() == golden["trace_hash"]
    assert result.wall_events == golden["wall_events"]
    assert result.sim_time == golden["sim_time"]


@pytest.mark.parametrize("shards", [2, 4])
def test_256p_multicell_bit_identical_under_shards(shards):
    """256 processes over 8 cells: a real partition (work on every
    shard, envelopes across shards) changes no observable."""
    control_system, control_result = _run(
        256, 11, False, 3, n_mss=8, mean_send_interval=10.0
    )
    system, result = _run(
        256, 11, False, 3, n_mss=8, shards=shards, mean_send_interval=10.0
    )
    assert _signature(system, result) == _signature(
        control_system, control_result
    )
    stats = result.shard_stats
    assert stats["shards"] == stats["effective_shards"] == shards
    assert stats["envelopes"] > 0
    # Every shard owned real work.
    assert all(s["events"] > 0 for s in stats["per_shard"])
    # The min-wired-delay lookahead is sound for this workload: no
    # cross-shard event ever landed inside an open window.
    assert stats["lookahead_violations"] == 0
    assert control_result.shard_stats == {}


def test_sharded_runs_are_self_identical():
    """Two fresh sharded systems, same seed: identical signatures and
    identical window accounting (the engine itself is deterministic)."""
    a_system, a_result = _run(32, 3, True, 3, n_mss=4, shards=4)
    b_system, b_result = _run(32, 3, True, 3, n_mss=4, shards=4)
    assert _signature(a_system, a_result) == _signature(b_system, b_result)
    assert a_result.shard_stats == b_result.shard_stats


def test_shard_stats_roundtrip_and_sequential_docs_unchanged():
    """shard_stats survives the RunResult wire format; sequential
    result documents do not even carry the key."""
    _, sharded = _run(8, 20260806, True, 2, n_mss=2, shards=2)
    _, sequential = _run(8, 20260806, True, 2, n_mss=2)
    doc = sharded.to_dict()
    assert doc["shard_stats"]["shards"] == 2
    assert RunResult.from_dict(doc).shard_stats == sharded.shard_stats
    assert "shard_stats" not in sequential.to_dict()
