"""Golden determinism fixtures.

A fixed-seed run's trace is summarized into a stable digest; any change
to protocol logic, event ordering, RNG streams, or timing constants
shows up here first. The digest deliberately summarizes *behaviour*
(event kinds, per-kind counts, checkpoint/commit structure) rather than
raw bytes, so refactorings that don't change behaviour stay green while
semantic changes fail loudly.

If a change is intentional, update the expected values and note why in
the commit — they are part of the repository's reproducibility contract.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.workload.point_to_point import PointToPointWorkload


def golden_run():
    config = SystemConfig(n_processes=8, seed=20260707)
    system = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system, PointToPointWorkloadConfig(20.0))
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=5, warmup_initiations=1)
    )
    result = runner.run(max_events=10_000_000)
    return system, result


def behaviour_digest(system) -> str:
    """Hash of the behavioural skeleton of the trace."""
    skeleton = []
    for record in system.sim.trace:
        if record.kind in ("comp_send", "comp_recv"):
            skeleton.append((record.kind, record["src"], record["dst"]))
        elif record.kind in ("tentative", "mutable", "permanent", "initiation"):
            skeleton.append((record.kind, record.get("pid"), record.get("trigger")))
        elif record.kind in ("commit", "abort"):
            skeleton.append((record.kind, record.get("trigger")))
    return hashlib.sha256(repr(skeleton).encode()).hexdigest()[:16]


def test_run_is_bit_stable():
    a_system, a_result = golden_run()
    b_system, b_result = golden_run()
    assert behaviour_digest(a_system) == behaviour_digest(b_system)
    assert a_result.sim_time == b_result.sim_time
    assert a_result.wall_events == b_result.wall_events


def test_golden_structure():
    """Structural facts of the golden run (semantic regression lock)."""
    system, result = golden_run()
    kinds = Counter(r.kind for r in system.sim.trace)
    # five committed initiations, each with one commit record
    assert kinds["initiation"] == 5
    assert kinds["commit"] == 5
    # every tentative becomes permanent (plus 8 initial permanents)
    assert kinds["permanent"] == kinds["tentative"] + 8
    # message conservation at quiescence
    assert kinds["comp_send"] == kinds["comp_recv"]
    # the measured summary is stable
    assert result.n_initiations == 4
    assert 1 <= result.tentative_summary().mean <= 8


def test_golden_digest_distinguishes_seeds():
    system_a, _ = golden_run()
    config = SystemConfig(n_processes=8, seed=1)
    system_b = MobileSystem(config, MutableCheckpointProtocol())
    workload = PointToPointWorkload(system_b, PointToPointWorkloadConfig(20.0))
    ExperimentRunner(
        system_b, workload, RunConfig(max_initiations=5, warmup_initiations=1)
    ).run(max_events=10_000_000)
    assert behaviour_digest(system_a) != behaviour_digest(system_b)
