"""Delta-piggyback / array-state equivalence matrix.

The scaling work (sparse :class:`~repro.analysis.vector_clock.VCDelta`
message stamps, array-backed protocol state) must be *invisible* to
every observable of a run: same trace ``content_hash``, same metrics
snapshot, same final vector clocks, at every population. Each cell runs
the same (protocol, population, seed) twice — once with
``piggyback_mode="delta"`` (the default) and once with the full-vector
reference path — and requires byte-identical results.

The 16p cells are additionally anchored to the PR-5 golden hash: the
fast-path witness run (config B of ``test_fastpath_determinism``) must
reproduce its pre-overhaul golden trace hash under *both* piggyback
modes, pinning the whole stack to a value captured before any of the
scaling machinery existed.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.config import PointToPointWorkloadConfig, RunConfig, SystemConfig
from repro.core.registry import available_protocols, build_protocol
from repro.core.runner import ExperimentRunner
from repro.core.system import MobileSystem
from repro.errors import SimulationError
from repro.workload.point_to_point import PointToPointWorkload

#: pre-overhaul golden for the 16p trace-off witness run (config B of
#: test_fastpath_determinism, captured on commit 2258971)
GOLDEN_16P_TRACE_HASH = (
    "792922785025ba7fd51a3cbfc9716c6bda78f8ff1e729b7cda2aca42f2d38be7"
)

POPULATIONS = (16, 64, 256)
SEEDS = (3, 11, 20260806)


def _run(protocol_name: str, n: int, seed: int, mode: str):
    config = SystemConfig(
        n_processes=n,
        seed=seed,
        checkpoint_interval=30.0,
        piggyback_mode=mode,
    )
    system = MobileSystem(config, build_protocol(protocol_name))
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=15.0)
    )
    runner = ExperimentRunner(
        system,
        workload,
        RunConfig(max_initiations=10_000, time_limit=120.0),
    )
    try:
        runner.run(max_events=200_000)
    except SimulationError:
        # Some (protocol, seed) cells generate event storms far past
        # any practical budget (pre-existing, unrelated to stamping).
        # Equivalence is about *determinism*, not completion: both
        # modes must hit the same budget at the same trace prefix, so
        # the bounded observables below still compare byte for byte.
        pass
    return system


def _observables(system, n: int):
    system.sim.flush_metrics()
    return {
        "trace_hash": system.sim.trace.content_hash(),
        "metrics_sha256": hashlib.sha256(
            json.dumps(system.metrics.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        "events": system.sim.events_processed,
        "sim_time": system.sim.now,
        # the trace hash cannot see vector clocks (they are never
        # traced), so compare the final clocks directly: this is the
        # state the delta encoding could silently corrupt
        "final_vcs": tuple(
            system.process(pid).vc.snapshot() for pid in range(n)
        ),
    }


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("n", POPULATIONS)
@pytest.mark.parametrize("protocol_name", available_protocols())
def test_delta_mode_matches_full_reference(protocol_name, n, seed):
    delta_obs = _observables(_run(protocol_name, n, seed, "delta"), n)
    full_obs = _observables(_run(protocol_name, n, seed, "full"), n)
    assert delta_obs == full_obs


@pytest.mark.parametrize("mode", ["delta", "full"])
def test_16p_witness_matches_pr5_golden(mode):
    """Both piggyback modes reproduce the pre-overhaul golden hash."""
    config = SystemConfig(n_processes=16, seed=7, trace_messages=False,
                          piggyback_mode=mode)
    system = MobileSystem(config, build_protocol("mutable"))
    workload = PointToPointWorkload(
        system, PointToPointWorkloadConfig(mean_send_interval=15.0)
    )
    runner = ExperimentRunner(
        system, workload, RunConfig(max_initiations=6, warmup_initiations=1)
    )
    runner.run(max_events=10_000_000)
    assert system.sim.trace.content_hash() == GOLDEN_16P_TRACE_HASH
