"""The paper's Figs. 1-4 as executable assertions."""

from __future__ import annotations

from repro.scenarios.figures import (
    figure1,
    figure2,
    figure2_with_mutable,
    figure3,
    figure4,
)


def test_figure1_naive_protocol_creates_orphan():
    """Fig. 1: m1 is an orphan under naive nonblocking coordination."""
    r = figure1()
    assert not r.consistent
    assert len(r.orphan_msg_ids) == 1


def test_figure2_impossibility_without_mutable_checkpoints():
    """§2.4: P2 cannot know to checkpoint before m5 — inconsistency."""
    r = figure2()
    assert not r.consistent
    assert len(r.orphan_msg_ids) == 1


def test_figure2_mutable_checkpoint_absorbs_impossibility():
    """The same ordering with the paper's algorithm: P2's mutable
    checkpoint is promoted; no orphan."""
    r = figure2_with_mutable()
    assert r.consistent
    assert r.mutable_taken == 1
    assert r.mutable_promoted == 1
    assert r.mutable_discarded == 0


def test_figure3_worked_example():
    """§3.4: three mutable checkpoints — two promoted (C_{1,1}, C_{3,1}),
    one redundant (C_{1,2}) discarded at P0's commit."""
    r = figure3()
    assert r.consistent
    assert r.mutable_taken == 3
    assert r.mutable_promoted == 2
    assert r.mutable_discarded == 1
    # P2's initiation: P2+P4+P1+P3; P0's initiation: only P0 = 5 total
    assert r.tentative_counts["tentative"] == 5


def test_figure4_stale_request_suppressed():
    """§3.1.3: P3's request carries req_csn behind P2's checkpoint, so
    C_{2,2} and C_{1,2} are never taken."""
    r = figure4()
    assert r.consistent
    assert r.tentative_counts["second_initiation_tentatives"] == 1


def test_all_figures_deterministic():
    """Scenario outcomes are bit-for-bit repeatable."""
    a, b = figure3(), figure3()
    assert a.tentative_counts == b.tentative_counts
    assert a.mutable_taken == b.mutable_taken
