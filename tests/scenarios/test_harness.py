"""Tests for the scripted scenario harness itself."""

from __future__ import annotations

import pytest

from repro.checkpointing.mutable import MutableCheckpointProtocol
from repro.errors import ProtocolError
from repro.scenarios.harness import ScenarioHarness


def harness(n=3):
    return ScenarioHarness(n, MutableCheckpointProtocol())


def test_send_stays_in_flight_until_delivered():
    h = harness()
    m = h.send(0, 1)
    assert m in h.pending
    assert h.app_state[1]["messages_received"] == 0
    h.deliver(m)
    assert h.app_state[1]["messages_received"] == 1
    assert m.delivered


def test_double_delivery_rejected():
    h = harness()
    m = h.send(0, 1)
    h.deliver(m)
    with pytest.raises(ProtocolError):
        h.deliver(m)


def test_self_message_rejected():
    h = harness()
    with pytest.raises(ProtocolError):
        h.send(0, 0)


def test_vector_clocks_track_causality():
    h = harness()
    h.deliver(h.send(0, 1))
    h.deliver(h.send(1, 2))
    vc2 = h.clocks[2].snapshot()
    assert vc2[0] >= 1 and vc2[1] >= 1


def test_pending_filters():
    h = harness()
    h.send(0, 1)
    h.deliver(h.send(1, 0))
    h.initiate(0)
    assert len(h.pending_comp()) == 1
    assert len(h.pending_system("request")) == 1
    assert h.pending_system("commit") == []


def test_deliver_all_system_quiesces_coordination():
    h = harness()
    h.deliver(h.send(1, 0))
    h.initiate(0)
    delivered = h.deliver_all_system()
    assert delivered > 0
    assert h.pending_system() == []
    assert h.trace.count("commit") == 1


def test_deliver_everything_empties_pool():
    h = harness()
    h.send(0, 1)
    h.send(1, 2)
    h.deliver_everything()
    assert not h.pending


def test_initial_recovery_line_consistent():
    h = harness()
    h.assert_consistent()
    line = h.recovery_line()
    assert all(rec.csn == 0 for rec in line.values())


def test_clock_monotone():
    h = harness()
    t0 = h.clock
    h.send(0, 1)
    assert h.clock > t0
