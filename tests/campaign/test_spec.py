"""Tests for campaign specs, expansion, and content hashing."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cache import canonical_json, derive_seed, spec_hash
from repro.campaign.spec import CampaignSpec, RunPoint, preset_spec
from repro.errors import ConfigurationError
from repro.net.params import NetworkParams


def small_spec(**overrides):
    base = dict(
        name="t",
        protocols=["mutable", "koo-toueg"],
        workloads=[
            {"kind": "p2p", "mean_send_interval": 50.0},
            {"kind": "p2p", "mean_send_interval": 10.0},
            {"kind": "group", "mean_send_interval": 20.0, "n_groups": 2},
        ],
        configs=[{"n_processes": 4}],
        run={"max_initiations": 3, "warmup_initiations": 1},
    )
    base.update(overrides)
    return CampaignSpec(**base)


# -- cache -------------------------------------------------------------
def test_canonical_json_is_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


def test_spec_hash_changes_with_content():
    assert spec_hash({"a": 1}) != spec_hash({"a": 2})
    assert spec_hash({"a": 1}) == spec_hash({"a": 1})


def test_derive_seed_deterministic_and_identity_sensitive():
    a = derive_seed(11, {"p": "mutable"})
    assert a == derive_seed(11, {"p": "mutable"})
    assert a != derive_seed(12, {"p": "mutable"})
    assert a != derive_seed(11, {"p": "koo-toueg"})
    assert 0 <= a < 2**31 - 1


# -- run points --------------------------------------------------------
def test_point_round_trip_and_hash_stability():
    point = RunPoint(
        protocol="mutable",
        workload="group",
        workload_params={"mean_send_interval": 20.0, "n_groups": 2},
        system_params={"n_processes": 8},
        run_params={"max_initiations": 4},
        seed=7,
    )
    clone = RunPoint.from_dict(json.loads(json.dumps(point.to_dict())))
    assert clone == point
    assert clone.point_hash == point.point_hash
    assert clone.point_hash != RunPoint(protocol="mutable", seed=8).point_hash


def test_point_accepts_network_params_instance():
    point = RunPoint(
        protocol="mutable",
        system_params={"network": NetworkParams(shared_cell_medium=False)},
    )
    assert point.system_params["network"]["shared_cell_medium"] is False
    json.dumps(point.to_dict())  # stays JSON-serializable


def test_point_rejects_bad_workload_and_seed_placement():
    with pytest.raises(ConfigurationError):
        RunPoint(protocol="mutable", workload="nope")
    with pytest.raises(ConfigurationError):
        RunPoint(protocol="mutable", workload_params={"mean_send_interval": -1})
    with pytest.raises(ConfigurationError):
        RunPoint(protocol="mutable", system_params={"seed": 3})


# -- campaign specs ----------------------------------------------------
def test_expand_grid_shape():
    points = small_spec().expand()
    assert len(points) == 2 * 3 * 1
    assert len({p.point_hash for p in points}) == len(points)
    protocols = {p.protocol for p in points}
    assert protocols == {"mutable", "koo-toueg"}


def test_expand_seeds_are_content_derived():
    """A point's seed depends on its identity, not its grid position."""
    full = {p.label(): p.seed for p in small_spec().expand()}
    subset = small_spec(protocols=["koo-toueg"]).expand()
    for p in subset:
        assert full[p.label()] == p.seed


def test_replicates_get_distinct_seeds():
    points = small_spec(replicates=3).expand()
    assert len(points) == 18
    by_rep = {}
    for p in points:
        by_rep.setdefault(p.replicate, []).append(p.seed)
    assert set(by_rep) == {0, 1, 2}
    assert by_rep[0] != by_rep[1] != by_rep[2]


def test_spec_json_round_trip(tmp_path):
    spec = small_spec()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    loaded = CampaignSpec.from_json_file(str(path))
    assert loaded == spec
    assert loaded.campaign_hash == spec.campaign_hash
    assert [p.point_hash for p in loaded.expand()] == [
        p.point_hash for p in spec.expand()
    ]


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="")
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="x", replicates=0)
    with pytest.raises(ConfigurationError):
        CampaignSpec(name="x", protocols=[])


def test_presets_expand():
    assert len(preset_spec("smoke").expand()) == 4
    assert len(preset_spec("fig5").expand()) == 6
    assert len(preset_spec("fig6").expand()) == 8
    with pytest.raises(ConfigurationError):
        preset_spec("nope")
