"""Tests for the durable JSONL result store."""

from __future__ import annotations

import json

from repro.campaign.store import PointRecord, ResultStore
from repro.core.results import RunResult


def make_record(h="abc", status="ok", **kwargs):
    defaults = dict(
        point_hash=h,
        status=status,
        point={"protocol": "mutable"},
        result={"protocol": "mutable", "n_processes": 2, "seed": 1,
                "initiations": [], "counters": {}, "total_blocked_time": 0.0,
                "sim_time": 1.0, "wall_events": 10}
        if status == "ok"
        else None,
        error=None if status == "ok" else "boom",
        wall_time=0.5,
    )
    defaults.update(kwargs)
    return PointRecord(**defaults)


def test_in_memory_store():
    store = ResultStore()
    assert len(store) == 0
    store.append(make_record("a"))
    store.append(make_record("b", status="failed"))
    assert len(store) == 2
    assert "a" in store
    # membership is the cache-hit question: failed records don't count
    assert "b" not in store
    assert store.get("b") is not None
    assert store.completed_hashes() == {"a"}
    assert [r.point_hash for r in store.failed_records()] == ["b"]


def test_durable_round_trip(tmp_path):
    path = str(tmp_path / "r.jsonl")
    with ResultStore(path) as store:
        store.append(make_record("a"))
        store.append(make_record("b"))
    with ResultStore(path) as store:
        assert store.completed_hashes() == {"a", "b"}
        assert store.get("a") == make_record("a")


def test_later_record_wins(tmp_path):
    path = str(tmp_path / "r.jsonl")
    with ResultStore(path) as store:
        store.append(make_record("a", status="failed"))
        store.append(make_record("a", status="ok", attempts=2))
    with ResultStore(path) as store:
        assert store.completed_hashes() == {"a"}
        assert store.get("a").attempts == 2
    # both attempts remain on disk (audit trail)
    lines = open(path).read().splitlines()
    assert len(lines) == 2


def test_torn_final_line_is_ignored(tmp_path):
    """A crash mid-write leaves a partial line; loading skips it."""
    path = str(tmp_path / "r.jsonl")
    with ResultStore(path) as store:
        store.append(make_record("a"))
        store.append(make_record("b"))
    with open(path, "a") as fh:
        fh.write(json.dumps(make_record("c").to_dict())[:37])
    with ResultStore(path) as store:
        assert store.completed_hashes() == {"a", "b"}
        assert "c" not in store
        # the store stays appendable after recovery
        store.append(make_record("d"))
    with ResultStore(path) as store:
        assert store.completed_hashes() == {"a", "b", "d"}


def test_record_rehydrates_run_result():
    record = make_record("a")
    result = record.run_result()
    assert isinstance(result, RunResult)
    assert result.sim_time == 1.0


def test_snapshot_paths_orphan_guard(tmp_path):
    """Deleted .rsnap files for completed points are not reported."""
    live = tmp_path / "live.rsnap"
    live.write_bytes(b"x")
    gone = tmp_path / "gone.rsnap"
    store = ResultStore()
    store.append(make_record("a", meta={"snapshots": [str(live), str(gone)]}))
    store.append(make_record("b", meta={"snapshots": [str(gone)]}))
    store.append(make_record("c"))
    assert store.snapshot_paths() == {"a": [str(live)]}
    # cleanup deletes the last live file -> the point drops out entirely
    live.unlink()
    assert store.snapshot_paths() == {}
